"""Social-media client interface (the Twitter-API substitution layer).

The paper's proof of concept calls the Twitter search APIs.  Those APIs
are proprietary and no longer freely accessible, so this module defines
the narrow client interface PSP actually needs — recent-post search with
keyword, time and region filters, plus aggregate counts — and an
in-memory implementation backed by a :class:`~repro.social.corpus.Corpus`.

A production deployment would implement :class:`SocialMediaClient` against
a real platform API; everything above this layer is unchanged.  This is
the substitution documented in DESIGN.md.
"""

from __future__ import annotations

import abc
import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.social.corpus import Corpus
from repro.social.post import Post


@dataclass(frozen=True)
class SearchQuery:
    """A search request against the platform.

    Attributes:
        keyword: attack keyword or hashtag (canonical folding applied).
        since: inclusive lower bound on posting date.
        until: inclusive upper bound on posting date.
        region: restrict to a geographic region, if given.
        limit: maximum number of posts to return (None = unlimited).
    """

    keyword: str
    since: Optional[dt.date] = None
    until: Optional[dt.date] = None
    region: Optional[str] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.keyword:
            raise ValueError("query keyword must be non-empty")
        if self.since and self.until and self.since > self.until:
            raise ValueError(f"empty window: since {self.since} > until {self.until}")
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")


@dataclass(frozen=True)
class BatchQuery:
    """One request fanned out across many keywords (same window/region).

    The per-keyword :class:`SearchQuery` parameters (window, region,
    limit) are shared across the whole batch — the PSP pipeline always
    mines every keyword of the database over one analysis window, so a
    batch is "the same query, N keywords".

    Attributes:
        keywords: the attack keywords to search; duplicates are folded.
        since: inclusive lower bound on posting date.
        until: inclusive upper bound on posting date.
        region: restrict to a geographic region, if given.
        limit: per-keyword cap on returned posts (None = unlimited).
    """

    keywords: Tuple[str, ...]
    since: Optional[dt.date] = None
    until: Optional[dt.date] = None
    region: Optional[str] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        deduped = tuple(dict.fromkeys(self.keywords))
        if not deduped:
            raise ValueError("batch needs at least one keyword")
        if any(not k for k in deduped):
            raise ValueError("batch keywords must be non-empty")
        if self.since and self.until and self.since > self.until:
            raise ValueError(f"empty window: since {self.since} > until {self.until}")
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        object.__setattr__(self, "keywords", deduped)

    def query_for(self, keyword: str) -> SearchQuery:
        """The equivalent single-keyword query for one batch member."""
        return SearchQuery(
            keyword=keyword,
            since=self.since,
            until=self.until,
            region=self.region,
            limit=self.limit,
        )

    def queries(self) -> Tuple[SearchQuery, ...]:
        """The equivalent per-keyword queries, in batch order."""
        return tuple(self.query_for(k) for k in self.keywords)

    def restricted_to(self, keywords: Sequence[str]) -> "BatchQuery":
        """A sub-batch covering only ``keywords`` (same window/region)."""
        return BatchQuery(
            keywords=tuple(keywords),
            since=self.since,
            until=self.until,
            region=self.region,
            limit=self.limit,
        )


@dataclass(frozen=True)
class BatchResult:
    """The posts a batch query matched, grouped per keyword.

    A post matching several keywords appears under each of them —
    per-keyword results are exactly what the equivalent sequence of
    :meth:`SocialMediaClient.search` calls would return — while
    :meth:`unique_posts` exposes the deduplicated union for corpus-wide
    consumers (keyword learning, fleet corpus sharing).
    """

    posts_by_keyword: Mapping[str, Tuple[Post, ...]]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "posts_by_keyword",
            {k: tuple(v) for k, v in self.posts_by_keyword.items()},
        )

    def posts(self, keyword: str) -> Tuple[Post, ...]:
        """Posts matching one keyword, oldest first."""
        try:
            return self.posts_by_keyword[keyword]
        except KeyError:
            raise KeyError(f"keyword {keyword!r} not in batch result") from None

    def keywords(self) -> Tuple[str, ...]:
        """Keywords covered by this result, in batch order."""
        return tuple(self.posts_by_keyword)

    def unique_posts(self) -> Tuple[Post, ...]:
        """Deduplicated union of all matched posts, oldest first."""
        seen: Dict[str, Post] = {}
        for posts in self.posts_by_keyword.values():
            for post in posts:
                seen.setdefault(post.post_id, post)
        return tuple(
            sorted(seen.values(), key=lambda p: (p.created_at, p.post_id))
        )

    @property
    def total_matches(self) -> int:
        """Total per-keyword matches (a shared post counts once per keyword)."""
        return sum(len(v) for v in self.posts_by_keyword.values())


class SocialMediaClient(abc.ABC):
    """The platform operations the PSP framework depends on."""

    @abc.abstractmethod
    def search(self, query: SearchQuery) -> List[Post]:
        """Posts matching the query, oldest first."""

    @abc.abstractmethod
    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Number of matching posts per posting year."""

    def count(self, query: SearchQuery) -> int:
        """Total number of matching posts."""
        return sum(self.count_by_year(query).values())

    def search_many(self, batch: BatchQuery) -> BatchResult:
        """Run one batch query across all its keywords.

        The default implementation issues one :meth:`search` per keyword,
        so every client supports batching; implementations with a cheaper
        fan-out (shared corpus scope, platform bulk endpoints, caches)
        override this.  Per-keyword results are identical to sequential
        :meth:`search` calls — batch-vs-sequential equivalence is part of
        the interface contract and is asserted in the test suite.
        """
        return BatchResult(
            posts_by_keyword={
                keyword: tuple(self.search(batch.query_for(keyword)))
                for keyword in batch.keywords
            }
        )


class InMemoryClient(SocialMediaClient):
    """Corpus-backed client used throughout the reproduction.

    Every query path rides the corpus' inverted index
    (:class:`~repro.social.index.CorpusIndex`): region scopes are
    memoized sub-corpora sharing one index each, analysis windows are
    bisected out of the date-sorted index instead of materialised as
    throwaway sub-corpora, and a batch query is resolved in one sweep.
    """

    def __init__(self, corpus: Corpus) -> None:
        self._corpus = corpus

    @property
    def corpus(self) -> Corpus:
        """The backing corpus."""
        return self._corpus

    def _scope(self, region: Optional[str]) -> Corpus:
        if region is None:
            return self._corpus
        return self._corpus.region_view(region)

    def search(self, query: SearchQuery) -> List[Post]:
        """Posts matching the query, oldest first, truncated to ``limit``."""
        return self._scope(query.region).search_many(
            (query.keyword,),
            since=query.since,
            until=query.until,
            limit=query.limit,
        )[query.keyword]

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Number of matching posts per posting year (limit ignored)."""
        matches = self._scope(query.region).search_many(
            (query.keyword,), since=query.since, until=query.until
        )[query.keyword]
        counts: Dict[int, int] = {}
        for post in matches:
            counts[post.year] = counts.get(post.year, 0) + 1
        return counts

    def search_many(self, batch: BatchQuery) -> BatchResult:
        """Batch search answered in one pass over the corpus index.

        The region scope (and its inverted index) is shared by every
        keyword of the batch, the window is a bisected slice, and all
        keywords are matched during a single sweep of that slice —
        instead of one corpus scan per keyword as the sequential path
        would issue.
        """
        per_keyword = self._scope(batch.region).search_many(
            batch.keywords,
            since=batch.since,
            until=batch.until,
            limit=batch.limit,
        )
        return BatchResult(
            posts_by_keyword={
                keyword: tuple(per_keyword[keyword])
                for keyword in batch.keywords
            }
        )


def search_texts(client: SocialMediaClient, query: SearchQuery) -> Sequence[str]:
    """Convenience: the texts of the posts matching ``query``."""
    return [post.text for post in client.search(query)]
