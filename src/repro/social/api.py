"""Social-media client interface (the Twitter-API substitution layer).

The paper's proof of concept calls the Twitter search APIs.  Those APIs
are proprietary and no longer freely accessible, so this module defines
the narrow client interface PSP actually needs — recent-post search with
keyword, time and region filters, plus aggregate counts — and an
in-memory implementation backed by a :class:`~repro.social.corpus.Corpus`.

A production deployment would implement :class:`SocialMediaClient` against
a real platform API; everything above this layer is unchanged.  This is
the substitution documented in DESIGN.md.
"""

from __future__ import annotations

import abc
import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.social.corpus import Corpus
from repro.social.post import Post


@dataclass(frozen=True)
class SearchQuery:
    """A search request against the platform.

    Attributes:
        keyword: attack keyword or hashtag (canonical folding applied).
        since: inclusive lower bound on posting date.
        until: inclusive upper bound on posting date.
        region: restrict to a geographic region, if given.
        limit: maximum number of posts to return (None = unlimited).
    """

    keyword: str
    since: Optional[dt.date] = None
    until: Optional[dt.date] = None
    region: Optional[str] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.keyword:
            raise ValueError("query keyword must be non-empty")
        if self.since and self.until and self.since > self.until:
            raise ValueError(f"empty window: since {self.since} > until {self.until}")
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")


class SocialMediaClient(abc.ABC):
    """The platform operations the PSP framework depends on."""

    @abc.abstractmethod
    def search(self, query: SearchQuery) -> List[Post]:
        """Posts matching the query, oldest first."""

    @abc.abstractmethod
    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Number of matching posts per posting year."""

    def count(self, query: SearchQuery) -> int:
        """Total number of matching posts."""
        return sum(self.count_by_year(query).values())


class InMemoryClient(SocialMediaClient):
    """Corpus-backed client used throughout the reproduction."""

    def __init__(self, corpus: Corpus) -> None:
        self._corpus = corpus

    @property
    def corpus(self) -> Corpus:
        """The backing corpus."""
        return self._corpus

    def _filtered(self, query: SearchQuery) -> List[Post]:
        scope = self._corpus
        if query.region is not None:
            scope = scope.in_region(query.region)
        scope = scope.in_window(since=query.since, until=query.until)
        return scope.matching(query.keyword)

    def search(self, query: SearchQuery) -> List[Post]:
        """Posts matching the query, oldest first, truncated to ``limit``."""
        matches = self._filtered(query)
        if query.limit is not None:
            matches = matches[: query.limit]
        return matches

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Number of matching posts per posting year (limit ignored)."""
        counts: Dict[int, int] = {}
        for post in self._filtered(query):
            counts[post.year] = counts.get(post.year, 0) + 1
        return counts


def search_texts(client: SocialMediaClient, query: SearchQuery) -> Sequence[str]:
    """Convenience: the texts of the posts matching ``query``."""
    return [post.text for post in client.search(query)]
