"""Social-media post data model.

The PSP framework consumes only a narrow slice of what a social platform
exposes: post text, hashtags, a timestamp, geographic region and the
engagement counters that feed the Social Attraction Index ("the number of
views, interactions, and popularity of the identified posts", paper §III).
:class:`Post` models exactly that slice, platform-agnostically.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Tuple

from repro.nlp.hashtags import extract_hashtags


@dataclass(frozen=True)
class Engagement:
    """Engagement counters of one post."""

    views: int = 0
    likes: int = 0
    reposts: int = 0
    replies: int = 0

    def __post_init__(self) -> None:
        for name in ("views", "likes", "reposts", "replies"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @property
    def interactions(self) -> int:
        """Total active interactions (likes + reposts + replies)."""
        return self.likes + self.reposts + self.replies

    def combined(self, other: "Engagement") -> "Engagement":
        """Element-wise sum of two engagement records."""
        return Engagement(
            views=self.views + other.views,
            likes=self.likes + other.likes,
            reposts=self.reposts + other.reposts,
            replies=self.replies + other.replies,
        )


@dataclass(frozen=True)
class Post:
    """One social-media post.

    Attributes:
        post_id: platform-unique identifier.
        text: full post text (hashtags inline).
        author: author handle.
        created_at: posting date (date precision is enough for PSP's
            time-window analysis).
        region: coarse geographic region, e.g. ``"europe"``.
        engagement: view/interaction counters.
    """

    post_id: str
    text: str
    author: str
    created_at: dt.date
    region: str = "europe"
    engagement: Engagement = field(default_factory=Engagement)

    def __post_init__(self) -> None:
        if not self.post_id:
            raise ValueError("post_id must be non-empty")
        if not self.text:
            raise ValueError("post text must be non-empty")

    @property
    def hashtags(self) -> Tuple[str, ...]:
        """Canonical hashtags appearing in the post text."""
        return tuple(extract_hashtags(self.text))

    @property
    def year(self) -> int:
        """Posting year, used by time-window filters."""
        return self.created_at.year
