"""Declarative scenario registry: named specs the whole repo shares.

The paper's evaluation rests on exactly two calibrated corpora (ECM
reprogramming, excavator DPF).  Every consumer so far — the CLI, the
fleet pipeline, the streaming runtimes, the benches — re-assembled its
own (client, target, database) triple from the raw topic specs, which
kept the scenario surface frozen at those two workloads plus the light-
truck fleet contrast.  This module turns a scenario into *data*:

* :class:`ScenarioSpec` bundles a named
  :class:`~repro.social.synthetic.AttackTopicSpec` set with the
  :class:`~repro.core.config.TargetApplication` it assesses, the
  platform mix it arrives through (:class:`PlatformProfile` — per-
  platform trust weights and routing shares, realised via
  :class:`~repro.social.multiplatform.MultiPlatformClient`), an arrival
  cadence, and optional *adversarial overlays*: poisoning bursts
  (:class:`PoisoningBurst`, injected through
  :func:`~repro.core.poisoning.poison_corpus_with_flood`) and platform
  outage windows (:class:`OutageWindow`, consumed by the replay
  harness's delayed feeds together with the retry/degradation wrappers
  mirroring :mod:`repro.social.resilience`).
* :class:`ScenarioRegistry` maps names to specs; the default registry
  registers the two calibrated paper scenarios, the light-truck fleet,
  and six new scenarios spanning more ECUs (tractor, motorcycle, EV
  charging, marine, bus fleet), more platforms (enthusiast forums, a
  deep-web level with a 0.5 trust weight — the paper's §IV roadmap) and
  slang variants of the ECM threat.

Determinism contract: every derived artifact — database, per-platform
corpora, merged corpus, poisoned corpus — is a pure function of the
spec (seed included), so two builds of the same scenario are
bit-identical (asserted in ``tests/social/test_registry.py``).

Routing: posts are generated exactly like the legacy scenario corpora
(one seeded generator pass over the topic list), then routed to a
platform by a stable per-post hash weighted by the platform shares; a
keyword listed in some platform's ``keywords`` is *pinned* — only the
pinning platforms host it.  A platform's posts surface through the
aggregator branded (``<platform>:<post id>`` ids, trust-scaled
engagement — :func:`~repro.social.multiplatform.branded_post`), so a
single-platform trust-1.0 scenario reproduces the legacy corpus exactly
modulo the id prefix.
"""

from __future__ import annotations

import datetime as dt
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import TargetApplication
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.poisoning import poison_corpus_with_flood
from repro.iso21434.enums import AttackVector
from repro.social.api import InMemoryClient
from repro.social.corpus import Corpus
from repro.social.multiplatform import (
    MultiPlatformClient,
    PlatformSource,
    branded_post,
)
from repro.social.post import Post
from repro.social.scenarios import (
    ecm_reprogramming_specs,
    excavator_specs,
    light_truck_specs,
)
from repro.social.synthetic import AttackTopicSpec, generate_corpus

__all__ = [
    "OutageWindow",
    "PlatformProfile",
    "PoisoningBurst",
    "ScenarioRegistry",
    "ScenarioSpec",
    "default_registry",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]

#: Supported replay cadences (boundary spacing of the arrival profile).
ARRIVAL_CADENCES = ("monthly", "quarterly", "yearly")


@dataclass(frozen=True)
class PlatformProfile:
    """One platform in a scenario's arrival mix.

    Attributes:
        name: platform label (namespaces post ids, keys outages).
        trust: engagement scale factor in (0, 1] — the
            :class:`~repro.social.multiplatform.PlatformSource` trust
            weight (a deep-web hit counts less than a mainstream post).
        share: routing weight for unpinned keywords; a platform with
            share 2.0 receives twice the traffic of a share-1.0 one.
        keywords: keywords *pinned* to this platform — posts of a pinned
            keyword are hosted only by the platforms pinning it.
    """

    name: str
    trust: float = 1.0
    share: float = 1.0
    keywords: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("platform name must be non-empty")
        if not 0.0 < self.trust <= 1.0:
            raise ValueError(f"trust must be in (0, 1], got {self.trust}")
        if self.share < 0:
            raise ValueError(f"share must be >= 0, got {self.share}")
        object.__setattr__(self, "keywords", tuple(self.keywords))


@dataclass(frozen=True)
class PoisoningBurst:
    """A duplicate-flood poisoning campaign overlay.

    Materialised through
    :func:`~repro.core.poisoning.poison_corpus_with_flood`: ``copies``
    near-identical high-engagement posts for ``keyword`` from one
    author, landing on ``date`` on ``platform`` (the first platform
    when unset).  Post ids carry a ``poison`` prefix so defence audits
    can account for every injected post.
    """

    keyword: str
    date: dt.date
    copies: int
    author: str = "botnet001"
    views: int = 50000
    platform: Optional[str] = None

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies}")
        if self.views < 1:
            raise ValueError(f"views must be >= 1, got {self.views}")


@dataclass(frozen=True)
class OutageWindow:
    """A platform outage overlay: posts delayed until the outage ends.

    During ``[start, end]`` the platform delivers nothing; everything
    created in the window arrives in one backfill just after ``end`` —
    the replay-harness model of a persistent
    :class:`~repro.social.resilience.TransientPlatformError` outage that
    a best-effort consumer rides out.
    """

    platform: str
    start: dt.date
    end: dt.date

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"outage end {self.end} precedes start {self.start}"
            )

    def covers(self, day: dt.date) -> bool:
        """Whether ``day`` falls inside the outage."""
        return self.start <= day <= self.end


def _route_slot(scenario: str, post_id: str) -> float:
    """A stable routing coordinate in [0, 1) for one post."""
    return (
        zlib.crc32(f"{scenario}:{post_id}".encode("utf-8")) & 0xFFFFFFFF
    ) / 4294967296.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully declarative PSP scenario.

    Attributes:
        name: registry key (CLI ``--scenario`` value).
        title: human-readable one-liner.
        target: what the assessment is about (application/region/
            category) — shared by the fleet paths and the replay
            harness.
        topics: the attack-topic specs generating the corpus.
        platforms: the arrival mix; defaults to a single full-trust
            ``twitter`` profile (the legacy single-platform layout).
        seed: corpus generation seed.
        arrival_cadence: replay boundary spacing (``monthly``,
            ``quarterly`` or ``yearly``).
        poisoning: adversarial poisoning-burst overlays.
        outages: platform outage overlays.
    """

    name: str
    title: str
    target: TargetApplication
    topics: Tuple[AttackTopicSpec, ...]
    platforms: Tuple[PlatformProfile, ...] = (PlatformProfile("twitter"),)
    seed: int = 21434
    arrival_cadence: str = "monthly"
    poisoning: Tuple[PoisoningBurst, ...] = ()
    outages: Tuple[OutageWindow, ...] = ()
    _cache: Dict[str, object] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "topics", tuple(self.topics))
        object.__setattr__(self, "platforms", tuple(self.platforms))
        object.__setattr__(self, "poisoning", tuple(self.poisoning))
        object.__setattr__(self, "outages", tuple(self.outages))
        if not self.topics:
            raise ValueError(f"scenario {self.name!r} needs >= 1 topic")
        if not self.platforms:
            raise ValueError(f"scenario {self.name!r} needs >= 1 platform")
        if self.arrival_cadence not in ARRIVAL_CADENCES:
            raise ValueError(
                f"arrival_cadence must be one of {ARRIVAL_CADENCES}, "
                f"got {self.arrival_cadence!r}"
            )
        keywords = [topic.keyword for topic in self.topics]
        if len(keywords) != len(set(keywords)):
            raise ValueError(
                f"scenario {self.name!r} has duplicate topic keywords"
            )
        names = [platform.name for platform in self.platforms]
        if len(names) != len(set(names)):
            raise ValueError(
                f"scenario {self.name!r} has duplicate platform names"
            )
        known = set(keywords)
        for platform in self.platforms:
            for pinned in platform.keywords:
                if pinned not in known:
                    raise ValueError(
                        f"platform {platform.name!r} pins unknown keyword "
                        f"{pinned!r}"
                    )
        if all(platform.share == 0 for platform in self.platforms):
            raise ValueError(
                f"scenario {self.name!r} needs >= 1 platform with share > 0"
            )
        platform_names = set(names)
        for burst in self.poisoning:
            if burst.keyword not in known:
                raise ValueError(
                    f"poisoning burst targets unknown keyword "
                    f"{burst.keyword!r}"
                )
            if burst.platform is not None and burst.platform not in platform_names:
                raise ValueError(
                    f"poisoning burst names unknown platform "
                    f"{burst.platform!r}"
                )
        for outage in self.outages:
            if outage.platform not in platform_names:
                raise ValueError(
                    f"outage names unknown platform {outage.platform!r}"
                )

    # -- derived facts -------------------------------------------------------

    @property
    def keywords(self) -> Tuple[str, ...]:
        """The scenario's attack keywords, in topic order."""
        return tuple(topic.keyword for topic in self.topics)

    @property
    def start_year(self) -> int:
        """First year any topic posts."""
        return min(min(topic.yearly_volume) for topic in self.topics)

    @property
    def end_year(self) -> int:
        """Last year any topic posts."""
        return max(max(topic.yearly_volume) for topic in self.topics)

    @property
    def has_overlays(self) -> bool:
        """Whether any adversarial overlay (poisoning/outage) is set."""
        return bool(self.poisoning or self.outages)

    def describe(self) -> str:
        """One-line scenario summary for listings."""
        overlays = []
        if self.poisoning:
            overlays.append(f"{len(self.poisoning)} poisoning burst(s)")
        if self.outages:
            overlays.append(f"{len(self.outages)} outage(s)")
        suffix = f" [{', '.join(overlays)}]" if overlays else ""
        return (
            f"{self.name}: {self.title} — {len(self.topics)} topics, "
            f"{len(self.platforms)} platform(s), "
            f"{self.start_year}..{self.end_year}{suffix}"
        )

    # -- derived artifacts ---------------------------------------------------

    def database(self) -> KeywordDatabase:
        """A fresh annotated keyword database covering every topic."""
        database = KeywordDatabase()
        for topic in self.topics:
            database.add(
                AttackKeyword(
                    keyword=topic.keyword,
                    vector=topic.vector,
                    owner_approved=topic.owner_approved,
                )
            )
        return database

    def _platform_for(self, keyword: str, post_id: str) -> str:
        """The platform hosting one post (stable, share-weighted)."""
        pinning = [p for p in self.platforms if keyword in p.keywords]
        eligible = pinning or [
            p for p in self.platforms if not p.keywords and p.share > 0
        ]
        if not eligible:
            # Every share-bearing platform pins other keywords; fall
            # back to the whole mix so the post is not dropped.
            eligible = list(self.platforms)
        if len(eligible) == 1:
            return eligible[0].name
        total = sum(p.share for p in eligible)
        slot = _route_slot(self.name, post_id) * total
        cumulative = 0.0
        for platform in eligible:
            cumulative += platform.share
            if slot < cumulative:
                return platform.name
        return eligible[-1].name

    def _platform_posts(self, *, poisoned: bool) -> Dict[str, List[Post]]:
        """Raw (unbranded) posts per platform, insertion-ordered."""
        per_platform: Dict[str, List[Post]] = {
            platform.name: [] for platform in self.platforms
        }
        corpus = generate_corpus(self.topics, seed=self.seed)
        posts = list(corpus.posts)
        offset = 0
        for topic in self.topics:
            count = topic.total_volume
            for post in posts[offset : offset + count]:
                per_platform[
                    self._platform_for(topic.keyword, post.post_id)
                ].append(post)
            offset += count
        if poisoned:
            for index, burst in enumerate(self.poisoning):
                host = burst.platform or self.platforms[0].name
                per_platform[host] = poison_corpus_with_flood(
                    per_platform[host],
                    keyword=burst.keyword,
                    copies=burst.copies,
                    author=burst.author,
                    views=burst.views,
                    region=self.target.region,
                    created_at=burst.date,
                    id_prefix=f"poison{index:02d}x",
                )
        return per_platform

    def _sources(self, *, poisoned: bool) -> Tuple[PlatformSource, ...]:
        key = f"sources:{poisoned}"
        cached = self._cache.get(key)
        if cached is None:
            per_platform = self._platform_posts(poisoned=poisoned)
            cached = tuple(
                PlatformSource(
                    name=platform.name,
                    client=InMemoryClient(Corpus(per_platform[platform.name])),
                    trust=platform.trust,
                )
                for platform in self.platforms
            )
            self._cache[key] = cached
        return cached  # type: ignore[return-value]

    def client(self, *, poisoned: bool = False) -> MultiPlatformClient:
        """The scenario's aggregated multi-platform client.

        Every consumer — batch pipeline, fleet, monitor — sees the
        platform mix through the same
        :class:`~repro.social.multiplatform.MultiPlatformClient`
        surface the paper's §IV roadmap describes.
        """
        return MultiPlatformClient(list(self._sources(poisoned=poisoned)))

    def corpus(self, *, poisoned: bool = False) -> Corpus:
        """The merged corpus exactly as the aggregator surfaces it.

        Posts are branded per platform (namespaced ids, trust-scaled
        engagement) and merged oldest-first — feeding this corpus
        through a streaming feed is equivalent to querying
        :meth:`client`, which is what makes batch-vs-stream parity
        checks meaningful.
        """
        key = f"corpus:{poisoned}"
        cached = self._cache.get(key)
        if cached is None:
            merged = [
                branded_post(source, post)
                for source in self._sources(poisoned=poisoned)
                for post in source.client.corpus.posts
            ]
            merged.sort(key=lambda post: (post.created_at, post.post_id))
            cached = Corpus(merged)
            self._cache[key] = cached
        return cached  # type: ignore[return-value]

    def poisoned_corpus(self) -> Corpus:
        """Shorthand for ``corpus(poisoned=True)``."""
        return self.corpus(poisoned=True)

    def platform_of(self, post: Post) -> str:
        """The platform a branded post came from (id-prefix decode)."""
        name, _, _ = post.post_id.partition(":")
        return name


class ScenarioRegistry:
    """Name → :class:`ScenarioSpec` mapping with stable ordering."""

    def __init__(self) -> None:
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(
        self, spec: ScenarioSpec, *, replace: bool = False
    ) -> ScenarioSpec:
        """Add a spec; refuses duplicates unless ``replace=True``."""
        if not replace and spec.name in self._specs:
            raise ValueError(f"scenario {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """Look up one scenario; KeyError lists the known names."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._specs)

    def specs(self) -> Tuple[ScenarioSpec, ...]:
        """Registered specs, in registration order."""
        return tuple(self._specs.values())

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs


# -- the new scenario topic sets ----------------------------------------------


def _volumes(**per_year: int) -> Dict[int, int]:
    """``y2017=55, ...`` → ``{2017: 55, ...}`` (keyword-date sugar)."""
    return {int(year[1:]): count for year, count in per_year.items()}


def tractor_specs() -> Tuple[AttackTopicSpec, ...]:
    """Agricultural-tractor ECU tampering: emissions vs precision-ag.

    EGR blanking (physical) dominates historically; OBD "agritune"
    remaps overtake from 2021 — a second trend-inversion regime beyond
    the paper's ECM scenario, on a different ECU family.
    """
    return (
        AttackTopicSpec(
            keyword="egrblank",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2017=55, y2018=55, y2019=55, y2020=35, y2021=22, y2022=16,
                y2023=12,
            ),
            engagement_scale=1.1,
            companion_tags=("egroff", "tractorpower"),
        ),
        AttackTopicSpec(
            keyword="agritune",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2017=8, y2018=8, y2019=10, y2020=28, y2021=55, y2022=85,
                y2023=105,
            ),
            engagement_scale=1.2,
            price_range=(250.0, 400.0),
            price_mention_rate=0.2,
            companion_tags=("obdremap", "fieldtuning"),
        ),
        AttackTopicSpec(
            keyword="defdelete",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2017=20, y2018=20, y2019=20, y2020=20, y2021=20, y2022=20,
                y2023=20,
            ),
            engagement_scale=0.9,
        ),
        AttackTopicSpec(
            keyword="autosteerunlock",
            vector=AttackVector.ADJACENT,
            owner_approved=True,
            yearly_volume=_volumes(
                y2017=6, y2018=6, y2019=6, y2020=6, y2021=6, y2022=6, y2023=6,
            ),
            engagement_scale=0.8,
        ),
        AttackTopicSpec(
            keyword="gpskittheft",
            vector=AttackVector.PHYSICAL,
            owner_approved=False,
            yearly_volume=_volumes(
                y2017=18, y2018=18, y2019=18, y2020=18, y2021=18, y2022=18,
                y2023=18,
            ),
            positive_ratio=0.0,
        ),
    )


def motorcycle_specs() -> Tuple[AttackTopicSpec, ...]:
    """Motorcycle ECU tampering: exhaust decat vs fuel-map flashing."""
    return (
        AttackTopicSpec(
            keyword="decatpipe",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2016=50, y2017=50, y2018=50, y2019=40, y2020=25, y2021=18,
                y2022=14, y2023=10,
            ),
            engagement_scale=1.1,
            companion_tags=("fullsystem", "racebike"),
        ),
        AttackTopicSpec(
            keyword="racefuelmap",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2016=6, y2017=8, y2018=12, y2019=20, y2020=40, y2021=60,
                y2022=80, y2023=95,
            ),
            engagement_scale=1.2,
            price_range=(120.0, 260.0),
            price_mention_rate=0.25,
            companion_tags=("dynotune",),
        ),
        AttackTopicSpec(
            keyword="quickshifterhack",
            vector=AttackVector.ADJACENT,
            owner_approved=True,
            yearly_volume=_volumes(
                y2016=9, y2017=9, y2018=9, y2019=9, y2020=9, y2021=9,
                y2022=9, y2023=9,
            ),
            engagement_scale=0.8,
        ),
        AttackTopicSpec(
            keyword="bikejacking",
            vector=AttackVector.PHYSICAL,
            owner_approved=False,
            yearly_volume=_volumes(
                y2016=15, y2017=15, y2018=15, y2019=15, y2020=15, y2021=15,
                y2022=15, y2023=15,
            ),
            positive_ratio=0.0,
        ),
    )


def ev_charging_specs() -> Tuple[AttackTopicSpec, ...]:
    """EV battery/charging tampering, with deep-web outsider chatter."""
    return (
        AttackTopicSpec(
            keyword="batteryunlock",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2018=10, y2019=15, y2020=30, y2021=55, y2022=85, y2023=110,
            ),
            engagement_scale=1.3,
            price_range=(400.0, 700.0),
            price_mention_rate=0.2,
            companion_tags=("socunlock", "rangeboost"),
        ),
        AttackTopicSpec(
            keyword="chargerfirmwaremod",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2018=45, y2019=40, y2020=30, y2021=20, y2022=14, y2023=10,
            ),
            engagement_scale=1.0,
        ),
        AttackTopicSpec(
            keyword="regenhack",
            vector=AttackVector.ADJACENT,
            owner_approved=True,
            yearly_volume=_volumes(
                y2018=7, y2019=7, y2020=7, y2021=7, y2022=7, y2023=7,
            ),
            engagement_scale=0.8,
        ),
        AttackTopicSpec(
            keyword="chargecardcloning",
            vector=AttackVector.NETWORK,
            owner_approved=False,
            yearly_volume=_volumes(
                y2018=25, y2019=25, y2020=25, y2021=25, y2022=25, y2023=25,
            ),
            positive_ratio=0.0,
        ),
    )


def marine_specs() -> Tuple[AttackTopicSpec, ...]:
    """Outboard/marine ECM tampering (poisoning-burst host scenario)."""
    return (
        AttackTopicSpec(
            keyword="outboardderestrict",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2017=60, y2018=60, y2019=60, y2020=40, y2021=26, y2022=18,
                y2023=14,
            ),
            engagement_scale=1.1,
        ),
        AttackTopicSpec(
            keyword="marineecuflash",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2017=10, y2018=14, y2019=20, y2020=40, y2021=70, y2022=100,
                y2023=120,
            ),
            engagement_scale=1.2,
            price_range=(300.0, 500.0),
            price_mention_rate=0.2,
        ),
        AttackTopicSpec(
            keyword="hourmeterreset",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2017=12, y2018=12, y2019=12, y2020=12, y2021=12, y2022=12,
                y2023=12,
            ),
            engagement_scale=0.8,
        ),
        AttackTopicSpec(
            keyword="outboardtheft",
            vector=AttackVector.PHYSICAL,
            owner_approved=False,
            yearly_volume=_volumes(
                y2017=24, y2018=24, y2019=24, y2020=24, y2021=24, y2022=24,
                y2023=24,
            ),
            positive_ratio=0.0,
        ),
    )


def bus_fleet_specs() -> Tuple[AttackTopicSpec, ...]:
    """City-bus fleet tampering (platform-outage host scenario)."""
    return (
        AttackTopicSpec(
            keyword="adblueemulator",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2018=30, y2019=45, y2020=60, y2021=75, y2022=90, y2023=100,
            ),
            engagement_scale=1.2,
            price_range=(180.0, 320.0),
            price_mention_rate=0.25,
        ),
        AttackTopicSpec(
            keyword="egrblankplate",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2018=50, y2019=42, y2020=30, y2021=22, y2022=16, y2023=12,
            ),
            engagement_scale=1.0,
        ),
        AttackTopicSpec(
            keyword="limiterdelete",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2018=35, y2019=35, y2020=35, y2021=35, y2022=35, y2023=35,
            ),
            engagement_scale=0.9,
        ),
        AttackTopicSpec(
            keyword="fueltheft",
            vector=AttackVector.PHYSICAL,
            owner_approved=False,
            yearly_volume=_volumes(
                y2018=20, y2019=20, y2020=20, y2021=20, y2022=20, y2023=20,
            ),
            positive_ratio=0.0,
        ),
    )


def slang_ecm_specs() -> Tuple[AttackTopicSpec, ...]:
    """Slang variants of the ECM threat across a three-platform mix."""
    return (
        AttackTopicSpec(
            keyword="benchflash",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2016=70, y2017=70, y2018=70, y2019=60, y2020=45, y2021=30,
                y2022=20, y2023=15,
            ),
            engagement_scale=1.2,
            companion_tags=("bootmode", "bdmflash"),
        ),
        AttackTopicSpec(
            keyword="obdremap",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_volumes(
                y2016=10, y2017=12, y2018=15, y2019=25, y2020=45, y2021=70,
                y2022=95, y2023=115,
            ),
            engagement_scale=1.2,
            price_range=(200.0, 380.0),
            price_mention_rate=0.2,
            companion_tags=("stage1", "remapking"),
        ),
        AttackTopicSpec(
            keyword="immooff",
            vector=AttackVector.ADJACENT,
            owner_approved=True,
            yearly_volume=_volumes(
                y2016=12, y2017=12, y2018=12, y2019=12, y2020=12, y2021=12,
                y2022=12, y2023=12,
            ),
            engagement_scale=0.8,
        ),
        AttackTopicSpec(
            keyword="caninjection",
            vector=AttackVector.NETWORK,
            owner_approved=False,
            yearly_volume=_volumes(
                y2016=16, y2017=16, y2018=16, y2019=16, y2020=16, y2021=16,
                y2022=16, y2023=16,
            ),
            positive_ratio=0.0,
        ),
    )


# -- the default registry -----------------------------------------------------

_DEFAULT: Optional[ScenarioRegistry] = None


def _build_default() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    registry.register(
        ScenarioSpec(
            name="excavator",
            title="excavator DPF/emissions tampering (paper Fig. 12)",
            target=TargetApplication("excavator", "europe", "industrial"),
            topics=excavator_specs(),
        )
    )
    registry.register(
        ScenarioSpec(
            name="ecm",
            title="passenger-car ECM reprogramming (paper Fig. 9)",
            target=TargetApplication("car", "europe", "passenger"),
            topics=ecm_reprogramming_specs(),
        )
    )
    registry.register(
        ScenarioSpec(
            name="truck",
            title="light-truck fleet emissions/limiter tampering",
            target=TargetApplication("light_truck", "europe", "commercial"),
            topics=light_truck_specs(),
        )
    )
    registry.register(
        ScenarioSpec(
            name="tractor",
            title="agricultural-tractor EGR vs OBD-remap inversion",
            target=TargetApplication("tractor", "europe", "agricultural"),
            topics=tractor_specs(),
            platforms=(
                PlatformProfile("twitter", share=2.0),
                PlatformProfile("farmforum", trust=0.85, share=1.0),
            ),
        )
    )
    registry.register(
        ScenarioSpec(
            name="motorcycle",
            title="motorcycle decat vs fuel-map flashing",
            target=TargetApplication("motorcycle", "europe", "sports"),
            topics=motorcycle_specs(),
            platforms=(
                PlatformProfile("twitter", share=1.0),
                PlatformProfile("bikerforum", trust=0.9, share=1.0),
            ),
        )
    )
    registry.register(
        ScenarioSpec(
            name="ev",
            title="EV battery unlock + charging fraud (deep-web level)",
            target=TargetApplication("ev", "europe", "passenger"),
            topics=ev_charging_specs(),
            platforms=(
                PlatformProfile("twitter", share=2.0),
                PlatformProfile(
                    "deepweb",
                    trust=0.5,
                    share=0.0,
                    keywords=("chargecardcloning",),
                ),
            ),
        )
    )
    registry.register(
        ScenarioSpec(
            name="marine",
            title="outboard ECM tampering under a poisoning burst",
            target=TargetApplication("boat", "europe", "marine"),
            topics=marine_specs(),
            platforms=(PlatformProfile("boatforum"),),
            poisoning=(
                PoisoningBurst(
                    keyword="marineecuflash",
                    date=dt.date(2021, 6, 15),
                    copies=20,
                    author="botfleet07",
                    views=60000,
                ),
            ),
        )
    )
    registry.register(
        ScenarioSpec(
            name="busfleet",
            title="bus-fleet tampering with a platform outage window",
            target=TargetApplication("bus", "europe", "commercial"),
            topics=bus_fleet_specs(),
            platforms=(
                PlatformProfile("twitter", share=1.5),
                PlatformProfile(
                    "fleetforum",
                    trust=0.9,
                    share=0.0,
                    keywords=("limiterdelete",),
                ),
            ),
            outages=(
                OutageWindow(
                    platform="fleetforum",
                    start=dt.date(2021, 3, 1),
                    end=dt.date(2021, 9, 30),
                ),
            ),
        )
    )
    registry.register(
        ScenarioSpec(
            name="slangecm",
            title="ECM threat under slang drift, three-platform mix",
            target=TargetApplication("car", "europe", "passenger"),
            topics=slang_ecm_specs(),
            platforms=(
                PlatformProfile("twitter", share=2.0),
                PlatformProfile("tuningforum", trust=0.9, share=2.0),
                PlatformProfile("deepweb", trust=0.5, share=0.5),
            ),
        )
    )
    return registry


def default_registry() -> ScenarioRegistry:
    """The process-wide default registry (built once, lazily)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = _build_default()
    return _DEFAULT


def register_scenario(
    spec: ScenarioSpec, *, replace: bool = False
) -> ScenarioSpec:
    """Register a spec on the default registry."""
    return default_registry().register(spec, replace=replace)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario on the default registry."""
    return default_registry().get(name)


def scenario_names() -> Tuple[str, ...]:
    """The default registry's scenario names, registration-ordered."""
    return default_registry().names()
