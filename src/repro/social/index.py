"""Inverted corpus index: one-pass multi-keyword matching.

The PSP loop mines every attack keyword of the database over every
analysis window, so corpus matching is the innermost hot path of the
whole framework.  :class:`CorpusIndex` answers an entire batch of
keywords in one pass over the corpus:

* posts are held **date-sorted**, so any analysis window is a contiguous
  slice found by bisection — no per-window sub-corpus construction;
* three inverted posting maps (canonical hashtag, normalized token,
  stemmed token → ascending post positions) *confirm* matches without
  touching the text: an exact hashtag/token/stem hit is provably a
  folded-text match, because canonical folding removes exactly the
  characters squashing removes;
* the **free-text phrase fallback** (multi-word phrases, mid-token and
  cross-boundary occurrences) runs as a single sweep over the window's
  residual candidates, probing every still-unconfirmed keyword against
  the post's precomputed
  :attr:`~repro.nlp.analysis.PostAnalysis.haystack` — one C-level
  substring test per (keyword, post) pair instead of a full
  re-normalize/re-stem/re-join.

Result sets are post-for-post identical to the naive per-keyword
:func:`~repro.nlp.normalize.keyword_in_text` scan (plus the legacy
hashtag-index union); the equivalence is property-tested in
``tests/properties/test_index_equivalence.py``.
"""

from __future__ import annotations

import datetime as dt
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.nlp.analysis import PostAnalysis, analyze_text
from repro.nlp.normalize import canonical_keyword
from repro.social.post import Post


class CorpusIndex:
    """Immutable inverted index over one set of posts.

    Built once per :class:`~repro.social.corpus.Corpus` (lazily, on the
    first keyword query) and reused by every subsequent query — any
    keywords, any window.
    """

    def __init__(self, posts: Iterable[Post]) -> None:
        order = sorted(posts, key=lambda p: (p.created_at, p.post_id))
        self._order: Tuple[Post, ...] = tuple(order)
        self._dates: List[dt.date] = [p.created_at for p in order]
        self._analyses: List[PostAnalysis] = [
            analyze_text(p.text) for p in order
        ]
        self._haystacks: List[str] = [a.haystack for a in self._analyses]
        tag_postings: Dict[str, List[int]] = {}
        token_postings: Dict[str, List[int]] = {}
        stem_postings: Dict[str, List[int]] = {}
        for position, analysis in enumerate(self._analyses):
            for tag in analysis.hashtag_set:
                tag_postings.setdefault(tag, []).append(position)
            for word in analysis.word_set:
                token_postings.setdefault(word, []).append(position)
            for stemmed in set(analysis.stems):
                stem_postings.setdefault(stemmed, []).append(position)
        self._tag_postings = tag_postings
        self._token_postings = token_postings
        self._stem_postings = stem_postings

    def __len__(self) -> int:
        return len(self._order)

    @property
    def posts(self) -> Tuple[Post, ...]:
        """All posts in (created_at, post_id) order."""
        return self._order

    @property
    def distinct_terms(self) -> int:
        """Number of distinct indexed terms (tags + tokens + stems)."""
        return (
            len(self._tag_postings)
            + len(self._token_postings)
            + len(self._stem_postings)
        )

    def window_bounds(
        self,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
    ) -> Tuple[int, int]:
        """The [lo, hi) position slice covering ``since <= date <= until``."""
        lo = 0 if since is None else bisect_left(self._dates, since)
        hi = len(self._dates) if until is None else bisect_right(self._dates, until)
        return lo, max(lo, hi)

    def _confirmed_positions(self, canonical: str, lo: int, hi: int) -> Set[int]:
        """Window positions provably matching ``canonical`` via postings."""
        confirmed: Set[int] = set()
        for postings in (
            self._tag_postings,
            self._token_postings,
            self._stem_postings,
        ):
            positions = postings.get(canonical)
            if positions:
                start = bisect_left(positions, lo)
                stop = bisect_left(positions, hi)
                confirmed.update(positions[start:stop])
        return confirmed

    def search_many(
        self,
        keywords: Sequence[str],
        *,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, List[Post]]:
        """Resolve every keyword of a batch in one corpus sweep.

        Returns a mapping from each input keyword (duplicates folded,
        order preserved) to its matching posts, oldest first, truncated
        to ``limit`` per keyword.  Keywords sharing a canonical form are
        matched once and share the result list.
        """
        lo, hi = self.window_bounds(since, until)

        # Group keywords by canonical form; each group is matched once.
        groups: Dict[str, List[str]] = {}
        for keyword in dict.fromkeys(keywords):
            groups.setdefault(canonical_keyword(keyword), []).append(keyword)

        jobs: List[Tuple[str, Set[int], List[int]]] = [
            (canonical, self._confirmed_positions(canonical, lo, hi), [])
            for canonical in groups
        ]
        # Keywords folding to the empty string can never free-text match
        # (keyword_in_text returns False); only their hashtag-confirmed
        # posts — the legacy hashtag-index union — survive.
        sweep_jobs = [job for job in jobs if job[0]]

        haystacks = self._haystacks
        for position in range(lo, hi):
            haystack = haystacks[position]
            for canonical, confirmed, matched in sweep_jobs:
                if position in confirmed or canonical in haystack:
                    matched.append(position)

        order = self._order
        results: Dict[str, List[Post]] = {}
        for canonical, confirmed, matched in jobs:
            if not canonical:
                matched = sorted(confirmed)
            if limit is not None:
                matched = matched[:limit]
            posts = [order[position] for position in matched]
            for keyword in groups[canonical]:
                results[keyword] = list(posts)
        return results

    def matching(self, keyword: str) -> List[Post]:
        """All posts matching one keyword (no window), oldest first."""
        return self.search_many((keyword,))[keyword]

    def extended_with(self, posts: Iterable[Post]) -> "CorpusIndex":
        """A new index over this one's posts plus ``posts``.

        This is the compaction primitive of the streaming layer
        (:class:`~repro.stream.index.StreamingCorpusIndex`): re-indexing
        the union re-sorts positions and postings from scratch, but the
        per-text analyses are served from the shared
        :func:`~repro.nlp.analysis.analyze_text` memo, so the dominant
        re-analysis cost is not paid twice.
        """
        return CorpusIndex(list(self._order) + list(posts))
