"""Inverted corpus index: one-pass multi-keyword matching.

The PSP loop mines every attack keyword of the database over every
analysis window, so corpus matching is the innermost hot path of the
whole framework.  :class:`CorpusIndex` answers an entire batch of
keywords in one pass over the corpus.  Since the columnar rework the
index is a thin query surface over
:class:`~repro.social.columnar.ColumnarCorpus`:

* posts are held **date-sorted** in flat columns, so any analysis window
  is a contiguous slice found by bisecting an int array — no per-window
  sub-corpus construction;
* three inverted posting maps (canonical hashtag, normalized token,
  stemmed token → ascending post positions, ``array('I')`` chunks)
  *confirm* matches without touching the text: an exact
  hashtag/token/stem hit is provably a folded-text match, because
  canonical folding removes exactly the characters squashing removes;
* the **free-text phrase fallback** (multi-word phrases, mid-token and
  cross-boundary occurrences) runs as one C-level ``str.find`` sweep
  over the window's slice of the shared haystack arena, instead of one
  substring probe per ``(keyword, post)`` pair over per-post strings;
* `Post` objects materialize lazily, only for positions that appear in
  a result set.

Result sets are post-for-post identical to the naive per-keyword
:func:`~repro.nlp.normalize.keyword_in_text` scan (plus the legacy
hashtag-index union); the equivalence is property-tested in
``tests/properties/test_index_equivalence.py`` and
``tests/properties/test_columnar_equivalence.py``.
"""

from __future__ import annotations

import datetime as dt
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.nlp.normalize import canonical_keyword
from repro.social.columnar import ColumnarCorpus, TextInterner
from repro.social.post import Post


class CorpusIndex:
    """Immutable inverted index over one set of posts.

    Built once per :class:`~repro.social.corpus.Corpus` (lazily, on the
    first keyword query) and reused by every subsequent query — any
    keywords, any window.
    """

    def __init__(
        self,
        posts: Iterable[Post] = (),
        *,
        interner: Optional[TextInterner] = None,
        columns: Optional[ColumnarCorpus] = None,
    ) -> None:
        if columns is not None:
            self._columns = columns
        else:
            self._columns = ColumnarCorpus.from_posts(posts, interner=interner)

    def __len__(self) -> int:
        return len(self._columns)

    @property
    def columns(self) -> ColumnarCorpus:
        """The columnar segment backing this index."""
        return self._columns

    @property
    def posts(self) -> Tuple[Post, ...]:
        """All posts in (created_at, post_id) order (materialized lazily)."""
        return self._columns.all_posts()

    @property
    def distinct_terms(self) -> int:
        """Number of distinct indexed terms (tags + tokens + stems)."""
        return self._columns.distinct_terms

    def window_bounds(
        self,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
    ) -> Tuple[int, int]:
        """The [lo, hi) position slice covering ``since <= date <= until``."""
        return self._columns.window_bounds(since, until)

    def search_many(
        self,
        keywords: Sequence[str],
        *,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, List[Post]]:
        """Resolve every keyword of a batch in one arena sweep each.

        Returns a mapping from each input keyword (duplicates folded,
        order preserved) to its matching posts, oldest first, truncated
        to ``limit`` per keyword.  Keywords sharing a canonical form are
        matched once and share the result list.
        """
        columns = self._columns
        lo, hi = columns.window_bounds(since, until)

        # Group keywords by canonical form; each group is matched once.
        groups: Dict[str, List[str]] = {}
        for keyword in dict.fromkeys(keywords):
            groups.setdefault(canonical_keyword(keyword), []).append(keyword)

        results: Dict[str, List[Post]] = {}
        for canonical, originals in groups.items():
            matched = columns.search_positions(canonical, lo, hi)
            if limit is not None:
                matched = matched[:limit]
            posts = columns.posts_at(matched)
            for keyword in originals:
                results[keyword] = list(posts)
        return results

    def matching(self, keyword: str) -> List[Post]:
        """All posts matching one keyword (no window), oldest first."""
        return self.search_many((keyword,))[keyword]

    def extended_with(self, posts: Iterable[Post]) -> "CorpusIndex":
        """A new index over this one's posts plus ``posts``.

        This is the compaction primitive of the streaming layer
        (:class:`~repro.stream.index.StreamingCorpusIndex`).  In-order
        extensions — the streaming common case — concatenate every
        column at C speed and re-base posting chunks instead of
        re-indexing; out-of-order extensions gather-merge on the global
        sort key.  Either way the per-text analyses come from the shared
        interner, so the dominant analysis cost is never paid twice.
        """
        batch = ColumnarCorpus.from_posts(
            posts, interner=self._columns.interner
        )
        return CorpusIndex(columns=self._columns.extended_with(batch))

    def extended_with_index(self, other: Optional["CorpusIndex"]) -> "CorpusIndex":
        """Like :meth:`extended_with`, reusing an already-built index."""
        if other is None or len(other) == 0:
            return self
        return CorpusIndex(columns=self._columns.extended_with(other._columns))
