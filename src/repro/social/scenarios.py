"""Scenario-calibrated corpus specifications for the paper's experiments.

Two corpora drive the evaluation:

* :func:`ecm_reprogramming_specs` — the Engine Control Module (ECM)
  reprogramming threat of paper Fig. 9.  Bench/physical reprogramming
  dominates historically; OBD/local tuning overtakes it from 2022.  This
  produces Fig. 9-B (full window: physical ranked first) and Fig. 9-C
  (window >= 2022: local ranked first — the trend inversion the paper
  attributes to improved secure-boot bypasses via OBD).
* :func:`excavator_specs` — the "excavator, Europe" query of paper
  Fig. 12.  DPF delete is the highest-scoring insider attack; defeat-device
  prices average 360 EUR (the paper's PPIA input for Eq. 6).

Both sets include outsider topics (relay-attack theft) so the insider/
outsider split (paper Fig. 7, blocks 8-9) has both classes to separate.

The volume numbers are calibration constants, not paper data: the paper
reports only the *resulting* rankings, so volumes were chosen to encode
the reported direction and leave comfortable margins (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.iso21434.enums import AttackVector
from repro.social.corpus import Corpus
from repro.social.synthetic import AttackTopicSpec, generate_corpus


def _flat(years: range, per_year: int) -> Dict[int, int]:
    """A constant posts-per-year profile."""
    return {year: per_year for year in years}


def ecm_reprogramming_specs() -> Tuple[AttackTopicSpec, ...]:
    """Topic specs for the ECM-reprogramming corpus (paper Fig. 9).

    Volumes per vector and window:

    ================  ========  =============  ===========
    Topic             Vector    2015..2021     2022..2023
    ================  ========  =============  ===========
    ecmreprogramming  physical  150/yr then 90 40 + 30
    obdtuning         local     25/yr then 60  140 + 160
    dongletuning      adjacent  10/yr          10 + 10
    remoteecuflash    network   3/yr           3 + 3
    ================  ========  =============  ===========

    Full-window share: physical ~0.60, local ~0.29 → physical High,
    local Medium (Fig. 9-B).  Since-2022 share: local ~0.77, physical
    ~0.18 → local High, physical Low (Fig. 9-C).
    """
    return (
        AttackTopicSpec(
            keyword="ecmreprogramming",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume={**_flat(range(2015, 2021), 150), 2021: 90, 2022: 40, 2023: 30},
            engagement_scale=1.2,
            companion_tags=("chiptuning", "dieselpower", "stage1"),
        ),
        AttackTopicSpec(
            keyword="obdtuning",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume={**_flat(range(2015, 2021), 25), 2021: 60, 2022: 140, 2023: 160},
            engagement_scale=1.2,
            companion_tags=("obdflash", "ecutuning"),
        ),
        AttackTopicSpec(
            keyword="dongletuning",
            vector=AttackVector.ADJACENT,
            owner_approved=True,
            yearly_volume=_flat(range(2015, 2024), 10),
        ),
        AttackTopicSpec(
            keyword="remoteecuflash",
            vector=AttackVector.NETWORK,
            owner_approved=True,
            yearly_volume=_flat(range(2015, 2024), 3),
        ),
        AttackTopicSpec(
            keyword="relayattack",
            vector=AttackVector.ADJACENT,
            owner_approved=False,
            yearly_volume=_flat(range(2015, 2024), 30),
            positive_ratio=0.0,
        ),
    )


def excavator_specs() -> Tuple[AttackTopicSpec, ...]:
    """Topic specs for the excavator corpus (paper Fig. 12 and Eq. 6).

    DPF delete carries the highest volume and engagement so it tops the
    SAI ranking, as in Fig. 12.  Its posts quote defeat-device prices in
    [300, 420] EUR (mean 360 — the paper's PPIA).  The remaining insider
    topics rank below it in descending order.
    """
    return (
        AttackTopicSpec(
            keyword="dpfdelete",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_flat(range(2018, 2024), 120),
            engagement_scale=1.6,
            positive_ratio=0.75,
            price_range=(300.0, 420.0),
            price_mention_rate=0.35,
            companion_tags=("dpfoff", "dieselpower", "nodpf"),
        ),
        AttackTopicSpec(
            keyword="egrdelete",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_flat(range(2018, 2024), 80),
            engagement_scale=1.2,
            price_range=(150.0, 260.0),
            price_mention_rate=0.2,
            companion_tags=("egroff", "egrremoval"),
        ),
        AttackTopicSpec(
            keyword="adbluedelete",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_flat(range(2019, 2024), 60),
            engagement_scale=1.0,
            price_range=(200.0, 330.0),
            price_mention_rate=0.2,
            companion_tags=("adblueoff", "scrdelete"),
        ),
        AttackTopicSpec(
            keyword="chiptuning",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_flat(range(2018, 2024), 45),
            engagement_scale=0.9,
        ),
        AttackTopicSpec(
            keyword="speedlimiterremoval",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_flat(range(2019, 2024), 25),
            engagement_scale=0.8,
        ),
        AttackTopicSpec(
            keyword="hourmeterrollback",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_flat(range(2019, 2024), 12),
            engagement_scale=0.7,
        ),
        AttackTopicSpec(
            keyword="keycloning",
            vector=AttackVector.PHYSICAL,
            owner_approved=False,
            yearly_volume=_flat(range(2018, 2024), 20),
            positive_ratio=0.0,
        ),
    )


def light_truck_specs() -> Tuple[AttackTopicSpec, ...]:
    """Topic specs for a European light-truck fleet corpus.

    The paper's §III market segmentation: "Industrial vehicles fall into
    the first category [reducing operational costs]".  Fleet-operator
    tampering concentrates on emissions (AdBlue/SCR — running costs) and
    the speed limiter (delivery times); both are local/OBD attacks, so
    this corpus exercises a local-dominant regime *without* a trend
    inversion — a useful contrast to the ECM scenario.
    """
    return (
        AttackTopicSpec(
            keyword="adbluedelete",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_flat(range(2019, 2024), 140),
            engagement_scale=1.3,
            price_range=(200.0, 330.0),
            price_mention_rate=0.25,
            companion_tags=("adblueoff", "scrdelete"),
        ),
        AttackTopicSpec(
            keyword="speedlimiterremoval",
            vector=AttackVector.LOCAL,
            owner_approved=True,
            yearly_volume=_flat(range(2019, 2024), 90),
            engagement_scale=1.0,
            price_range=(100.0, 160.0),
            price_mention_rate=0.2,
        ),
        AttackTopicSpec(
            keyword="egrdelete",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_flat(range(2019, 2024), 55),
            engagement_scale=0.9,
        ),
        AttackTopicSpec(
            keyword="tachographtampering",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
            yearly_volume=_flat(range(2019, 2024), 35),
            engagement_scale=0.8,
        ),
        AttackTopicSpec(
            keyword="cargotheft",
            vector=AttackVector.PHYSICAL,
            owner_approved=False,
            yearly_volume=_flat(range(2019, 2024), 25),
            positive_ratio=0.0,
        ),
    )


def light_truck_corpus(*, seed: int = 21434) -> Corpus:
    """The generated light-truck corpus."""
    return generate_corpus(light_truck_specs(), seed=seed)


def ecm_reprogramming_corpus(*, seed: int = 21434) -> Corpus:
    """The generated ECM-reprogramming corpus (paper Fig. 9 workload)."""
    return generate_corpus(ecm_reprogramming_specs(), seed=seed)


def excavator_corpus(*, seed: int = 21434) -> Corpus:
    """The generated excavator corpus (paper Fig. 12 / Eq. 6 workload)."""
    return generate_corpus(excavator_specs(), seed=seed)


#: Vector ground truth per keyword, used to seed the keyword database.
KEYWORD_VECTORS: Dict[str, AttackVector] = {
    spec.keyword: spec.vector
    for spec in (
        ecm_reprogramming_specs() + excavator_specs() + light_truck_specs()
    )
}

#: Owner-approval ground truth per keyword (insider vs outsider topics).
KEYWORD_OWNER_APPROVED: Dict[str, bool] = {
    spec.keyword: spec.owner_approved
    for spec in (
        ecm_reprogramming_specs() + excavator_specs() + light_truck_specs()
    )
}
