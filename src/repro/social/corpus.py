"""Post corpus: container and query engine.

:class:`Corpus` stores posts and answers the queries PSP issues: keyword
match (canonical-folded, hashtag or free text), time-window filters
("posts since 2022", paper Fig. 9-C) and region filters.  Keyword
matching is answered by a lazily built
:class:`~repro.social.index.CorpusIndex` — columnar arenas
(:mod:`repro.social.columnar`), inverted hashtag/token/stem postings
and a one-pass batch matcher — so a whole batch of keywords over any
window is resolved in a single sweep instead of one linear scan per
keyword, and analysis windows are bisected instead of materialised as
sub-corpora.  Engagement totals fold straight over the index's
engagement columns, and memoized region views share the parent index's
text-analysis pool.
"""

from __future__ import annotations

import datetime as dt
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.nlp.normalize import canonical_keyword
from repro.social.index import CorpusIndex
from repro.social.post import Engagement, Post


class Corpus:
    """An immutable-by-convention collection of posts with query methods."""

    def __init__(self, posts: Iterable[Post] = ()) -> None:
        self._posts: List[Post] = list(posts)
        seen: Set[str] = set()
        for post in self._posts:
            if post.post_id in seen:
                raise ValueError(f"duplicate post id {post.post_id!r}")
            seen.add(post.post_id)
        self._ids: Set[str] = seen
        self._engine: Optional[CorpusIndex] = None
        self._region_views: Dict[str, "Corpus"] = {}

    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def __contains__(self, post_id: str) -> bool:
        return post_id in self._ids

    @property
    def posts(self) -> Sequence[Post]:
        """All posts, in insertion order."""
        return tuple(self._posts)

    def index(self) -> CorpusIndex:
        """The corpus' inverted index, built once on first use."""
        if self._engine is None:
            self._engine = CorpusIndex(self._posts)
        return self._engine

    def matching(self, keyword: str) -> List[Post]:
        """Posts matching ``keyword`` by hashtag or free text.

        Canonical hashtag, exact-token and stem postings confirm the
        common cases straight from the index; the folded free-text
        matcher covers the rest (multi-word phrases, mid-token
        occurrences) over precomputed haystacks, so "my dpf delete kit"
        still matches ``dpfdelete``.  Results are oldest first.
        """
        return self.index().matching(keyword)

    def search_many(
        self,
        keywords: Sequence[str],
        *,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, List[Post]]:
        """Per-keyword matches for a whole batch, in one corpus pass.

        The window is bisected out of the date-sorted index (no
        sub-corpus construction) and every keyword is resolved during a
        single sweep; see :meth:`CorpusIndex.search_many`.
        """
        return self.index().search_many(
            keywords, since=since, until=until, limit=limit
        )

    def in_window(
        self,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
    ) -> "Corpus":
        """Sub-corpus restricted to ``since <= created_at <= until``."""
        selected = [
            p
            for p in self._posts
            if (since is None or p.created_at >= since)
            and (until is None or p.created_at <= until)
        ]
        return Corpus(selected)

    def since_year(self, year: int) -> "Corpus":
        """Sub-corpus of posts from 1 January ``year`` onwards."""
        return self.in_window(since=dt.date(year, 1, 1))

    def in_region(self, region: str) -> "Corpus":
        """Sub-corpus of posts from the given region (case-insensitive)."""
        wanted = region.strip().lower()
        return Corpus(p for p in self._posts if p.region.lower() == wanted)

    def region_view(self, region: str) -> "Corpus":
        """Like :meth:`in_region`, but memoized on this corpus.

        Queries scoped to a region reuse one sub-corpus — and therefore
        one inverted index — per distinct region instead of rebuilding
        both on every call.
        """
        key = region.strip().lower()
        view = self._region_views.get(key)
        if view is None:
            view = self.in_region(region)
            if self._engine is not None:
                # The parent index already analyzed every text; the
                # view's index reuses that pool instead of re-analyzing
                # its subset.
                view._engine = CorpusIndex(
                    view._posts, interner=self._engine.columns.interner
                )
            self._region_views[key] = view
        return view

    def merged_with(self, other: "Corpus") -> "Corpus":
        """Union of two corpora (post ids must not collide)."""
        return Corpus(list(self._posts) + list(other.posts))

    def total_engagement(self, keyword: str) -> Engagement:
        """Summed engagement over all posts matching ``keyword``.

        Folded over the index's engagement columns — integer sums over
        the match positions, no ``Post`` materialization.
        """
        columns = self.index().columns
        lo, hi = columns.window_bounds()
        positions = columns.search_positions(
            canonical_keyword(keyword), lo, hi
        )
        views = likes = reposts = replies = 0
        for position in positions:
            v, l, r, p = columns.engagement_values(position)
            views += v
            likes += l
            reposts += r
            replies += p
        return Engagement(
            views=views, likes=likes, reposts=reposts, replies=replies
        )

    def years(self) -> List[int]:
        """Sorted distinct posting years present in the corpus."""
        return sorted({p.year for p in self._posts})

    def texts(self) -> List[str]:
        """All post texts, in insertion order."""
        return [p.text for p in self._posts]
