"""Post corpus: container and query engine.

:class:`Corpus` stores posts and answers the queries PSP issues: keyword
match (canonical-folded, hashtag or free text), time-window filters
("posts since 2022", paper Fig. 9-C) and region filters.  Keyword matching
is index-accelerated: an inverted index from canonical hashtag to post is
built lazily and free-text matching only runs on the residual posts.
"""

from __future__ import annotations

import datetime as dt
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.nlp.normalize import canonical_keyword, keyword_in_text
from repro.social.post import Engagement, Post


class Corpus:
    """An immutable-by-convention collection of posts with query methods."""

    def __init__(self, posts: Iterable[Post] = ()) -> None:
        self._posts: List[Post] = list(posts)
        seen: Set[str] = set()
        for post in self._posts:
            if post.post_id in seen:
                raise ValueError(f"duplicate post id {post.post_id!r}")
            seen.add(post.post_id)
        self._hashtag_index: Optional[Dict[str, List[Post]]] = None

    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def __contains__(self, post_id: str) -> bool:
        return any(p.post_id == post_id for p in self._posts)

    @property
    def posts(self) -> Sequence[Post]:
        """All posts, in insertion order."""
        return tuple(self._posts)

    def _index(self) -> Dict[str, List[Post]]:
        if self._hashtag_index is None:
            index: Dict[str, List[Post]] = {}
            for post in self._posts:
                for tag in set(post.hashtags):
                    index.setdefault(tag, []).append(post)
            self._hashtag_index = index
        return self._hashtag_index

    def matching(self, keyword: str) -> List[Post]:
        """Posts matching ``keyword`` by hashtag or free text.

        The canonical hashtag index answers the common case; posts without
        a matching hashtag are additionally scanned with the folded
        free-text matcher so "my dpf delete kit" still matches
        ``dpfdelete``.
        """
        canonical = canonical_keyword(keyword)
        by_tag = list(self._index().get(canonical, ()))
        tagged_ids = {p.post_id for p in by_tag}
        for post in self._posts:
            if post.post_id in tagged_ids:
                continue
            if keyword_in_text(keyword, post.text):
                by_tag.append(post)
        by_tag.sort(key=lambda p: (p.created_at, p.post_id))
        return by_tag

    def in_window(
        self,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
    ) -> "Corpus":
        """Sub-corpus restricted to ``since <= created_at <= until``."""
        selected = [
            p
            for p in self._posts
            if (since is None or p.created_at >= since)
            and (until is None or p.created_at <= until)
        ]
        return Corpus(selected)

    def since_year(self, year: int) -> "Corpus":
        """Sub-corpus of posts from 1 January ``year`` onwards."""
        return self.in_window(since=dt.date(year, 1, 1))

    def in_region(self, region: str) -> "Corpus":
        """Sub-corpus of posts from the given region (case-insensitive)."""
        wanted = region.strip().lower()
        return Corpus(p for p in self._posts if p.region.lower() == wanted)

    def merged_with(self, other: "Corpus") -> "Corpus":
        """Union of two corpora (post ids must not collide)."""
        return Corpus(list(self._posts) + list(other.posts))

    def total_engagement(self, keyword: str) -> Engagement:
        """Summed engagement over all posts matching ``keyword``."""
        total = Engagement()
        for post in self.matching(keyword):
            total = total.combined(post.engagement)
        return total

    def years(self) -> List[int]:
        """Sorted distinct posting years present in the corpus."""
        return sorted({p.year for p in self._posts})

    def texts(self) -> List[str]:
        """All post texts, in insertion order."""
        return [p.text for p in self._posts]
