"""Columnar corpus arenas: flat-array storage for 10M+ post corpora.

At millions of posts the indexing layers stop being algorithm-bound and
become *object*-bound: every `Post`, `PostAnalysis` sidecar and per-post
haystack `str` costs Python object headers, pointer chasing and GC
pressure.  :class:`ColumnarCorpus` stores one corpus segment column-wise
instead:

* **scalar columns** are stdlib :mod:`array` arrays — date ordinals
  (``'l'``, ascending, so window resolution is a bisect over a flat int
  buffer), the four engagement counters (``'q'``), and lazily built
  per-analyzer sentiment columns (``'d'``);
* **one haystack arena**: every post's folded match haystack joined into
  a single ``str`` with an ``'Q'`` offsets array, so the free-text
  matcher runs one C-level ``str.find`` loop over the arena and maps
  hits back to posts by bisecting the offsets — no per-post string
  objects on the probe path;
* **interned vocabularies**: hashtag/token/stem terms are
  ``sys.intern``-ed and postings are ``array('I')`` position lists held
  as ``(base, positions)`` chunks, so compaction re-bases a chunk header
  instead of rewriting every entry;
* **a text interner**: per distinct text the
  :class:`~repro.nlp.analysis.PostAnalysis` is computed exactly once per
  corpus lineage (streaming appends at 10M+ posts overflow the bounded
  :func:`~repro.nlp.analysis.analyze_text` memo; the interner pins the
  analyses the corpus actually references).

`Post` objects do **not** exist inside the store; they materialize
lazily — and are cached per position — only on result/report paths.
Two segments concatenate by array extension (in-order appends, the
streaming common case) or by a gather merge keyed on
``(created_at, post_id)`` (out-of-order arrivals), which is exactly the
semantics of re-sorting the concatenated post lists.  Equivalence with
the per-object reference implementation is property-tested in
``tests/properties/test_columnar_equivalence.py``.
"""

from __future__ import annotations

import datetime as dt
import sys
from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.nlp.analysis import PostAnalysis, analyze_text
from repro.social.post import Engagement, Post

__all__ = ["ARENA_SEPARATOR", "ColumnarCorpus", "TextInterner"]

#: Separator between per-post haystacks in the arena.  The same
#: character :mod:`repro.nlp.analysis` uses inside a haystack — canonical
#: keywords are alphanumeric-only, so no keyword can straddle two posts'
#: segments.
ARENA_SEPARATOR = "\n"

#: A term's posting chunks are consolidated into one flat array once the
#: chain grows past this; keeps per-term probe cost O(log chunks) even
#: under threshold-style compaction policies that compact very often.
_POSTING_CHUNK_LIMIT = 32

#: ``keyword -> List[(base, positions)]`` chunked posting map.
_PostingMap = Dict[str, List[Tuple[int, array]]]

#: Ordinal -> calendar year memo (distinct dates are few; `dt.date`
#: objects never materialize on the aggregate paths).
_YEAR_BY_ORDINAL: Dict[int, int] = {}


def year_of_ordinal(ordinal: int) -> int:
    """The calendar year of a date ordinal, without a `date` object hop."""
    year = _YEAR_BY_ORDINAL.get(ordinal)
    if year is None:
        year = dt.date.fromordinal(ordinal).year
        _YEAR_BY_ORDINAL[ordinal] = year
    return year


class TextInterner:
    """Unbounded ``text -> PostAnalysis`` pool for one corpus lineage.

    :func:`~repro.nlp.analysis.analyze_text` memoizes globally but with a
    bounded LRU; past ~32k distinct texts a streaming corpus would
    re-analyze evicted texts on every compaction.  The interner pins a
    strong reference per distinct text the corpus references, so analysis
    is paid exactly once per distinct text per lineage — and identical
    texts share one pooled ``str``/analysis across every segment.
    """

    __slots__ = ("_pool",)

    def __init__(self) -> None:
        self._pool: Dict[str, PostAnalysis] = {}

    def analysis(self, text: str) -> PostAnalysis:
        """The pooled analysis of ``text`` (computed on first sight)."""
        analysis = self._pool.get(text)
        if analysis is None:
            analysis = analyze_text(text)
            self._pool[text] = analysis
        return analysis

    def prune(self, keep_texts: Iterable[str]) -> int:
        """Drop pooled analyses whose text is not in ``keep_texts``.

        The tiered index calls this after a cold seal: texts that only
        survive inside immutable cold segments no longer need a pinned
        analysis (cold materialization re-analyzes into a throwaway
        pool).  Returns the number of evicted entries.
        """
        keep = keep_texts if isinstance(keep_texts, set) else set(keep_texts)
        stale = [text for text in self._pool if text not in keep]
        for text in stale:
            del self._pool[text]
        return len(stale)

    def __len__(self) -> int:
        return len(self._pool)

    def texts(self) -> Iterable[str]:
        """The distinct texts currently pinned in the pool."""
        return self._pool.keys()


def _consolidated(chunks: List[Tuple[int, array]]) -> List[Tuple[int, array]]:
    """Flatten a chunk chain into one re-based ``(0, positions)`` chunk."""
    flat = array("I")
    for base, positions in chunks:
        if base == 0:
            flat.extend(positions)
        else:
            flat.extend(position + base for position in positions)
    return [(0, flat)]


def _concat_postings(
    head: _PostingMap, tail: _PostingMap, shift: int
) -> _PostingMap:
    """Postings of two consecutive segments; tail chunks re-based by
    ``shift``.  Position arrays are shared, never copied or mutated."""
    merged = dict(head)
    for term, chunks in tail.items():
        shifted = [(base + shift, positions) for base, positions in chunks]
        known = merged.get(term)
        combined = known + shifted if known else shifted
        if len(combined) > _POSTING_CHUNK_LIMIT:
            combined = _consolidated(combined)
        merged[term] = combined
    return merged


class ColumnarCorpus:
    """One immutable, date-sorted corpus segment in columnar layout.

    Build with :meth:`from_posts`; grow with :meth:`extended_with`.  All
    columns are parallel and ordered by the global ``(created_at,
    post_id)`` sort key.  Instances share position arrays and pooled
    analyses with the segments they were derived from — nothing here is
    ever mutated after construction (the per-position `Post` cache and
    lazy sentiment columns are memos, not state).
    """

    __slots__ = (
        "_interner",
        "_dates",
        "_post_ids",
        "_texts",
        "_authors",
        "_region_codes",
        "_region_vocab",
        "_region_map",
        "_views",
        "_likes",
        "_reposts",
        "_replies",
        "_arena",
        "_offsets",
        "_tag_postings",
        "_token_postings",
        "_stem_postings",
        "_sentiments",
        "_post_cache",
        "_posts_tuple",
    )

    def __init__(
        self,
        *,
        interner: TextInterner,
        dates: array,
        post_ids: List[str],
        texts: List[str],
        authors: List[str],
        region_codes: array,
        region_vocab: List[str],
        views: array,
        likes: array,
        reposts: array,
        replies: array,
        arena: str,
        offsets: array,
        tag_postings: _PostingMap,
        token_postings: _PostingMap,
        stem_postings: _PostingMap,
        sentiments: Optional[Dict[object, array]] = None,
    ) -> None:
        self._interner = interner
        self._dates = dates
        self._post_ids = post_ids
        self._texts = texts
        self._authors = authors
        self._region_codes = region_codes
        self._region_vocab = region_vocab
        self._region_map = {region: code for code, region in enumerate(region_vocab)}
        self._views = views
        self._likes = likes
        self._reposts = reposts
        self._replies = replies
        self._arena = arena
        self._offsets = offsets
        self._tag_postings = tag_postings
        self._token_postings = token_postings
        self._stem_postings = stem_postings
        self._sentiments: Dict[object, array] = sentiments or {}
        self._post_cache: Dict[int, Post] = {}
        self._posts_tuple: Optional[Tuple[Post, ...]] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_posts(
        cls,
        posts: Iterable[Post] = (),
        *,
        interner: Optional[TextInterner] = None,
    ) -> "ColumnarCorpus":
        """Columnarize ``posts`` (stable-sorted by the global key)."""
        if interner is None:  # empty pools are falsy — test identity
            interner = TextInterner()
        ordered = sorted(posts, key=lambda p: (p.created_at, p.post_id))
        dates = array("l")
        post_ids: List[str] = []
        texts: List[str] = []
        authors: List[str] = []
        region_vocab: List[str] = []
        region_map: Dict[str, int] = {}
        region_codes = array("H")
        views = array("q")
        likes = array("q")
        reposts = array("q")
        replies = array("q")
        parts: List[str] = []
        offsets = array("Q", (0,))
        tag_arrays: Dict[str, array] = {}
        token_arrays: Dict[str, array] = {}
        stem_arrays: Dict[str, array] = {}
        end = 0
        intern = sys.intern
        for position, post in enumerate(ordered):
            analysis = interner.analysis(post.text)
            dates.append(post.created_at.toordinal())
            post_ids.append(post.post_id)
            texts.append(analysis.text)
            authors.append(intern(post.author))
            code = region_map.get(post.region)
            if code is None:
                code = len(region_vocab)
                region_map[post.region] = code
                region_vocab.append(post.region)
            region_codes.append(code)
            engagement = post.engagement
            views.append(engagement.views)
            likes.append(engagement.likes)
            reposts.append(engagement.reposts)
            replies.append(engagement.replies)
            parts.append(analysis.haystack)
            end += len(analysis.haystack) + 1
            offsets.append(end)
            for tag in analysis.hashtag_set:
                _posting_append(tag_arrays, intern(tag), position)
            for word in analysis.word_set:
                _posting_append(token_arrays, intern(word), position)
            for stemmed in set(analysis.stems):
                _posting_append(stem_arrays, intern(stemmed), position)
        return cls(
            interner=interner,
            dates=dates,
            post_ids=post_ids,
            texts=texts,
            authors=authors,
            region_codes=region_codes,
            region_vocab=region_vocab,
            views=views,
            likes=likes,
            reposts=reposts,
            replies=replies,
            arena=ARENA_SEPARATOR.join(parts),
            offsets=offsets,
            tag_postings={t: [(0, a)] for t, a in tag_arrays.items()},
            token_postings={t: [(0, a)] for t, a in token_arrays.items()},
            stem_postings={t: [(0, a)] for t, a in stem_arrays.items()},
        )

    # -- basic shape --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._dates)

    @property
    def interner(self) -> TextInterner:
        """The text-interning pool shared across this corpus lineage."""
        return self._interner

    @property
    def arena_chars(self) -> int:
        """Size of the joined haystack arena, in characters."""
        return len(self._arena)

    @property
    def distinct_terms(self) -> int:
        """Number of distinct indexed terms (tags + tokens + stems)."""
        return (
            len(self._tag_postings)
            + len(self._token_postings)
            + len(self._stem_postings)
        )

    @property
    def posting_entries(self) -> int:
        """Total posting positions across all terms and chunks."""
        return sum(
            len(positions)
            for postings in (
                self._tag_postings,
                self._token_postings,
                self._stem_postings,
            )
            for chunks in postings.values()
            for _, positions in chunks
        )

    def date_ordinal(self, position: int) -> int:
        """The date ordinal of one post position."""
        return self._dates[position]

    @property
    def region_vocab(self) -> Tuple[str, ...]:
        """The distinct regions, in first-appearance order."""
        return tuple(self._region_vocab)

    def region_code(self, position: int) -> int:
        """Index into :attr:`region_vocab` for one post position."""
        return self._region_codes[position]

    def engagement_values(self, position: int) -> Tuple[int, int, int, int]:
        """``(views, likes, reposts, replies)`` at one position — four
        flat-array reads, no `Engagement` object."""
        return (
            self._views[position],
            self._likes[position],
            self._reposts[position],
            self._replies[position],
        )

    def post_id(self, position: int) -> str:
        """The post id at one position."""
        return self._post_ids[position]

    def haystack(self, position: int) -> str:
        """One post's folded match haystack, sliced out of the arena."""
        start = self._offsets[position]
        return self._arena[start : self._offsets[position + 1] - 1]

    # -- window resolution --------------------------------------------------

    def window_bounds(
        self,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
    ) -> Tuple[int, int]:
        """The [lo, hi) position slice covering ``since <= date <= until``."""
        dates = self._dates
        lo = 0 if since is None else bisect_left(dates, since.toordinal())
        hi = (
            len(dates)
            if until is None
            else bisect_right(dates, until.toordinal())
        )
        return lo, max(lo, hi)

    # -- matching -----------------------------------------------------------

    def confirmed_positions(self, canonical: str, lo: int, hi: int) -> Set[int]:
        """Window positions provably matching ``canonical`` via postings."""
        confirmed: Set[int] = set()
        for postings in (
            self._tag_postings,
            self._token_postings,
            self._stem_postings,
        ):
            chunks = postings.get(canonical)
            if not chunks:
                continue
            for base, positions in chunks:
                start = bisect_left(positions, lo - base)
                stop = bisect_left(positions, hi - base)
                for index in range(start, stop):
                    confirmed.add(base + positions[index])
        return confirmed

    def arena_positions(self, canonical: str, lo: int, hi: int) -> List[int]:
        """Window positions whose haystack contains ``canonical``.

        One C-level ``str.find`` loop over the arena slice covering the
        window; a hit maps back to its post by bisecting the offsets and
        the scan resumes at the next post, so every position is reported
        at most once, ascending.  Exactly
        :meth:`~repro.nlp.analysis.PostAnalysis.matches_keyword` per
        post — the separator guarantees no cross-post match.
        """
        hits: List[int] = []
        if not canonical or lo >= hi:
            return hits
        arena = self._arena
        offsets = self._offsets
        # The window's last haystack ends one short of the next offset.
        stop = offsets[hi] - 1
        find = arena.find
        found = find(canonical, offsets[lo])
        while -1 < found < stop:
            position = bisect_right(offsets, found) - 1
            hits.append(position)
            found = find(canonical, offsets[position + 1])
        return hits

    def search_positions(self, canonical: str, lo: int, hi: int) -> List[int]:
        """Ascending window positions matching ``canonical``.

        The arena sweep unioned with the postings-confirmed set (an
        exact hashtag/token/stem hit is provably a folded-text match).
        Keywords folding to the empty canonical can never free-text
        match; only their hashtag/token-confirmed posts — the legacy
        hashtag-index union — survive.
        """
        confirmed = self.confirmed_positions(canonical, lo, hi)
        if not canonical:
            return sorted(confirmed)
        swept = self.arena_positions(canonical, lo, hi)
        if not confirmed or confirmed.issubset(swept):
            return swept
        return sorted(confirmed.union(swept))

    # -- aggregate slices ---------------------------------------------------

    def engagement_slice(self, lo: int, hi: int) -> Engagement:
        """Summed engagement of the [lo, hi) slice — pure array sums."""
        return Engagement(
            views=sum(self._views[lo:hi]),
            likes=sum(self._likes[lo:hi]),
            reposts=sum(self._reposts[lo:hi]),
            replies=sum(self._replies[lo:hi]),
        )

    def sentiment_column(self, analyzer) -> array:
        """The per-post sentiment column for one analyzer (memoized).

        Scores come from the interned analyses (one scoring per distinct
        text per analyzer fingerprint), so building the column is a
        gather, not an analysis pass.
        """
        fingerprint = analyzer.fingerprint
        column = self._sentiments.get(fingerprint)
        if column is None:
            interner = self._interner
            column = array(
                "d",
                (
                    analyzer.score_analysis(interner.analysis(text)).score
                    for text in self._texts
                ),
            )
            self._sentiments[fingerprint] = column
        return column

    def sentiment_slice(self, analyzer, lo: int, hi: int) -> float:
        """Summed sentiment of the [lo, hi) slice (ascending-position
        accumulation order, matching the per-post fold)."""
        return sum(self.sentiment_column(analyzer)[lo:hi], 0.0)

    # -- lazy materialization -----------------------------------------------

    def analysis_at(self, position: int) -> PostAnalysis:
        """The pooled analysis of the post at ``position``."""
        return self._interner.analysis(self._texts[position])

    def iter_texts(self) -> Iterable[str]:
        """The stored (pooled) post texts, in position order."""
        return iter(self._texts)

    def post(self, position: int) -> Post:
        """Materialize (and cache) the `Post` at one position."""
        cached = self._post_cache.get(position)
        if cached is None:
            cached = Post(
                post_id=self._post_ids[position],
                text=self._texts[position],
                author=self._authors[position],
                created_at=dt.date.fromordinal(self._dates[position]),
                region=self._region_vocab[self._region_codes[position]],
                engagement=Engagement(
                    views=self._views[position],
                    likes=self._likes[position],
                    reposts=self._reposts[position],
                    replies=self._replies[position],
                ),
            )
            self._post_cache[position] = cached
        return cached

    def posts_at(self, positions: Iterable[int]) -> List[Post]:
        """Materialize the posts at ``positions`` (order preserved)."""
        return [self.post(position) for position in positions]

    def all_posts(self) -> Tuple[Post, ...]:
        """Every post, materialized once and cached as a tuple."""
        if self._posts_tuple is None:
            self._posts_tuple = tuple(
                self.post(position) for position in range(len(self._dates))
            )
        return self._posts_tuple

    # -- growth -------------------------------------------------------------

    def extended_with(self, tail: "ColumnarCorpus") -> "ColumnarCorpus":
        """A new segment holding this one's posts plus ``tail``'s.

        Semantically identical to re-sorting the concatenated post lists
        and columnarizing from scratch.  When ``tail`` starts at or
        after this segment's last sort key — the streaming common case —
        every scalar column concatenates at C speed, the arena is one
        string join, and postings attach tail chunks by re-basing chunk
        headers.  Out-of-order tails fall back to a full gather rebuild.
        """
        if len(tail) == 0:
            return self
        if len(self) == 0:
            return tail
        if tail._interner is not self._interner:
            raise ValueError(
                "cannot extend across corpus lineages: segments must "
                "share one TextInterner"
            )
        last = (self._dates[-1], self._post_ids[-1])
        first = (tail._dates[0], tail._post_ids[0])
        if last <= first:
            return self._concatenated(tail)
        # Rare out-of-order arrival: gather-merge by rebuilding from the
        # materialized union (analyses are pooled, so no re-analysis).
        return ColumnarCorpus.from_posts(
            list(self.all_posts()) + list(tail.all_posts()),
            interner=self._interner,
        )

    def _concatenated(self, tail: "ColumnarCorpus") -> "ColumnarCorpus":
        count = len(self)
        shift = self._offsets[count]  # == len(arena) + 1
        offsets = array("Q", self._offsets)
        offsets.pop()
        offsets.extend(offset + shift for offset in tail._offsets)
        if tail._region_vocab == self._region_vocab:
            region_vocab = self._region_vocab
            region_codes = self._region_codes + tail._region_codes
        else:
            region_vocab = list(self._region_vocab)
            region_map = dict(self._region_map)
            remap: List[int] = []
            for region in tail._region_vocab:
                code = region_map.get(region)
                if code is None:
                    code = len(region_vocab)
                    region_map[region] = code
                    region_vocab.append(region)
                remap.append(code)
            region_codes = self._region_codes + array(
                "H", (remap[code] for code in tail._region_codes)
            )
        sentiments = {
            fingerprint: column + tail_column
            for fingerprint, column in self._sentiments.items()
            if (tail_column := tail._sentiments.get(fingerprint)) is not None
        }
        return ColumnarCorpus(
            interner=self._interner,
            dates=self._dates + tail._dates,
            post_ids=self._post_ids + tail._post_ids,
            texts=self._texts + tail._texts,
            authors=self._authors + tail._authors,
            region_codes=region_codes,
            region_vocab=region_vocab,
            views=self._views + tail._views,
            likes=self._likes + tail._likes,
            reposts=self._reposts + tail._reposts,
            replies=self._replies + tail._replies,
            arena=self._arena + ARENA_SEPARATOR + tail._arena,
            offsets=offsets,
            tag_postings=_concat_postings(
                self._tag_postings, tail._tag_postings, count
            ),
            token_postings=_concat_postings(
                self._token_postings, tail._token_postings, count
            ),
            stem_postings=_concat_postings(
                self._stem_postings, tail._stem_postings, count
            ),
            sentiments=sentiments,
        )

    # -- compact serialization ----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable columnar snapshot.

        Plain parallel columns — no per-post dicts, no pickled objects.
        The arena, postings and sentiment memos are *derived* state and
        are rebuilt on :meth:`from_state` (analysis is pure), which keeps
        checkpoints small and forward-compatible.
        """
        return {
            "post_ids": list(self._post_ids),
            "texts": list(self._texts),
            "authors": list(self._authors),
            "dates": list(self._dates),
            "region_vocab": list(self._region_vocab),
            "region_codes": list(self._region_codes),
            "views": list(self._views),
            "likes": list(self._likes),
            "reposts": list(self._reposts),
            "replies": list(self._replies),
        }

    @classmethod
    def from_state(
        cls,
        state: Mapping[str, object],
        *,
        interner: Optional[TextInterner] = None,
    ) -> "ColumnarCorpus":
        """Rebuild a segment from a :meth:`state_dict` snapshot."""
        return cls.from_posts(columns_to_posts(state), interner=interner)


def _posting_append(arrays: Dict[str, array], term: str, position: int) -> None:
    positions = arrays.get(term)
    if positions is None:
        arrays[term] = array("I", (position,))
    else:
        positions.append(position)


def posts_to_columns(posts: Sequence[Post]) -> Dict[str, object]:
    """Plain columnar dict of a post sequence, order preserved.

    The serialization helper behind tail-segment and columnar-corpus
    checkpoints: parallel lists, dates as ordinals, regions coded
    against a vocabulary.
    """
    region_vocab: List[str] = []
    region_map: Dict[str, int] = {}
    region_codes: List[int] = []
    for post in posts:
        code = region_map.get(post.region)
        if code is None:
            code = len(region_vocab)
            region_map[post.region] = code
            region_vocab.append(post.region)
        region_codes.append(code)
    return {
        "post_ids": [post.post_id for post in posts],
        "texts": [post.text for post in posts],
        "authors": [post.author for post in posts],
        "dates": [post.created_at.toordinal() for post in posts],
        "region_vocab": region_vocab,
        "region_codes": region_codes,
        "views": [post.engagement.views for post in posts],
        "likes": [post.engagement.likes for post in posts],
        "reposts": [post.engagement.reposts for post in posts],
        "replies": [post.engagement.replies for post in posts],
    }


def columns_to_posts(state: Mapping[str, object]) -> List[Post]:
    """Materialize the posts of a :func:`posts_to_columns` snapshot."""
    vocab: List[str] = list(state["region_vocab"])  # type: ignore[arg-type]
    return [
        Post(
            post_id=post_id,
            text=text,
            author=author,
            created_at=dt.date.fromordinal(int(ordinal)),
            region=vocab[int(code)],
            engagement=Engagement(
                views=int(views),
                likes=int(likes),
                reposts=int(reposts),
                replies=int(replies),
            ),
        )
        for post_id, text, author, ordinal, code, views, likes, reposts, replies in zip(
            state["post_ids"],  # type: ignore[arg-type]
            state["texts"],  # type: ignore[arg-type]
            state["authors"],  # type: ignore[arg-type]
            state["dates"],  # type: ignore[arg-type]
            state["region_codes"],  # type: ignore[arg-type]
            state["views"],  # type: ignore[arg-type]
            state["likes"],  # type: ignore[arg-type]
            state["reposts"],  # type: ignore[arg-type]
            state["replies"],  # type: ignore[arg-type]
        )
    ]
