"""Social-media substrate: the Twitter-API substitution layer.

Provides the post/engagement data model, a corpus with PSP's query
surface, the abstract platform client with an in-memory implementation,
a deterministic synthetic corpus generator, the scenario-calibrated
corpora used by the paper's experiments, and the declarative scenario
registry (:mod:`repro.social.registry`) the CLI and the replay harness
draw their workloads from.
"""

from repro.social.api import (
    BatchQuery,
    BatchResult,
    InMemoryClient,
    SearchQuery,
    SocialMediaClient,
    search_texts,
)
from repro.social.multiplatform import (
    MultiPlatformClient,
    PlatformSource,
    branded_post,
)
from repro.social.corpus import Corpus
from repro.social.registry import (
    OutageWindow,
    PlatformProfile,
    PoisoningBurst,
    ScenarioRegistry,
    ScenarioSpec,
    default_registry,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.social.columnar import ColumnarCorpus, TextInterner
from repro.social.index import CorpusIndex
from repro.social.post import Engagement, Post
from repro.social.resilience import (
    BestEffortClient,
    FlakyClient,
    RetryingClient,
    TransientPlatformError,
)
from repro.social.scenarios import (
    KEYWORD_OWNER_APPROVED,
    KEYWORD_VECTORS,
    ecm_reprogramming_corpus,
    ecm_reprogramming_specs,
    excavator_corpus,
    excavator_specs,
    light_truck_corpus,
    light_truck_specs,
)
from repro.social.synthetic import (
    AttackTopicSpec,
    CorpusGenerator,
    generate_corpus,
    volume_by_keyword,
)

__all__ = [
    "AttackTopicSpec",
    "BatchQuery",
    "BatchResult",
    "BestEffortClient",
    "ColumnarCorpus",
    "Corpus",
    "CorpusGenerator",
    "CorpusIndex",
    "Engagement",
    "FlakyClient",
    "InMemoryClient",
    "KEYWORD_OWNER_APPROVED",
    "KEYWORD_VECTORS",
    "MultiPlatformClient",
    "OutageWindow",
    "PlatformProfile",
    "PlatformSource",
    "PoisoningBurst",
    "Post",
    "RetryingClient",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SearchQuery",
    "SocialMediaClient",
    "TextInterner",
    "TransientPlatformError",
    "branded_post",
    "default_registry",
    "ecm_reprogramming_corpus",
    "ecm_reprogramming_specs",
    "excavator_corpus",
    "excavator_specs",
    "light_truck_corpus",
    "light_truck_specs",
    "generate_corpus",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "search_texts",
    "volume_by_keyword",
]
