"""Multi-platform aggregation (paper §IV future work).

The paper's roadmap: "we plan to expand the support of our framework to
other social media platforms like Instagram", and "a feature allowing us
to access the deep web level to improve outsider attack analysis".

:class:`MultiPlatformClient` aggregates any number of named
:class:`~repro.social.api.SocialMediaClient` instances behind the single
client interface the PSP pipeline consumes, so adding a platform is one
constructor argument, not a pipeline change.  Per-platform *trust
weights* scale the engagement signals (a deep-web forum hit counts
differently than a mainstream post) without touching post volume — a
post is a post, but bought-reach platforms should not dominate the view
signal.

Post ids are namespaced with the platform name so ids never collide
across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.social.api import BatchQuery, BatchResult, SearchQuery, SocialMediaClient
from repro.social.post import Engagement, Post


@dataclass(frozen=True)
class PlatformSource:
    """One platform feeding the aggregator.

    Attributes:
        name: platform label, e.g. ``"twitter"``, ``"instagram"``,
            ``"deepweb"``; used to namespace post ids.
        client: the platform's client.
        trust: engagement scale factor in (0, 1]; 1.0 = full trust.
    """

    name: str
    client: SocialMediaClient
    trust: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("platform name must be non-empty")
        if not 0.0 < self.trust <= 1.0:
            raise ValueError(f"trust must be in (0, 1], got {self.trust}")


def _scaled(engagement: Engagement, trust: float) -> Engagement:
    """Scale engagement counters by the platform trust weight."""
    if trust == 1.0:
        return engagement
    return Engagement(
        views=int(engagement.views * trust),
        likes=int(engagement.likes * trust),
        reposts=int(engagement.reposts * trust),
        replies=int(engagement.replies * trust),
    )


def branded_post(source: PlatformSource, post: Post) -> Post:
    """One platform's post as the aggregator surfaces it.

    The post id is namespaced ``<platform>:<original id>`` and the
    engagement is scaled by the platform trust weight.  This is the
    single branding rule shared by :class:`MultiPlatformClient` searches
    and by offline corpus materialisation (the scenario registry builds
    merged corpora with exactly the posts a live aggregator would
    return).
    """
    return Post(
        post_id=f"{source.name}:{post.post_id}",
        text=post.text,
        author=post.author,
        created_at=post.created_at,
        region=post.region,
        engagement=_scaled(post.engagement, source.trust),
    )


class MultiPlatformClient(SocialMediaClient):
    """Aggregates several platform clients behind one search surface."""

    def __init__(self, sources: List[PlatformSource]) -> None:
        if not sources:
            raise ValueError("need at least one platform source")
        names = [s.name for s in sources]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate platform names: {names}")
        self._sources = list(sources)

    @property
    def platforms(self) -> Tuple[str, ...]:
        """Names of the aggregated platforms."""
        return tuple(s.name for s in self._sources)

    @staticmethod
    def _branded(source: PlatformSource, post: Post) -> Post:
        """Namespace the post id with the platform and trust-scale engagement."""
        return Post(
            post_id=f"{source.name}:{post.post_id}",
            text=post.text,
            author=post.author,
            created_at=post.created_at,
            region=post.region,
            engagement=_scaled(post.engagement, source.trust),
        )

    def search(self, query: SearchQuery) -> List[Post]:
        """Search every platform and merge, oldest first.

        Post ids are rewritten to ``<platform>:<original id>`` and the
        engagement is trust-scaled; everything else passes through.
        """
        merged: List[Post] = []
        for source in self._sources:
            for post in source.client.search(query):
                merged.append(self._branded(source, post))
        merged.sort(key=lambda p: (p.created_at, p.post_id))
        return merged

    def search_many(self, batch: BatchQuery) -> BatchResult:
        """Fan one batch out per platform and merge per keyword.

        Each platform client receives a single :meth:`search_many` call
        (so platform-side batching — shared corpus scopes, bulk
        endpoints, caches — is preserved across the fan-out), and the
        per-keyword merge applies the same id-namespacing and
        trust-scaling as :meth:`search`.  Because post ids are
        platform-namespaced, :meth:`~repro.social.api.BatchResult.unique_posts`
        deduplication works across the whole fleet of platforms.
        """
        per_platform = [
            (source, source.client.search_many(batch)) for source in self._sources
        ]
        merged: Dict[str, List[Post]] = {}
        for keyword in batch.keywords:
            posts: List[Post] = []
            for source, result in per_platform:
                posts.extend(self._branded(source, p) for p in result.posts(keyword))
            posts.sort(key=lambda p: (p.created_at, p.post_id))
            merged[keyword] = posts
        return BatchResult(
            posts_by_keyword={k: tuple(v) for k, v in merged.items()}
        )

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Summed per-year counts across all platforms."""
        totals: Dict[int, int] = {}
        for source in self._sources:
            for year, count in source.client.count_by_year(query).items():
                totals[year] = totals.get(year, 0) + count
        return totals

    def count_by_platform(self, query: SearchQuery) -> Dict[str, int]:
        """Matching-post counts broken down by platform."""
        return {
            source.name: source.client.count(query) for source in self._sources
        }

    def source(self, name: str) -> PlatformSource:
        """Look up one platform source by name."""
        for candidate in self._sources:
            if candidate.name == name:
                return candidate
        raise KeyError(f"unknown platform {name!r}")
