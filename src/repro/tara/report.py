"""Textual TARA and PSP report rendering.

Produces the tabular artefacts the paper prints: G.9-style weight tables
(Figs. 5, 8, 9), SAI rankings (Fig. 12) and full TARA summaries.  Output
is plain fixed-width text, suitable for terminals and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.financial import FinancialAssessment
from repro.core.sai import SAIList
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.tara.engine import TaraRecord, TaraReportData


def _render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Fixed-width table renderer."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [
        [h] for h in headers
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    divider = "-+-".join("-" * w for w in widths)

    def render_row(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(row, widths))

    lines = [render_row(headers), divider]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def render_weight_table(table: WeightTable, title: str = "") -> str:
    """Render a G.9-style attack-vector weight table (paper Figs. 5/8/9)."""
    heading = title or f"Attack vector-based approach ({table.source})"
    body = _render_table(
        ("Attack vector", "Attack feasibility rating"),
        table.as_rows(),
    )
    note = f"\nNote: {table.note}" if table.note else ""
    return f"{heading}\n{body}{note}"


def render_sai(sai: SAIList, title: str = "SAI ranking", top: int = 0) -> str:
    """Render a SAI ranking table (paper Fig. 12)."""
    entries = sai.entries[:top] if top else sai.entries
    rows = [
        (
            str(rank + 1),
            e.keyword,
            f"{e.score:.2f}",
            f"{e.probability:.3f}",
            str(e.post_count),
            f"{e.mean_sentiment:+.2f}",
        )
        for rank, e in enumerate(entries)
    ]
    body = _render_table(
        ("#", "Attack keyword", "SAI score", "Probability", "Posts", "Sentiment"),
        rows,
    )
    return f"{title}\n{body}"


def render_financial(assessment: FinancialAssessment) -> str:
    """Render a financial assessment (paper Eqs. 6-7 narrative)."""
    rows = [
        ("Potential attackers (PAE)", f"{assessment.pae:,}"),
        ("Purchase price (PPIA)", f"{assessment.ppia:,.0f} EUR"),
        ("Variable cost (VCU)", f"{assessment.vcu:,.0f} EUR"),
        ("Competitors (n)", str(assessment.competitors)),
        ("Market value (MV)", f"{assessment.mv:,.0f} EUR/yr"),
        ("Required investment (FC)", f"{assessment.fc_required:,.0f} EUR"),
        ("Financial feasibility", assessment.feasibility.label()),
    ]
    body = _render_table(("Quantity", "Value"), rows)
    return f"Financial assessment: {assessment.keyword}\n{body}"


def render_tara(
    data: TaraReportData,
    *,
    min_risk: int = 1,
    limit: Optional[int] = None,
) -> str:
    """Render a TARA summary sorted by descending risk value."""
    records: List[TaraRecord] = [
        r for r in data.records if r.risk_value >= min_risk
    ]
    records.sort(key=lambda r: (-r.risk_value, r.threat.threat_id))
    if limit is not None:
        records = records[:limit]
    rows: List[Tuple[str, ...]] = [
        (
            r.threat.threat_id,
            r.impact.overall.label(),
            r.feasibility.label(),
            str(r.risk_value),
            r.cal.label(),
            r.treatment.value,
        )
        for r in records
    ]
    body = _render_table(
        ("Threat scenario", "Impact", "Feasibility", "Risk", "CAL", "Treatment"),
        rows,
    )
    return f"TARA ({data.table_source}): {len(records)} threat scenarios\n{body}"
