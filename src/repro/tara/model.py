"""Compiled threat models: the table-independent half of a TARA.

A full Clause-15 TARA factors cleanly into two phases with very different
costs and change rates:

1. **Compile** — asset identification, STRIDE threat enumeration,
   impact rating and attack-path *structure* (which node sequences lead
   from which entry points to which ECUs, and how many feasibility
   step-downs each sequence accumulates crossing filtered gateways and
   pivot ECUs).  All of this depends only on the
   :class:`~repro.vehicle.network.VehicleNetwork` (plus optional impact
   overrides and extra threats) — **not** on the attack-vector weight
   table.
2. **Score** — feasibility, risk value, CAL and treatment, which are
   pure functions of the compiled structure and one
   :class:`~repro.iso21434.feasibility.attack_vector.WeightTable`.

The paper's headline experiment (E10) and every fleet/lifecycle/monitor
workload re-score the *same* architecture under many tables, so phase 1
is compiled **once** per network — fingerprinted and cached exactly like
:class:`repro.social.index.CorpusIndex` caches the corpus side — and
phase 2 (:mod:`repro.tara.scoring`) sweeps whole batches of tables over
it.

The compiled step "skeletons" reproduce
:class:`~repro.vehicle.attack_surface.AttackSurfaceAnalyzer` output
exactly: a step rated by the analyzer as ``step_down^k(entry_rating)``
is stored as penalty ``k``, and saturating repeated decrements equal a
single clamped subtraction, so materialising a skeleton under any table
yields step-for-step identical :class:`~repro.iso21434.attack_path.AttackPath`
objects (property-tested in
``tests/properties/test_tara_batch_equivalence.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.iso21434.assets import AssetRegistry, standard_ecu_assets
from repro.iso21434.attack_path import AttackPath, AttackStep
from repro.iso21434.enums import (
    AttackerProfile,
    AttackVector,
    FeasibilityRating,
    ImpactCategory,
    ImpactRating,
)
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.threats import ThreatScenario, enumerate_stride_threats
from repro.vehicle.attack_surface import DEFAULT_CUTOFF
from repro.vehicle.domains import VehicleDomain
from repro.vehicle.ecu import Ecu
from repro.vehicle.network import NodeKind, VehicleNetwork

#: Default impact profile per domain: powertrain/chassis threats carry
#: safety impact; communication carries operational+privacy; body is
#: operational; infotainment privacy+financial.
DOMAIN_IMPACT: Mapping[VehicleDomain, ImpactProfile] = {
    VehicleDomain.POWERTRAIN: ImpactProfile(
        {
            ImpactCategory.SAFETY: ImpactRating.SEVERE,
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
            ImpactCategory.FINANCIAL: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.CHASSIS: ImpactProfile(
        {
            ImpactCategory.SAFETY: ImpactRating.SEVERE,
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.BODY: ImpactProfile(
        {
            ImpactCategory.OPERATIONAL: ImpactRating.MODERATE,
            ImpactCategory.FINANCIAL: ImpactRating.MODERATE,
        }
    ),
    VehicleDomain.INFOTAINMENT: ImpactProfile(
        {
            ImpactCategory.PRIVACY: ImpactRating.MAJOR,
            ImpactCategory.FINANCIAL: ImpactRating.MODERATE,
        }
    ),
    VehicleDomain.COMMUNICATION: ImpactProfile(
        {
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
            ImpactCategory.PRIVACY: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.GATEWAY: ImpactProfile(
        {
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
            ImpactCategory.SAFETY: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.DIAGNOSTIC: ImpactProfile(
        {ImpactCategory.OPERATIONAL: ImpactRating.MODERATE}
    ),
}


# -- TARA activities 1-3 (table-independent) ---------------------------------


def identify_assets(network: VehicleNetwork) -> AssetRegistry:
    """Activity 1: enumerate the canonical assets of every ECU."""
    registry = AssetRegistry()
    for ecu in network.ecus:
        registry.register_all(standard_ecu_assets(ecu.ecu_id, ecu.name))
    return registry


def default_attacker_profiles(ecu: Optional[Ecu]) -> frozenset:
    """Default attacker profiles for an asset hosted on ``ecu``.

    Powertrain/chassis assets default to the insider set (the paper's
    Insider / Rational-Local owners); everything else to outsiders.
    """
    if ecu is not None and ecu.domain in (
        VehicleDomain.POWERTRAIN,
        VehicleDomain.CHASSIS,
    ):
        return frozenset(
            {
                AttackerProfile.INSIDER,
                AttackerProfile.RATIONAL,
                AttackerProfile.LOCAL,
            }
        )
    return frozenset({AttackerProfile.OUTSIDER, AttackerProfile.MALICIOUS})


def enumerate_threats(
    network: VehicleNetwork, assets: AssetRegistry
) -> List[ThreatScenario]:
    """Activity 2: STRIDE threat enumeration per asset.

    Attack vectors are the hosting ECU's plausible vectors; attacker
    profiles default per :func:`default_attacker_profiles`.
    """
    threats: List[ThreatScenario] = []
    for asset in assets:
        ecu = network.ecu(asset.ecu_id) if asset.ecu_id else None
        vectors = ecu.plausible_vectors if ecu else frozenset(AttackVector)
        profiles = default_attacker_profiles(ecu)
        threats.extend(
            enumerate_stride_threats(
                asset, attack_vectors=vectors, attacker_profiles=profiles
            )
        )
    return threats


def rate_impact(
    network: VehicleNetwork,
    threat: ThreatScenario,
    overrides: Optional[Mapping[str, ImpactProfile]] = None,
) -> ImpactProfile:
    """Activity 3: impact rating (per-ECU override, else domain default)."""
    ecu_id = threat.asset_id.split(".")[0]
    if overrides and ecu_id in overrides:
        return overrides[ecu_id]
    ecu = network.ecu(ecu_id)
    return DOMAIN_IMPACT[ecu.domain]


# -- attack-path skeletons ---------------------------------------------------


@dataclass(frozen=True)
class StepSkeleton:
    """One attack step with its rating deferred.

    ``penalty`` is the cumulative number of feasibility step-downs in
    force at this step (gateway crossings and pivot ECUs before or at
    it); the materialised rating is ``clamp(entry_level - penalty)``.
    """

    description: str
    penalty: int
    vector: Optional[AttackVector] = None
    location: Optional[str] = None


@dataclass(frozen=True)
class PathSkeleton:
    """The table-independent structure of one attack path."""

    path_id: str
    entry_vector: AttackVector
    steps: Tuple[StepSkeleton, ...]

    @property
    def total_penalty(self) -> int:
        """Step-downs accumulated over the whole path (max per-step)."""
        return self.steps[-1].penalty

    @property
    def length(self) -> int:
        """Number of steps."""
        return len(self.steps)

    def feasibility_under(self, entry_rating: FeasibilityRating) -> int:
        """The path's feasibility *level* given the entry-vector rating."""
        return max(0, entry_rating.level - self.total_penalty)


def _compile_steps(
    network: VehicleNetwork,
    entry_vector: AttackVector,
    node_path: List[str],
) -> Tuple[StepSkeleton, ...]:
    """The skeleton of ``AttackSurfaceAnalyzer._rate_steps`` for one path."""
    entry_name = network.entry_point(node_path[0]).name
    steps = [
        StepSkeleton(
            description=f"Gain access via {entry_name}",
            penalty=0,
            vector=entry_vector,
            location=node_path[0],
        )
    ]
    penalty = 0
    for position, node in enumerate(node_path[1:], start=1):
        kind = network.node_kind(node)
        if kind is NodeKind.BUS:
            bus = network.bus(node)
            previous_kind = network.node_kind(node_path[position - 1])
            if bus.segmented and previous_kind is NodeKind.ECU:
                penalty += 1
                description = f"Cross filtering gateway onto {bus.name}"
            else:
                description = f"Inject traffic on {bus.name}"
            steps.append(
                StepSkeleton(description=description, penalty=penalty, location=node)
            )
        elif kind is NodeKind.ECU and node == node_path[-1]:
            ecu = network.ecu(node)
            steps.append(
                StepSkeleton(
                    description=f"Compromise {ecu.name}",
                    penalty=penalty,
                    location=node,
                )
            )
        elif kind is NodeKind.ECU:
            ecu = network.ecu(node)
            penalty += 1
            steps.append(
                StepSkeleton(
                    description=f"Pivot through {ecu.name}",
                    penalty=penalty,
                    location=node,
                )
            )
    return tuple(steps)


def _compile_skeletons(
    network: VehicleNetwork, ecu_id: str, cutoff: int
) -> Tuple[PathSkeleton, ...]:
    """Enumerate path skeletons to one ECU, in analyzer order."""
    skeletons: List[PathSkeleton] = []
    for entry in network.entry_points:
        for index, node_path in enumerate(
            network.simple_paths(entry.entry_id, ecu_id, cutoff=cutoff)
        ):
            skeletons.append(
                PathSkeleton(
                    path_id=f"ap.{ecu_id}.{entry.entry_id}.{index}",
                    entry_vector=entry.vector,
                    steps=_compile_steps(network, entry.vector, node_path),
                )
            )
    return tuple(skeletons)


# -- the compiled model ------------------------------------------------------


class CompiledThreatModel:
    """Everything about a TARA that does not depend on the weight table.

    Built by :func:`compile_threat_model`; shared (via the compile
    cache) by the baseline run, every fleet member, the lifecycle
    reprocessor, the runtime monitor and the baseline triangulation.
    Materialised steps are memoised per ``(path, entry-rating)`` so even
    the residual per-table work is shared across every scorer holding
    the model.
    """

    def __init__(
        self,
        network: VehicleNetwork,
        *,
        fingerprint: str,
        assets: AssetRegistry,
        threats: Tuple[ThreatScenario, ...],
        impacts: Tuple[ImpactProfile, ...],
        skeletons: Mapping[str, Tuple[PathSkeleton, ...]],
        impact_overrides: Mapping[str, ImpactProfile],
        cutoff: int,
    ) -> None:
        if len(threats) != len(impacts):
            raise ValueError("threats and impacts must align")
        self._network = network
        self._fingerprint = fingerprint
        self._assets = assets
        self._threats = threats
        self._impacts = impacts
        self._skeletons = dict(skeletons)
        self._impact_overrides = dict(impact_overrides)
        self._cutoff = cutoff
        #: (path_id, entry-rating level) -> materialised AttackStep tuple.
        self._steps_memo: Dict[Tuple[str, int], Tuple[AttackStep, ...]] = {}

    @property
    def network(self) -> VehicleNetwork:
        """The compiled architecture."""
        return self._network

    @property
    def fingerprint(self) -> str:
        """Structural digest of the network this model was compiled from."""
        return self._fingerprint

    @property
    def assets(self) -> AssetRegistry:
        """Activity-1 output: the asset registry."""
        return self._assets

    @property
    def threats(self) -> Tuple[ThreatScenario, ...]:
        """Activity-2 output plus extra threats, in assessment order."""
        return self._threats

    @property
    def path_count(self) -> int:
        """Total number of compiled path skeletons."""
        return sum(len(s) for s in self._skeletons.values())

    def __len__(self) -> int:
        return len(self._threats)

    def items(self) -> Iterator[Tuple[ThreatScenario, ImpactProfile]]:
        """Iterate ``(threat, impact)`` pairs in assessment order."""
        return zip(self._threats, self._impacts)

    def impact_for(self, threat: ThreatScenario) -> ImpactProfile:
        """Impact profile for any threat over this architecture.

        :func:`rate_impact` is pure, so this returns exactly the
        compiled profile for compiled threats and rates ad-hoc threats
        (e.g. one passed straight to ``TaraEngine.assess_threat``) on
        demand.
        """
        return rate_impact(self._network, threat, self._impact_overrides)

    def skeletons_for(self, ecu_id: str) -> Tuple[PathSkeleton, ...]:
        """Path skeletons reaching one ECU (validates the ECU exists)."""
        self._network.ecu(ecu_id)
        return self._skeletons.get(ecu_id, ())

    def ecu_domain(self, ecu_id: str) -> Optional[VehicleDomain]:
        """The hosting ECU's domain, or None for non-ECU asset ids."""
        try:
            return self._network.ecu(ecu_id).domain
        except KeyError:
            return None

    def materialize_steps(
        self, skeleton: PathSkeleton, entry_rating: FeasibilityRating
    ) -> Tuple[AttackStep, ...]:
        """Rated attack steps for a skeleton under one entry rating.

        Memoised per ``(path, entry-rating)``: a 4-vector table can only
        produce 4 distinct entry ratings, so a whole fleet of tables
        shares at most ``4 x paths`` materialisations.
        """
        key = (skeleton.path_id, entry_rating.level)
        steps = self._steps_memo.get(key)
        if steps is None:
            base = entry_rating.level
            steps = tuple(
                AttackStep(
                    description=s.description,
                    feasibility=FeasibilityRating.clamp(base - s.penalty),
                    vector=s.vector,
                    location=s.location,
                )
                for s in skeleton.steps
            )
            self._steps_memo[key] = steps
        return steps

    def paths_for(self, threat: ThreatScenario, table) -> List[AttackPath]:
        """Activity-4 output for one threat under one weight table.

        Identical to the legacy
        ``AttackSurfaceAnalyzer.paths_to(...)`` filtered to the threat's
        usable entry vectors.
        """
        ecu_id = threat.asset_id.split(".")[0]
        paths: List[AttackPath] = []
        for skeleton in self.skeletons_for(ecu_id):
            if skeleton.entry_vector not in threat.attack_vectors:
                continue
            steps = self.materialize_steps(
                skeleton, table.rating(skeleton.entry_vector)
            )
            paths.append(
                AttackPath(
                    path_id=skeleton.path_id,
                    threat_id=threat.threat_id,
                    steps=steps,
                )
            )
        return paths


# -- fingerprinting and the compile cache ------------------------------------


def network_fingerprint(network: VehicleNetwork) -> str:
    """Structural digest of a network, stable across processes.

    Node *insertion order* is part of the digest because attack-path
    enumeration order (and therefore path ids) depends on it.
    """
    hasher = hashlib.sha256()

    def feed(*parts) -> None:
        for part in parts:
            hasher.update(str(part).encode("utf-8"))
            hasher.update(b"\x1f")
        hasher.update(b"\x1e")

    feed("name", network.name)
    for ecu in network.ecus:
        feed(
            "ecu",
            ecu.ecu_id,
            ecu.name,
            ecu.domain.value,
            ecu.safety_critical,
            ecu.fota_capable,
            sorted(v.value for v in ecu.external_interfaces),
        )
    for bus in network.buses:
        feed("bus", bus.bus_id, bus.name, bus.kind.value, bus.domain.value,
             bus.segmented)
    for entry in network.entry_points:
        feed("entry", entry.entry_id, entry.name, entry.vector.value)
    for node_a, node_b in network.graph.edges:
        feed("edge", node_a, node_b)
    return hasher.hexdigest()


def _overrides_key(
    overrides: Optional[Mapping[str, ImpactProfile]]
) -> Tuple:
    if not overrides:
        return ()
    return tuple(
        sorted(
            (
                ecu_id,
                tuple(
                    sorted(
                        (category.value, rating.level)
                        for category, rating in profile.ratings.items()
                    )
                ),
            )
            for ecu_id, profile in overrides.items()
        )
    )


#: Bounded FIFO-ish compile cache (LRU via move-to-end on hit).
_COMPILE_CACHE: "OrderedDict[Tuple, CompiledThreatModel]" = OrderedDict()
_COMPILE_CACHE_MAX = 16
_cache_hits = 0
_cache_misses = 0


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss counters and current size of the compile cache."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": len(_COMPILE_CACHE),
    }


def clear_compile_cache() -> None:
    """Drop every cached compiled model and reset the counters."""
    global _cache_hits, _cache_misses
    _COMPILE_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


def compile_threat_model(
    network: VehicleNetwork,
    *,
    impact_overrides: Optional[Mapping[str, ImpactProfile]] = None,
    extra_threats: Tuple[ThreatScenario, ...] = (),
    cutoff: int = DEFAULT_CUTOFF,
) -> CompiledThreatModel:
    """Compile (or fetch from cache) the threat model of one network.

    The cache key is the network's structural fingerprint plus the
    override/extra-threat/cutoff inputs, so mutating a network (or
    passing different extras) transparently recompiles while repeated
    runs over an unchanged architecture — the fleet, monitor, lifecycle
    and timeline workloads — share one compiled model *and* its
    materialisation memo.

    Args:
        network: the architecture to compile.
        impact_overrides: per-ECU impact profiles replacing the domain
            defaults.
        extra_threats: additional threat scenarios appended after the
            auto-enumerated ones (``<ecu_id>.<rest>`` asset-id
            convention; unknown ECUs raise ``KeyError`` at compile time,
            where the legacy engine raised at assessment time).
        cutoff: maximum attack-path length in nodes.
    """
    global _cache_hits, _cache_misses
    extras = tuple(extra_threats)
    key = (
        network_fingerprint(network),
        _overrides_key(impact_overrides),
        extras,
        cutoff,
    )
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _cache_hits += 1
        _COMPILE_CACHE.move_to_end(key)
        return cached
    _cache_misses += 1

    assets = identify_assets(network)
    threats = tuple(enumerate_threats(network, assets)) + extras
    overrides = dict(impact_overrides or {})
    impacts = tuple(rate_impact(network, t, overrides) for t in threats)
    skeletons = {
        ecu.ecu_id: _compile_skeletons(network, ecu.ecu_id, cutoff)
        for ecu in network.ecus
    }
    model = CompiledThreatModel(
        network,
        fingerprint=key[0],
        assets=assets,
        threats=threats,
        impacts=impacts,
        skeletons=skeletons,
        impact_overrides=overrides,
        cutoff=cutoff,
    )
    _COMPILE_CACHE[key] = model
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.popitem(last=False)
    return model
