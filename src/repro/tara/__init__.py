"""TARA layer: compile-once model, batch scoring, lifecycle, reporting.

The runtime is split in two (PR 3): :mod:`repro.tara.model` compiles the
table-independent threat model of an architecture once (cached by
structural fingerprint), and :mod:`repro.tara.scoring` batch-scores any
number of attack-vector weight tables over it.  :class:`TaraEngine`
remains the back-compat facade; :func:`fleet_taras`,
:class:`LifecycleTaraRunner` and :func:`run_timeline` are the fleet,
lifecycle and continuous-monitoring entry points built on the split.
"""

from repro.tara.engine import (
    FleetTaraReport,
    RatingDisagreement,
    TaraEngine,
    TaraRecord,
    TaraReportData,
    compare_runs,
    fleet_taras,
)
from repro.tara.lifecycle import (
    REPROCESSING_PHASES,
    LifecycleTaraRunner,
    LifecycleTracker,
    Phase,
    ReprocessedTara,
    ReprocessingEvent,
    ReprocessingTrigger,
)
from repro.tara.model import (
    CompiledThreatModel,
    compile_cache_stats,
    compile_threat_model,
    network_fingerprint,
)
from repro.tara.report import (
    render_financial,
    render_sai,
    render_tara,
    render_weight_table,
)
from repro.tara.scoring import BatchTaraScorer, TableSpec, table_fingerprint
from repro.tara.timeline import (
    TaraTimeline,
    TimelineEntry,
    run_timeline,
    year_windows,
)

__all__ = [
    "BatchTaraScorer",
    "CompiledThreatModel",
    "FleetTaraReport",
    "LifecycleTaraRunner",
    "LifecycleTracker",
    "Phase",
    "REPROCESSING_PHASES",
    "RatingDisagreement",
    "ReprocessedTara",
    "ReprocessingEvent",
    "ReprocessingTrigger",
    "TableSpec",
    "TaraEngine",
    "TaraRecord",
    "TaraReportData",
    "TaraTimeline",
    "TimelineEntry",
    "compare_runs",
    "compile_cache_stats",
    "compile_threat_model",
    "fleet_taras",
    "network_fingerprint",
    "render_financial",
    "render_sai",
    "render_tara",
    "render_weight_table",
    "run_timeline",
    "table_fingerprint",
    "year_windows",
]
