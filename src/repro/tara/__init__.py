"""TARA engine layer: lifecycle, full-architecture runs and reporting."""

from repro.tara.engine import (
    FleetTaraReport,
    RatingDisagreement,
    TaraEngine,
    TaraRecord,
    TaraReportData,
    compare_runs,
    fleet_taras,
)
from repro.tara.lifecycle import (
    REPROCESSING_PHASES,
    LifecycleTracker,
    Phase,
    ReprocessingEvent,
    ReprocessingTrigger,
)
from repro.tara.report import (
    render_financial,
    render_sai,
    render_tara,
    render_weight_table,
)

__all__ = [
    "FleetTaraReport",
    "LifecycleTracker",
    "Phase",
    "REPROCESSING_PHASES",
    "RatingDisagreement",
    "ReprocessingEvent",
    "ReprocessingTrigger",
    "TaraEngine",
    "TaraRecord",
    "TaraReportData",
    "compare_runs",
    "fleet_taras",
    "render_financial",
    "render_sai",
    "render_tara",
    "render_weight_table",
]
