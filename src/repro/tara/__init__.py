"""TARA engine layer: lifecycle, full-architecture runs and reporting."""

from repro.tara.engine import (
    RatingDisagreement,
    TaraEngine,
    TaraRecord,
    TaraReportData,
    compare_runs,
)
from repro.tara.lifecycle import (
    REPROCESSING_PHASES,
    LifecycleTracker,
    Phase,
    ReprocessingEvent,
    ReprocessingTrigger,
)
from repro.tara.report import (
    render_financial,
    render_sai,
    render_tara,
    render_weight_table,
)

__all__ = [
    "LifecycleTracker",
    "Phase",
    "REPROCESSING_PHASES",
    "RatingDisagreement",
    "ReprocessingEvent",
    "ReprocessingTrigger",
    "TaraEngine",
    "TaraRecord",
    "TaraReportData",
    "compare_runs",
    "render_financial",
    "render_sai",
    "render_tara",
    "render_weight_table",
]
