"""Development-lifecycle phases and TARA reprocessing (paper Fig. 2).

ISO/SAE-21434 follows the V-model: item definition, TARA, goals and
concepts, design, implementation, integration and verification, testing
phases, and production readiness.  The TARA is *recursive*: it is
reprocessed at defined points of the cycle and whenever a vulnerability
is detected in the field.  :class:`LifecycleTracker` records phase
transitions and reprocessing triggers so a TARA run can be tied to the
phase that demanded it — the hook through which PSP's runtime model
("monitoring internal risks" — paper §IV) enters the process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Phase(enum.Enum):
    """V-model phases of Fig. 2, in order."""

    ITEM_DEFINITION = 0
    TARA = 1
    GOALS_AND_CONCEPTS = 2
    DESIGN = 3
    IMPLEMENTATION = 4
    INTEGRATION_VERIFICATION = 5
    FUNCTIONAL_TESTING = 6
    FUZZ_TESTING = 7
    PEN_TESTING = 8
    PRODUCTION_READINESS = 9

    @property
    def order(self) -> int:
        """Position in the lifecycle."""
        return int(self.value)


#: Phases after which Fig. 2 shows a "TARA REPROCESSING" arrow.
REPROCESSING_PHASES: Tuple[Phase, ...] = (
    Phase.DESIGN,
    Phase.IMPLEMENTATION,
    Phase.INTEGRATION_VERIFICATION,
    Phase.FUNCTIONAL_TESTING,
    Phase.FUZZ_TESTING,
    Phase.PEN_TESTING,
)


class ReprocessingTrigger(enum.Enum):
    """Why a TARA reprocessing was requested."""

    PHASE_GATE = "phase_gate"
    FIELD_VULNERABILITY = "field_vulnerability"
    PSP_TREND_SHIFT = "psp_trend_shift"


@dataclass(frozen=True)
class ReprocessingEvent:
    """One recorded TARA reprocessing."""

    phase: Phase
    trigger: ReprocessingTrigger
    note: str = ""


@dataclass
class LifecycleTracker:
    """Tracks phase progression and TARA reprocessing events."""

    phase: Phase = Phase.ITEM_DEFINITION
    _events: List[ReprocessingEvent] = field(default_factory=list)

    def advance(self) -> Phase:
        """Move to the next phase; records a reprocessing at gate phases.

        Raises:
            ValueError: when already at production readiness.
        """
        if self.phase is Phase.PRODUCTION_READINESS:
            raise ValueError("lifecycle already at production readiness")
        self.phase = Phase(self.phase.order + 1)
        if self.phase in REPROCESSING_PHASES:
            self._events.append(
                ReprocessingEvent(
                    phase=self.phase,
                    trigger=ReprocessingTrigger.PHASE_GATE,
                    note=f"gate at {self.phase.name.lower()}",
                )
            )
        return self.phase

    def report_field_vulnerability(self, note: str = "") -> ReprocessingEvent:
        """Record a field vulnerability; always forces a reprocessing."""
        event = ReprocessingEvent(
            phase=self.phase,
            trigger=ReprocessingTrigger.FIELD_VULNERABILITY,
            note=note,
        )
        self._events.append(event)
        return event

    def report_trend_shift(self, note: str = "") -> ReprocessingEvent:
        """Record a PSP-detected social trend shift (runtime monitoring)."""
        event = ReprocessingEvent(
            phase=self.phase,
            trigger=ReprocessingTrigger.PSP_TREND_SHIFT,
            note=note,
        )
        self._events.append(event)
        return event

    @property
    def events(self) -> Tuple[ReprocessingEvent, ...]:
        """All recorded reprocessing events, oldest first."""
        return tuple(self._events)

    def reprocessing_count(
        self, trigger: Optional[ReprocessingTrigger] = None
    ) -> int:
        """Number of reprocessings, optionally filtered by trigger."""
        if trigger is None:
            return len(self._events)
        return sum(1 for e in self._events if e.trigger is trigger)
