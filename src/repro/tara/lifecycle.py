"""Development-lifecycle phases and TARA reprocessing (paper Fig. 2).

ISO/SAE-21434 follows the V-model: item definition, TARA, goals and
concepts, design, implementation, integration and verification, testing
phases, and production readiness.  The TARA is *recursive*: it is
reprocessed at defined points of the cycle and whenever a vulnerability
is detected in the field.  :class:`LifecycleTracker` records phase
transitions and reprocessing triggers so a TARA run can be tied to the
phase that demanded it — the hook through which PSP's runtime model
("monitoring internal risks" — paper §IV) enters the process.

:class:`LifecycleTaraRunner` closes the loop: it couples a tracker with
the compile-once runtime (:mod:`repro.tara.model` /
:mod:`repro.tara.scoring`) so every reprocessing event *re-scores the
same compiled threat model* — across a ten-phase lifecycle the
architecture is walked once, however many gates, field vulnerabilities
and PSP trend shifts demand a fresh TARA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Optional, Tuple

from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table

if TYPE_CHECKING:  # heavy imports deferred; resolved inside the runner
    from repro.core.monitor import TrendAlert
    from repro.iso21434.impact import ImpactProfile
    from repro.iso21434.risk import RiskMatrix
    from repro.iso21434.treatment import TreatmentPolicy
    from repro.tara.scoring import TaraReportData
    from repro.vehicle.network import VehicleNetwork


class Phase(enum.Enum):
    """V-model phases of Fig. 2, in order."""

    ITEM_DEFINITION = 0
    TARA = 1
    GOALS_AND_CONCEPTS = 2
    DESIGN = 3
    IMPLEMENTATION = 4
    INTEGRATION_VERIFICATION = 5
    FUNCTIONAL_TESTING = 6
    FUZZ_TESTING = 7
    PEN_TESTING = 8
    PRODUCTION_READINESS = 9

    @property
    def order(self) -> int:
        """Position in the lifecycle."""
        return int(self.value)


#: Phases after which Fig. 2 shows a "TARA REPROCESSING" arrow.
REPROCESSING_PHASES: Tuple[Phase, ...] = (
    Phase.DESIGN,
    Phase.IMPLEMENTATION,
    Phase.INTEGRATION_VERIFICATION,
    Phase.FUNCTIONAL_TESTING,
    Phase.FUZZ_TESTING,
    Phase.PEN_TESTING,
)


class ReprocessingTrigger(enum.Enum):
    """Why a TARA reprocessing was requested."""

    PHASE_GATE = "phase_gate"
    FIELD_VULNERABILITY = "field_vulnerability"
    PSP_TREND_SHIFT = "psp_trend_shift"


@dataclass(frozen=True)
class ReprocessingEvent:
    """One recorded TARA reprocessing."""

    phase: Phase
    trigger: ReprocessingTrigger
    note: str = ""


@dataclass
class LifecycleTracker:
    """Tracks phase progression and TARA reprocessing events."""

    phase: Phase = Phase.ITEM_DEFINITION
    _events: List[ReprocessingEvent] = field(default_factory=list)

    def advance(self) -> Phase:
        """Move to the next phase; records a reprocessing at gate phases.

        Raises:
            ValueError: when already at production readiness.
        """
        if self.phase is Phase.PRODUCTION_READINESS:
            raise ValueError("lifecycle already at production readiness")
        self.phase = Phase(self.phase.order + 1)
        if self.phase in REPROCESSING_PHASES:
            self._events.append(
                ReprocessingEvent(
                    phase=self.phase,
                    trigger=ReprocessingTrigger.PHASE_GATE,
                    note=f"gate at {self.phase.name.lower()}",
                )
            )
        return self.phase

    def report_field_vulnerability(self, note: str = "") -> ReprocessingEvent:
        """Record a field vulnerability; always forces a reprocessing."""
        event = ReprocessingEvent(
            phase=self.phase,
            trigger=ReprocessingTrigger.FIELD_VULNERABILITY,
            note=note,
        )
        self._events.append(event)
        return event

    def report_trend_shift(self, note: str = "") -> ReprocessingEvent:
        """Record a PSP-detected social trend shift (runtime monitoring)."""
        event = ReprocessingEvent(
            phase=self.phase,
            trigger=ReprocessingTrigger.PSP_TREND_SHIFT,
            note=note,
        )
        self._events.append(event)
        return event

    @property
    def events(self) -> Tuple[ReprocessingEvent, ...]:
        """All recorded reprocessing events, oldest first."""
        return tuple(self._events)

    def reprocessing_count(
        self, trigger: Optional[ReprocessingTrigger] = None
    ) -> int:
        """Number of reprocessings, optionally filtered by trigger."""
        if trigger is None:
            return len(self._events)
        return sum(1 for e in self._events if e.trigger is trigger)


@dataclass(frozen=True)
class ReprocessedTara:
    """One reprocessing event together with the TARA it produced."""

    event: ReprocessingEvent
    report: "TaraReportData"


class LifecycleTaraRunner:
    """Drives TARA reprocessing over one compiled threat model.

    Wraps a :class:`LifecycleTracker` so that every recorded
    reprocessing — phase gates hit by :meth:`advance`, field
    vulnerabilities, PSP trend shifts — immediately re-scores the same
    compiled model with the tables currently in force.  The compile
    phase runs once for the whole lifecycle; each event pays only the
    memoised scoring sweep.

    Args:
        network: the architecture under lifecycle management.
        tracker: lifecycle tracker to drive (a fresh one by default).
        table: outsider weight table (standard G.9 by default).
        insider_table: initial insider table; trend shifts replace it.
        risk_matrix / policy / impact_overrides: scorer parameters, as
            on :class:`~repro.tara.engine.TaraEngine`.
    """

    def __init__(
        self,
        network: "VehicleNetwork",
        *,
        tracker: Optional[LifecycleTracker] = None,
        table: Optional[WeightTable] = None,
        insider_table: Optional[WeightTable] = None,
        risk_matrix: Optional["RiskMatrix"] = None,
        policy: Optional["TreatmentPolicy"] = None,
        impact_overrides: Optional[Mapping[str, "ImpactProfile"]] = None,
    ) -> None:
        from repro.tara.model import compile_threat_model
        from repro.tara.scoring import BatchTaraScorer

        self._tracker = tracker if tracker is not None else LifecycleTracker()
        model = compile_threat_model(network, impact_overrides=impact_overrides)
        self._scorer = BatchTaraScorer(
            model, risk_matrix=risk_matrix, policy=policy
        )
        self._table = table if table is not None else standard_table()
        self._insider_table = (
            insider_table if insider_table is not None else self._table
        )
        self._runs: List[ReprocessedTara] = []

    @property
    def tracker(self) -> LifecycleTracker:
        """The driven lifecycle tracker."""
        return self._tracker

    @property
    def phase(self) -> Phase:
        """The current lifecycle phase."""
        return self._tracker.phase

    @property
    def insider_table(self) -> WeightTable:
        """The insider table the next reprocessing will score with."""
        return self._insider_table

    @property
    def runs(self) -> Tuple[ReprocessedTara, ...]:
        """Every reprocessed TARA so far, oldest first."""
        return tuple(self._runs)

    @property
    def memo_stats(self) -> Mapping[str, float]:
        """Feasibility-memo statistics of the shared scorer."""
        return self._scorer.memo_stats

    def _rescore(self, event: ReprocessingEvent) -> ReprocessedTara:
        report = self._scorer.score(
            table=self._table, insider_table=self._insider_table
        )
        run = ReprocessedTara(event=event, report=report)
        self._runs.append(run)
        return run

    def advance(self) -> Phase:
        """Advance one phase; gate phases re-score the compiled model."""
        recorded = len(self._tracker.events)
        phase = self._tracker.advance()
        if len(self._tracker.events) > recorded:
            self._rescore(self._tracker.events[-1])
        return phase

    def run_to_production(self) -> Phase:
        """Advance through every remaining phase, reprocessing at gates."""
        while self._tracker.phase is not Phase.PRODUCTION_READINESS:
            self.advance()
        return self._tracker.phase

    def field_vulnerability(self, note: str = "") -> ReprocessedTara:
        """Record a field vulnerability and reprocess the TARA."""
        return self._rescore(self._tracker.report_field_vulnerability(note))

    def trend_shift(
        self, insider_table: WeightTable, note: str = ""
    ) -> ReprocessedTara:
        """Adopt a PSP-shifted insider table and reprocess the TARA."""
        self._insider_table = insider_table
        return self._rescore(self._tracker.report_trend_shift(note))

    def observe_alert(self, alert: "TrendAlert") -> ReprocessedTara:
        """Adopt a monitor/stream alert's insider table and reprocess.

        The bridge between the alert emitters — the batch
        :class:`~repro.core.monitor.PSPMonitor` and the streaming
        :class:`~repro.stream.runtime.StreamRuntime` — and the
        lifecycle: wire the emitter's alerts into this runner and every
        social trend shift becomes a recorded TARA reprocessing over
        the shared compiled model.
        """
        return self.trend_shift(
            alert.result.insider_table, note=alert.describe()
        )
