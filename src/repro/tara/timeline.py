"""Sliding-window TARA timelines: continuous TARA over a lifecycle.

The paper motivates moving "from static risk assessment models ... to a
runtime model environment" but the seed engine could only express one
TARA at a time.  With the compile/score split this workload is cheap:
the architecture is compiled once, PSP derives one SAI-tuned insider
table per analysis window, and the batch scorer re-scores the same
compiled model for **every** window in one sweep — a full risk history
of the vehicle program (optionally pinned to V-model phases and
recorded on a :class:`~repro.tara.lifecycle.LifecycleTracker`).

Two window shapes are supported by :func:`year_windows`:

* **growing** (``span=None``) — window N covers ``start..N``, the
  cadence of :class:`~repro.core.monitor.PSPMonitor`;
* **sliding** (``span=k``) — window N covers the last ``k`` years,
  which is how trend inversions (paper Fig. 9-C) surface in a timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.timewindow import TimeWindow
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.risk import RiskMatrix
from repro.iso21434.treatment import TreatmentPolicy
from repro.tara.engine import RatingDisagreement, compare_runs
from repro.tara.lifecycle import LifecycleTracker, Phase
from repro.tara.model import compile_threat_model
from repro.tara.scoring import BatchTaraScorer, TableSpec, TaraReportData
from repro.vehicle.network import VehicleNetwork


def year_windows(
    first: int, last: int, *, span: Optional[int] = None
) -> Tuple[TimeWindow, ...]:
    """One analysis window per year from ``first`` to ``last`` inclusive.

    Args:
        first: first covered year.
        last: last covered year.
        span: window width in years; None grows every window from
            ``first`` (the monitor cadence), ``k`` slides a ``k``-year
            window ending at each year (clipped at ``first``).
    """
    if first > last:
        raise ValueError(f"first year {first} > last year {last}")
    if span is not None and span < 1:
        raise ValueError(f"span must be >= 1, got {span}")
    windows = []
    for year in range(first, last + 1):
        start = first if span is None else max(first, year - span + 1)
        windows.append(TimeWindow.years(start, year))
    return tuple(windows)


@dataclass(frozen=True)
class TimelineEntry:
    """One window's TARA outcome along the timeline."""

    window: TimeWindow
    phase: Optional[Phase]
    insider_table: WeightTable
    report: TaraReportData
    #: Diffs against the shared static baseline (experiment E10 per window).
    disagreements: Tuple[RatingDisagreement, ...]

    @property
    def moved(self) -> int:
        """Number of threats rated differently from the static baseline."""
        return len(self.disagreements)


@dataclass(frozen=True)
class TaraTimeline:
    """A full sliding/growing-window TARA history over one architecture."""

    static: TaraReportData
    entries: Tuple[TimelineEntry, ...]
    memo_stats: Optional[Dict[str, float]] = None

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def high_risk_counts(self, threshold: int = 4) -> Tuple[int, ...]:
        """Per-window count of records at/above the risk threshold."""
        return tuple(
            len(entry.report.high_risk(threshold)) for entry in self.entries
        )

    def moved_threat_ids(self) -> Tuple[str, ...]:
        """Every threat id that ever diverged from the baseline, sorted."""
        moved = {
            disagreement.threat_id
            for entry in self.entries
            for disagreement in entry.disagreements
        }
        return tuple(sorted(moved))

    def table_changes(self) -> Tuple[int, ...]:
        """Indices of entries whose insider table moved vs the previous one."""
        changed = []
        for index in range(1, len(self.entries)):
            before = self.entries[index - 1].insider_table
            after = self.entries[index].insider_table
            if after.differs_from(before):
                changed.append(index)
        return tuple(changed)


def run_timeline(
    framework,
    network: VehicleNetwork,
    *,
    start_year: int,
    end_year: int,
    span: Optional[int] = None,
    phases: Optional[Sequence[Phase]] = None,
    tracker: Optional[LifecycleTracker] = None,
    learn: bool = False,
    table: Optional[WeightTable] = None,
    risk_matrix: Optional[RiskMatrix] = None,
    policy: Optional[TreatmentPolicy] = None,
    impact_overrides: Optional[Dict[str, ImpactProfile]] = None,
) -> TaraTimeline:
    """Score a whole TARA timeline over one compiled model.

    One PSP run per window derives the insider tables; the architecture
    is compiled once and the batch scorer evaluates the static baseline
    plus every window's table in a single sweep.  Every entry carries
    its E10-style diff against the shared baseline.

    Args:
        framework: a :class:`~repro.core.framework.PSPFramework` (build
            it with ``cache=True`` so overlapping windows re-mine only
            the newly covered years).
        network: the architecture under continuous assessment.
        start_year: first year of the timeline.
        end_year: last year of the timeline.
        span: sliding-window width in years (None = growing windows).
        phases: optional V-model phase per window (same length as the
            timeline) for lifecycle-pinned reports.
        tracker: optional lifecycle tracker; insider-table movements
            between consecutive windows are recorded as PSP_TREND_SHIFT
            reprocessing events.
        learn: run keyword auto-learning on each PSP pass.
        table: outsider weight table (standard G.9 by default).
        risk_matrix / policy / impact_overrides: scorer parameters, as
            on :class:`~repro.tara.engine.TaraEngine`.
    """
    windows = year_windows(start_year, end_year, span=span)
    if phases is not None and len(phases) != len(windows):
        raise ValueError(
            f"phases length {len(phases)} != window count {len(windows)}"
        )

    results = [framework.run(window, learn=learn) for window in windows]

    base = table if table is not None else standard_table()
    model = compile_threat_model(network, impact_overrides=impact_overrides)
    scorer = BatchTaraScorer(model, risk_matrix=risk_matrix, policy=policy)

    specs = [TableSpec(label="__static__", table=base)]
    specs.extend(
        TableSpec(
            label=f"window:{index}",
            table=base,
            insider_table=result.insider_table,
        )
        for index, result in enumerate(results)
    )
    reports = scorer.score_many(specs)
    static = reports.pop("__static__")

    entries: List[TimelineEntry] = []
    previous: Optional[WeightTable] = None
    for index, (window, result) in enumerate(zip(windows, results)):
        insider = result.insider_table
        report = reports[f"window:{index}"]
        if (
            tracker is not None
            and previous is not None
            and insider.differs_from(previous)
        ):
            tracker.report_trend_shift(
                f"timeline window {window.describe()} moved insider ratings"
            )
        previous = insider
        entries.append(
            TimelineEntry(
                window=window,
                phase=phases[index] if phases is not None else None,
                insider_table=insider,
                report=report,
                disagreements=tuple(compare_runs(network, static, report)),
            )
        )
    return TaraTimeline(
        static=static, entries=tuple(entries), memo_stats=scorer.memo_stats
    )
