"""Batch TARA scoring: many weight tables, one compiled model.

The score phase of the split runtime (see :mod:`repro.tara.model`):
given a :class:`~repro.tara.model.CompiledThreatModel`,
:class:`BatchTaraScorer` evaluates any number of attack-vector weight
tables without re-walking the architecture.  Per-threat feasibility is
memoised on ``(hosting ECU, usable vectors, table fingerprint)`` — two
tables assigning the same four ratings share every lookup, and within
one table all threats of an ECU with the same vector set resolve from
one computation.  Step materialisation is memoised on the model itself
(per ``(path, entry-rating)``), so a 10-member fleet, the lifecycle
reprocessor and the runtime monitor all share it.

Output is record-for-record identical to a fresh per-table
``TaraEngine.run()`` (property-tested in
``tests/properties/test_tara_batch_equivalence.py`` and gated in CI by
``benchmarks/bench_tara_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.iso21434.attack_path import AttackPath
from repro.iso21434.cal import determine_cal
from repro.iso21434.enums import CAL, AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.risk import RiskMatrix, default_matrix
from repro.iso21434.threats import ThreatScenario
from repro.iso21434.treatment import TreatmentOption, TreatmentPolicy
from repro.tara.model import CompiledThreatModel, PathSkeleton

#: Fixed vector order used by table fingerprints.
_FINGERPRINT_ORDER = (
    AttackVector.NETWORK,
    AttackVector.ADJACENT,
    AttackVector.LOCAL,
    AttackVector.PHYSICAL,
)


def table_fingerprint(table: WeightTable) -> Tuple[FeasibilityRating, ...]:
    """The ratings of a table in fixed vector order.

    Tables differing only in ``source``/``note`` share a fingerprint:
    feasibility depends on the ratings alone, so they also share every
    scorer memo entry.
    """
    return tuple(table.rating(v) for v in _FINGERPRINT_ORDER)


@dataclass(frozen=True)
class TaraRecord:
    """The complete TARA outcome for one threat scenario."""

    threat: ThreatScenario
    impact: ImpactProfile
    feasibility: FeasibilityRating
    entry_vector: Optional[AttackVector]
    risk_value: int
    cal: CAL
    treatment: TreatmentOption
    paths: Tuple[AttackPath, ...]

    @property
    def ecu_id(self) -> Optional[str]:
        """The hosting ECU of the threatened asset (by id convention)."""
        return self.threat.asset_id.split(".")[0] if self.threat.asset_id else None


@dataclass(frozen=True)
class TaraReportData:
    """A full TARA run's output."""

    table_source: str
    records: Tuple[TaraRecord, ...]

    def by_threat(self) -> Dict[str, TaraRecord]:
        """Records keyed by threat id (memoised — treat as read-only).

        Fleet diffing calls this once per member against the shared
        static baseline; the index is built on first use and reused.
        """
        cached = self.__dict__.get("_by_threat")
        if cached is None:
            cached = {r.threat.threat_id: r for r in self.records}
            object.__setattr__(self, "_by_threat", cached)
        return cached

    def high_risk(self, threshold: int = 4) -> Tuple[TaraRecord, ...]:
        """Records at or above the risk-value threshold."""
        return tuple(r for r in self.records if r.risk_value >= threshold)


@dataclass(frozen=True)
class TableSpec:
    """One labelled (outsider, insider) table pair for a batch score.

    ``table`` defaults to the standard G.9 table; ``insider_table``
    defaults to ``table`` — the same defaulting as ``TaraEngine``.
    """

    label: str
    table: Optional[WeightTable] = None
    insider_table: Optional[WeightTable] = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("TableSpec label must be non-empty")


#: Memoised per-threat feasibility outcome: the rating, the winning
#: entry vector and the (path_id, rated steps) pairs shared by every
#: threat with the same (ECU, vectors, table-fingerprint) key.
_Scored = Tuple[
    FeasibilityRating,
    Optional[AttackVector],
    Tuple[Tuple[str, tuple], ...],
]


class BatchTaraScorer:
    """Scores weight tables over one compiled threat model.

    Args:
        model: the compiled architecture (shared; its materialisation
            memo outlives any single scorer).
        risk_matrix: risk-value matrix.
        policy: risk-treatment policy.
    """

    def __init__(
        self,
        model: CompiledThreatModel,
        *,
        risk_matrix: Optional[RiskMatrix] = None,
        policy: Optional[TreatmentPolicy] = None,
    ) -> None:
        self._model = model
        self._matrix = risk_matrix if risk_matrix is not None else default_matrix()
        self._policy = policy or TreatmentPolicy()
        self._memo: Dict[Tuple, _Scored] = {}
        self._lookups = 0
        self._hits = 0

    @property
    def model(self) -> CompiledThreatModel:
        """The compiled model being scored."""
        return self._model

    @property
    def memo_stats(self) -> Dict[str, float]:
        """Feasibility-memo lookups, hits and hit rate."""
        return {
            "lookups": self._lookups,
            "hits": self._hits,
            "hit_rate": (self._hits / self._lookups) if self._lookups else 0.0,
        }

    # -- feasibility core ---------------------------------------------------

    def _feasibility_for(
        self,
        ecu_id: str,
        vectors: frozenset,
        table: WeightTable,
    ) -> _Scored:
        """Feasibility outcome for (ECU, usable vectors) under one table."""
        fingerprint = table_fingerprint(table)
        key = (ecu_id, vectors, fingerprint)
        self._lookups += 1
        scored = self._memo.get(key)
        if scored is not None:
            self._hits += 1
            return scored

        model = self._model
        pairs: List[Tuple[str, tuple]] = []
        best_rank: Optional[Tuple[int, int]] = None
        best_skeleton: Optional[PathSkeleton] = None
        for skeleton in model.skeletons_for(ecu_id):
            if skeleton.entry_vector not in vectors:
                continue
            entry_rating = table.rating(skeleton.entry_vector)
            pairs.append(
                (skeleton.path_id, model.materialize_steps(skeleton, entry_rating))
            )
            # max() keeps the first maximal path, so only a strictly
            # greater (level, -length) rank displaces the incumbent.
            rank = (skeleton.feasibility_under(entry_rating), -skeleton.length)
            if best_rank is None or rank > best_rank:
                best_rank = rank
                best_skeleton = skeleton

        if best_skeleton is None or best_rank is None:
            # No network path exists: fall back to the best vector the
            # threat can use directly (e.g. bench access not modelled).
            best_vector = max(
                vectors, key=lambda v: (table.rating(v).level, v.reach)
            )
            feasibility = table.rating(best_vector)
            entry_vector: Optional[AttackVector] = best_vector
        else:
            # Threat feasibility is the max over path feasibilities,
            # which the lexicographic best-path rank already carries.
            feasibility = FeasibilityRating.from_level(best_rank[0])
            entry_vector = best_skeleton.entry_vector

        scored = (feasibility, entry_vector, tuple(pairs))
        self._memo[key] = scored
        return scored

    def _record_for(
        self,
        threat: ThreatScenario,
        impact: ImpactProfile,
        table: WeightTable,
    ) -> TaraRecord:
        ecu_id = threat.asset_id.split(".")[0]
        feasibility, entry_vector, pairs = self._feasibility_for(
            ecu_id, threat.attack_vectors, table
        )
        paths = tuple(
            AttackPath(path_id=path_id, threat_id=threat.threat_id, steps=steps)
            for path_id, steps in pairs
        )
        risk = self._matrix.risk_value(impact.overall, feasibility)
        cal = (
            determine_cal(impact.overall, entry_vector)
            if entry_vector is not None
            else CAL.NONE
        )
        treatment = self._policy.decide(risk, impact)
        return TaraRecord(
            threat=threat,
            impact=impact,
            feasibility=feasibility,
            entry_vector=entry_vector,
            risk_value=risk,
            cal=cal,
            treatment=treatment,
            paths=paths,
        )

    # -- public scoring API -------------------------------------------------

    def assess_threat(
        self,
        threat: ThreatScenario,
        *,
        table: Optional[WeightTable] = None,
        insider_table: Optional[WeightTable] = None,
    ) -> TaraRecord:
        """Assess a single threat (compiled or ad-hoc) under one table pair."""
        outsider = table if table is not None else standard_table()
        insider = insider_table if insider_table is not None else outsider
        active = insider if threat.is_owner_approved else outsider
        impact = self._model.impact_for(threat)
        return self._record_for(threat, impact, active)

    def score(
        self,
        *,
        table: Optional[WeightTable] = None,
        insider_table: Optional[WeightTable] = None,
    ) -> TaraReportData:
        """One full TARA report under one (outsider, insider) table pair."""
        outsider = table if table is not None else standard_table()
        insider = insider_table if insider_table is not None else outsider
        records = tuple(
            self._record_for(
                threat, impact, insider if threat.is_owner_approved else outsider
            )
            for threat, impact in self._model.items()
        )
        return TaraReportData(table_source=outsider.source, records=records)

    def score_many(
        self, specs: Sequence[TableSpec], *, executor=None
    ) -> Dict[str, TaraReportData]:
        """Score a whole batch of table pairs in one sweep, label-keyed.

        Later specs reuse every memo entry earlier specs populated —
        the fleet workload (one static baseline + N tuned members over
        one architecture) degenerates to one compile plus N cheap
        re-scores.

        Args:
            executor: optional :mod:`~repro.core.executor` instance to
                score the specs concurrently.  Scores are pure
                functions of the compiled model, so any thread count
                returns spec-for-spec identical reports; threads only —
                the point of the batch is sharing one feasibility memo,
                which pickling to a process pool would copy, so process
                executors are rejected.
        """
        labels = [spec.label for spec in specs]
        seen: set = set()
        for label in labels:
            if label in seen:
                raise ValueError(f"duplicate TableSpec label {label!r}")
            seen.add(label)
        if executor is None or getattr(executor, "kind", None) == "serial":
            scored = [
                self.score(table=spec.table, insider_table=spec.insider_table)
                for spec in specs
            ]
        else:
            if getattr(executor, "kind", None) == "process":
                raise ValueError(
                    "score_many shares one feasibility memo across specs "
                    "— use a thread executor"
                )
            scored = executor.map(
                lambda spec: self.score(
                    table=spec.table, insider_table=spec.insider_table
                ),
                specs,
            )
        return dict(zip(labels, scored))
