"""TARA engine: end-to-end Clause-15 runs over a vehicle architecture.

:class:`TaraEngine` executes the four TARA activities (asset
identification → threat identification → impact rating → attack-path
analysis) over a :class:`~repro.vehicle.network.VehicleNetwork`, then
determines feasibility, risk value, CAL and treatment per threat.

The engine is parameterised by the attack-vector weight table, so the
identical pipeline runs under the standard's static table (the baseline)
or a PSP-tuned table — experiment E10 diffs the two outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # imported lazily to avoid a core↔tara import cycle
    from repro.core.framework import PSPRunResult
    from repro.core.pipeline import FleetResult

from repro.iso21434.assets import Asset, AssetRegistry, standard_ecu_assets
from repro.iso21434.cal import determine_cal
from repro.iso21434.enums import (
    CAL,
    AttackerProfile,
    AttackVector,
    FeasibilityRating,
    ImpactCategory,
    ImpactRating,
)
from repro.iso21434.attack_path import AttackPath, threat_feasibility
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.risk import RiskMatrix, default_matrix
from repro.iso21434.threats import ThreatScenario, enumerate_stride_threats
from repro.iso21434.treatment import TreatmentOption, TreatmentPolicy
from repro.vehicle.attack_surface import AttackSurfaceAnalyzer
from repro.vehicle.domains import VehicleDomain
from repro.vehicle.ecu import Ecu
from repro.vehicle.network import VehicleNetwork

#: Default impact profile per domain: powertrain/chassis threats carry
#: safety impact; communication carries operational+privacy; body is
#: operational; infotainment privacy+financial.
_DOMAIN_IMPACT: Mapping[VehicleDomain, ImpactProfile] = {
    VehicleDomain.POWERTRAIN: ImpactProfile(
        {
            ImpactCategory.SAFETY: ImpactRating.SEVERE,
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
            ImpactCategory.FINANCIAL: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.CHASSIS: ImpactProfile(
        {
            ImpactCategory.SAFETY: ImpactRating.SEVERE,
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.BODY: ImpactProfile(
        {
            ImpactCategory.OPERATIONAL: ImpactRating.MODERATE,
            ImpactCategory.FINANCIAL: ImpactRating.MODERATE,
        }
    ),
    VehicleDomain.INFOTAINMENT: ImpactProfile(
        {
            ImpactCategory.PRIVACY: ImpactRating.MAJOR,
            ImpactCategory.FINANCIAL: ImpactRating.MODERATE,
        }
    ),
    VehicleDomain.COMMUNICATION: ImpactProfile(
        {
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
            ImpactCategory.PRIVACY: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.GATEWAY: ImpactProfile(
        {
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
            ImpactCategory.SAFETY: ImpactRating.MAJOR,
        }
    ),
    VehicleDomain.DIAGNOSTIC: ImpactProfile(
        {ImpactCategory.OPERATIONAL: ImpactRating.MODERATE}
    ),
}


@dataclass(frozen=True)
class TaraRecord:
    """The complete TARA outcome for one threat scenario."""

    threat: ThreatScenario
    impact: ImpactProfile
    feasibility: FeasibilityRating
    entry_vector: Optional[AttackVector]
    risk_value: int
    cal: CAL
    treatment: TreatmentOption
    paths: Tuple[AttackPath, ...]

    @property
    def ecu_id(self) -> Optional[str]:
        """The hosting ECU of the threatened asset (by id convention)."""
        return self.threat.asset_id.split(".")[0] if self.threat.asset_id else None


@dataclass(frozen=True)
class TaraReportData:
    """A full TARA run's output."""

    table_source: str
    records: Tuple[TaraRecord, ...]

    def by_threat(self) -> Dict[str, TaraRecord]:
        """Records keyed by threat id."""
        return {r.threat.threat_id: r for r in self.records}

    def high_risk(self, threshold: int = 4) -> Tuple[TaraRecord, ...]:
        """Records at or above the risk-value threshold."""
        return tuple(r for r in self.records if r.risk_value >= threshold)


class TaraEngine:
    """Runs complete TARAs over a vehicle network.

    Args:
        network: the vehicle architecture under analysis.
        table: attack-vector weight table for outsider threats (static
            G.9 by default — the paper never re-tunes outsider weights).
        insider_table: weight table for owner-approved (insider) threats;
            pass a PSP-tuned table for the dynamic run.  Defaults to
            ``table``, which makes the engine the pure static baseline.
        risk_matrix: risk-value matrix.
        policy: risk-treatment policy.
        impact_overrides: per-ECU impact profiles replacing the domain
            defaults.
    """

    def __init__(
        self,
        network: VehicleNetwork,
        *,
        table: Optional[WeightTable] = None,
        insider_table: Optional[WeightTable] = None,
        risk_matrix: Optional[RiskMatrix] = None,
        policy: Optional[TreatmentPolicy] = None,
        impact_overrides: Optional[Mapping[str, ImpactProfile]] = None,
    ) -> None:
        self._network = network
        self._table = table if table is not None else standard_table()
        self._insider_table = (
            insider_table if insider_table is not None else self._table
        )
        self._matrix = risk_matrix if risk_matrix is not None else default_matrix()
        self._policy = policy or TreatmentPolicy()
        self._impact_overrides = dict(impact_overrides or {})
        self._analyzer = AttackSurfaceAnalyzer(network, table=self._table)
        self._insider_analyzer = AttackSurfaceAnalyzer(
            network, table=self._insider_table
        )

    @classmethod
    def from_psp(
        cls,
        network: VehicleNetwork,
        result: "PSPRunResult",
        **kwargs,
    ) -> "TaraEngine":
        """An engine using a PSP run's tuned insider table.

        The standard table keeps governing outsider threats; only the
        insider table comes from the social evidence — the paper's
        static-outsider / dynamic-insider split, wired in one call::

            engine = TaraEngine.from_psp(network, psp.run(window))

        Extra keyword arguments pass through to the constructor.
        """
        return cls(network, insider_table=result.insider_table, **kwargs)

    @property
    def table(self) -> WeightTable:
        """The outsider (standard) weight table in force."""
        return self._table

    @property
    def insider_table(self) -> WeightTable:
        """The insider weight table in force."""
        return self._insider_table

    def _table_for(self, threat: ThreatScenario) -> WeightTable:
        return self._insider_table if threat.is_owner_approved else self._table

    def _analyzer_for(self, threat: ThreatScenario) -> AttackSurfaceAnalyzer:
        return (
            self._insider_analyzer if threat.is_owner_approved else self._analyzer
        )

    # -- TARA activities ----------------------------------------------------

    def identify_assets(self) -> AssetRegistry:
        """Activity 1: enumerate the canonical assets of every ECU."""
        registry = AssetRegistry()
        for ecu in self._network.ecus:
            registry.register_all(standard_ecu_assets(ecu.ecu_id, ecu.name))
        return registry

    def identify_threats(self, assets: AssetRegistry) -> List[ThreatScenario]:
        """Activity 2: STRIDE threat enumeration per asset.

        Attack vectors are the hosting ECU's plausible vectors; attacker
        profiles default to the insider set for powertrain/chassis assets
        (the paper's Insider / Rational-Local owners) and the outsider set
        elsewhere.
        """
        threats: List[ThreatScenario] = []
        for asset in assets:
            ecu = self._network.ecu(asset.ecu_id) if asset.ecu_id else None
            vectors = ecu.plausible_vectors if ecu else frozenset(AttackVector)
            profiles = self._default_profiles(ecu)
            threats.extend(
                enumerate_stride_threats(
                    asset, attack_vectors=vectors, attacker_profiles=profiles
                )
            )
        return threats

    @staticmethod
    def _default_profiles(ecu: Optional[Ecu]) -> frozenset:
        if ecu is not None and ecu.domain in (
            VehicleDomain.POWERTRAIN,
            VehicleDomain.CHASSIS,
        ):
            return frozenset(
                {
                    AttackerProfile.INSIDER,
                    AttackerProfile.RATIONAL,
                    AttackerProfile.LOCAL,
                }
            )
        return frozenset({AttackerProfile.OUTSIDER, AttackerProfile.MALICIOUS})

    def rate_impact(self, threat: ThreatScenario) -> ImpactProfile:
        """Activity 3: impact rating (per-ECU override, else domain default)."""
        ecu_id = threat.asset_id.split(".")[0]
        if ecu_id in self._impact_overrides:
            return self._impact_overrides[ecu_id]
        ecu = self._network.ecu(ecu_id)
        return _DOMAIN_IMPACT[ecu.domain]

    def analyze_paths(self, threat: ThreatScenario) -> List[AttackPath]:
        """Activity 4: attack-path enumeration for the threatened ECU.

        Paths whose entry vector the threat cannot use are discarded —
        a purely physical tampering threat is not realised through the
        cellular link.
        """
        ecu_id = threat.asset_id.split(".")[0]
        analyzer = self._analyzer_for(threat)
        all_paths = analyzer.paths_to(ecu_id, threat_id=threat.threat_id)
        return [
            p for p in all_paths if p.entry_vector in threat.attack_vectors
        ]

    # -- full run ------------------------------------------------------------

    def assess_threat(self, threat: ThreatScenario) -> TaraRecord:
        """Run impact, feasibility, risk, CAL and treatment for one threat."""
        impact = self.rate_impact(threat)
        table = self._table_for(threat)
        paths = self.analyze_paths(threat)
        aggregated = threat_feasibility(paths)
        if aggregated is None:
            # No network path exists: fall back to the best vector the
            # threat can use directly (e.g. bench access not modelled).
            best_vector = max(
                threat.attack_vectors,
                key=lambda v: (table.rating(v).level, v.reach),
            )
            feasibility = table.rating(best_vector)
            entry_vector: Optional[AttackVector] = best_vector
        else:
            feasibility = aggregated
            best_path = max(
                paths, key=lambda p: (p.feasibility.level, -p.length)
            )
            entry_vector = best_path.entry_vector
        risk = self._matrix.risk_value(impact.overall, feasibility)
        cal = (
            determine_cal(impact.overall, entry_vector)
            if entry_vector is not None
            else CAL.NONE
        )
        treatment = self._policy.decide(risk, impact)
        return TaraRecord(
            threat=threat,
            impact=impact,
            feasibility=feasibility,
            entry_vector=entry_vector,
            risk_value=risk,
            cal=cal,
            treatment=treatment,
            paths=tuple(paths),
        )

    def run(
        self, *, extra_threats: Iterable[ThreatScenario] = ()
    ) -> TaraReportData:
        """Execute the complete TARA over the whole architecture.

        Args:
            extra_threats: additional threat scenarios to assess alongside
                the auto-enumerated ones — e.g. the message-level threats
                derived by :func:`repro.vehicle.messages.message_threats`.
                Their asset ids must follow the ``<ecu_id>.<rest>``
                convention so impact and path analysis can locate the
                hosting ECU.
        """
        assets = self.identify_assets()
        threats = list(self.identify_threats(assets))
        threats.extend(extra_threats)
        records = tuple(self.assess_threat(t) for t in threats)
        return TaraReportData(table_source=self._table.source, records=records)


@dataclass(frozen=True)
class RatingDisagreement:
    """One threat rated differently by two TARA runs."""

    threat_id: str
    ecu_id: str
    domain: VehicleDomain
    static_feasibility: FeasibilityRating
    tuned_feasibility: FeasibilityRating
    static_risk: int
    tuned_risk: int

    @property
    def underestimated(self) -> bool:
        """True when the static model rated the threat *lower* than PSP."""
        return self.tuned_feasibility > self.static_feasibility


@dataclass(frozen=True)
class FleetTaraReport:
    """TARA outcomes for a whole PSP fleet pass over one architecture."""

    #: The shared static baseline run (standard table everywhere).
    static: TaraReportData
    #: Per-target tuned runs, keyed by ``TargetApplication.describe()``.
    tuned: Mapping[str, TaraReportData]

    def targets(self) -> Tuple[str, ...]:
        """The assessed target descriptions."""
        return tuple(self.tuned)

    def run_for(self, description: str) -> TaraReportData:
        """One target's tuned TARA run."""
        try:
            return self.tuned[description]
        except KeyError:
            raise KeyError(f"no TARA run for target {description!r}") from None

    def disagreements(
        self, network: VehicleNetwork
    ) -> Dict[str, List[RatingDisagreement]]:
        """Per-target diffs against the shared static baseline."""
        return {
            description: compare_runs(network, self.static, run)
            for description, run in self.tuned.items()
        }


def fleet_taras(
    network: VehicleNetwork,
    fleet: "FleetResult",
    **engine_kwargs,
) -> FleetTaraReport:
    """Run TARAs for every member of a PSP fleet pass (one architecture).

    The expensive shared work happens once: a single static baseline run
    covers the whole fleet, and each member only re-runs the engine with
    its own tuned insider table.  Combined with
    :func:`repro.core.pipeline.run_fleet` — which shares the social
    query pass across members — this is the fleet-scale assessment path:
    one corpus mine, one baseline TARA, N cheap tuned runs and diffs.

    Args:
        network: the architecture every member is assessed against.
        fleet: a :class:`~repro.core.pipeline.FleetResult`.
        engine_kwargs: extra :class:`TaraEngine` constructor arguments
            applied to the baseline and every tuned engine alike.
    """
    static = TaraEngine(network, **engine_kwargs).run()
    tuned: Dict[str, TaraReportData] = {}
    for member in fleet:
        engine = TaraEngine(
            network, insider_table=member.insider_table, **engine_kwargs
        )
        tuned[member.target.describe()] = engine.run()
    return FleetTaraReport(static=static, tuned=tuned)


def compare_runs(
    network: VehicleNetwork,
    static: TaraReportData,
    tuned: TaraReportData,
) -> List[RatingDisagreement]:
    """Diff two TARA runs over the same architecture (experiment E10)."""
    tuned_by_id = tuned.by_threat()
    disagreements = []
    for record in static.records:
        other = tuned_by_id.get(record.threat.threat_id)
        if other is None or other.feasibility is record.feasibility:
            continue
        ecu_id = record.threat.asset_id.split(".")[0]
        disagreements.append(
            RatingDisagreement(
                threat_id=record.threat.threat_id,
                ecu_id=ecu_id,
                domain=network.ecu(ecu_id).domain,
                static_feasibility=record.feasibility,
                tuned_feasibility=other.feasibility,
                static_risk=record.risk_value,
                tuned_risk=other.risk_value,
            )
        )
    return disagreements
