"""TARA engine facade: end-to-end Clause-15 runs over a vehicle architecture.

Since the compile/score split, :class:`TaraEngine` is a thin facade over
the two-phase runtime:

* :mod:`repro.tara.model` compiles the table-independent threat model
  (assets, STRIDE threats, impact profiles, attack-path skeletons)
  **once** per architecture, fingerprinted and cached;
* :mod:`repro.tara.scoring` evaluates weight tables over the compiled
  model, memoising per-(path, table-fingerprint) feasibility.

The public API is unchanged: the engine is still parameterised by the
attack-vector weight table, so the identical pipeline runs under the
standard's static table (the baseline) or a PSP-tuned table —
experiment E10 diffs the two outputs.  :func:`fleet_taras` now shares
one compiled model (and one scorer memo) across the baseline and every
fleet member instead of paying N+1 full engine runs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # imported lazily to avoid a core↔tara import cycle
    from repro.core.framework import PSPRunResult
    from repro.core.pipeline import FleetResult

from repro.iso21434.assets import AssetRegistry
from repro.iso21434.attack_path import AttackPath
from repro.iso21434.enums import FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.risk import RiskMatrix, default_matrix
from repro.iso21434.threats import ThreatScenario
from repro.iso21434.treatment import TreatmentPolicy
from repro.tara.model import (
    DOMAIN_IMPACT as _DOMAIN_IMPACT,  # noqa: N811  (back-compat alias)
    CompiledThreatModel,
    compile_threat_model,
    default_attacker_profiles,
    enumerate_threats,
    identify_assets,
    rate_impact,
)
from repro.tara.scoring import (
    BatchTaraScorer,
    TableSpec,
    TaraRecord,
    TaraReportData,
)
from repro.vehicle.domains import VehicleDomain
from repro.vehicle.ecu import Ecu
from repro.vehicle.network import VehicleNetwork

__all__ = [
    "FleetTaraReport",
    "RatingDisagreement",
    "TaraEngine",
    "TaraRecord",
    "TaraReportData",
    "compare_runs",
    "fleet_taras",
]


class TaraEngine:
    """Runs complete TARAs over a vehicle network (compile-once facade).

    Args:
        network: the vehicle architecture under analysis.
        table: attack-vector weight table for outsider threats (static
            G.9 by default — the paper never re-tunes outsider weights).
        insider_table: weight table for owner-approved (insider) threats;
            pass a PSP-tuned table for the dynamic run.  Defaults to
            ``table``, which makes the engine the pure static baseline.
        risk_matrix: risk-value matrix.
        policy: risk-treatment policy.
        impact_overrides: per-ECU impact profiles replacing the domain
            defaults.
    """

    def __init__(
        self,
        network: VehicleNetwork,
        *,
        table: Optional[WeightTable] = None,
        insider_table: Optional[WeightTable] = None,
        risk_matrix: Optional[RiskMatrix] = None,
        policy: Optional[TreatmentPolicy] = None,
        impact_overrides: Optional[Mapping[str, ImpactProfile]] = None,
    ) -> None:
        self._network = network
        self._table = table if table is not None else standard_table()
        self._insider_table = (
            insider_table if insider_table is not None else self._table
        )
        self._matrix = risk_matrix if risk_matrix is not None else default_matrix()
        self._policy = policy or TreatmentPolicy()
        self._impact_overrides = dict(impact_overrides or {})
        #: Bounded scorer cache keyed by compiled model (so a network
        #: mutation — which changes the fingerprint and recompiles —
        #: transparently gets a fresh scorer, like the legacy engine
        #: re-walking the live network every run).
        self._scorers: "OrderedDict[CompiledThreatModel, BatchTaraScorer]" = (
            OrderedDict()
        )

    @classmethod
    def from_psp(
        cls,
        network: VehicleNetwork,
        result: "PSPRunResult",
        **kwargs,
    ) -> "TaraEngine":
        """An engine using a PSP run's tuned insider table.

        The standard table keeps governing outsider threats; only the
        insider table comes from the social evidence — the paper's
        static-outsider / dynamic-insider split, wired in one call::

            engine = TaraEngine.from_psp(network, psp.run(window))

        Extra keyword arguments pass through to the constructor.
        """
        return cls(network, insider_table=result.insider_table, **kwargs)

    @property
    def table(self) -> WeightTable:
        """The outsider (standard) weight table in force."""
        return self._table

    @property
    def insider_table(self) -> WeightTable:
        """The insider weight table in force."""
        return self._insider_table

    def _table_for(self, threat: ThreatScenario) -> WeightTable:
        return self._insider_table if threat.is_owner_approved else self._table

    #: Scorers kept per engine; evicting one only drops its feasibility
    #: memo (the compiled model and its step memo live in the shared
    #: compile cache).
    _MAX_SCORERS = 8

    def _scorer_for(
        self, extras: Tuple[ThreatScenario, ...] = ()
    ) -> BatchTaraScorer:
        # Always re-resolve the compiled model: the compile cache hits
        # on an unchanged architecture and recompiles after a mutation.
        model = compile_threat_model(
            self._network,
            impact_overrides=self._impact_overrides,
            extra_threats=extras,
        )
        scorer = self._scorers.get(model)
        if scorer is None:
            scorer = BatchTaraScorer(
                model, risk_matrix=self._matrix, policy=self._policy
            )
            self._scorers[model] = scorer
            while len(self._scorers) > self._MAX_SCORERS:
                self._scorers.popitem(last=False)
        else:
            self._scorers.move_to_end(model)
        return scorer

    # -- TARA activities ----------------------------------------------------

    def identify_assets(self) -> AssetRegistry:
        """Activity 1: enumerate the canonical assets of every ECU."""
        return identify_assets(self._network)

    def identify_threats(self, assets: AssetRegistry) -> List[ThreatScenario]:
        """Activity 2: STRIDE threat enumeration per asset.

        Attack vectors are the hosting ECU's plausible vectors; attacker
        profiles default to the insider set for powertrain/chassis assets
        (the paper's Insider / Rational-Local owners) and the outsider set
        elsewhere.
        """
        return enumerate_threats(self._network, assets)

    @staticmethod
    def _default_profiles(ecu: Optional[Ecu]) -> frozenset:
        return default_attacker_profiles(ecu)

    def rate_impact(self, threat: ThreatScenario) -> ImpactProfile:
        """Activity 3: impact rating (per-ECU override, else domain default)."""
        return rate_impact(self._network, threat, self._impact_overrides)

    def analyze_paths(self, threat: ThreatScenario) -> List[AttackPath]:
        """Activity 4: attack-path enumeration for the threatened ECU.

        Paths whose entry vector the threat cannot use are discarded —
        a purely physical tampering threat is not realised through the
        cellular link.
        """
        return self._scorer_for().model.paths_for(threat, self._table_for(threat))

    # -- full run ------------------------------------------------------------

    def assess_threat(self, threat: ThreatScenario) -> TaraRecord:
        """Run impact, feasibility, risk, CAL and treatment for one threat."""
        return self._scorer_for().assess_threat(
            threat, table=self._table, insider_table=self._insider_table
        )

    def run(
        self, *, extra_threats: Iterable[ThreatScenario] = ()
    ) -> TaraReportData:
        """Execute the complete TARA over the whole architecture.

        Args:
            extra_threats: additional threat scenarios to assess alongside
                the auto-enumerated ones — e.g. the message-level threats
                derived by :func:`repro.vehicle.messages.message_threats`.
                Their asset ids must follow the ``<ecu_id>.<rest>``
                convention so impact and path analysis can locate the
                hosting ECU.
        """
        scorer = self._scorer_for(tuple(extra_threats))
        return scorer.score(table=self._table, insider_table=self._insider_table)


@dataclass(frozen=True)
class RatingDisagreement:
    """One threat rated differently by two TARA runs.

    ``domain`` is None when the threat's asset id does not resolve to an
    ECU of the compared network (e.g. a hand-written extra threat) — the
    disagreement is still reported rather than crashing the diff.
    """

    threat_id: str
    ecu_id: str
    domain: Optional[VehicleDomain]
    static_feasibility: FeasibilityRating
    tuned_feasibility: FeasibilityRating
    static_risk: int
    tuned_risk: int

    @property
    def underestimated(self) -> bool:
        """True when the static model rated the threat *lower* than PSP."""
        return self.tuned_feasibility > self.static_feasibility


@dataclass(frozen=True)
class FleetTaraReport:
    """TARA outcomes for a whole PSP fleet pass over one architecture."""

    #: The shared static baseline run (standard table everywhere).
    static: TaraReportData
    #: Per-target tuned runs, keyed by ``TargetApplication.describe()``.
    tuned: Mapping[str, TaraReportData]
    #: Feasibility-memo statistics of the shared batch scorer (None for
    #: reports assembled outside :func:`fleet_taras`).
    memo_stats: Optional[Mapping[str, float]] = None

    def targets(self) -> Tuple[str, ...]:
        """The assessed target descriptions."""
        return tuple(self.tuned)

    def run_for(self, description: str) -> TaraReportData:
        """One target's tuned TARA run."""
        try:
            return self.tuned[description]
        except KeyError:
            raise KeyError(f"no TARA run for target {description!r}") from None

    def disagreements(
        self, network: VehicleNetwork
    ) -> Dict[str, List[RatingDisagreement]]:
        """Per-target diffs against the shared static baseline."""
        return {
            description: compare_runs(network, self.static, run)
            for description, run in self.tuned.items()
        }


def fleet_taras(
    network: VehicleNetwork,
    fleet: "FleetResult",
    *,
    workers: Optional[int] = None,
    executor=None,
    **engine_kwargs,
) -> FleetTaraReport:
    """Run TARAs for every member of a PSP fleet pass (one architecture).

    The expensive shared work happens once: the architecture is compiled
    once (assets, threats, impacts, path skeletons), and the baseline
    plus every member are scored by one :class:`BatchTaraScorer` over
    that compiled model — only feasibility→risk→CAL→treatment vary with
    the member's insider table, and even those memoise across members.
    Combined with :func:`repro.core.pipeline.run_fleet` — which shares
    the social query pass across members — this is the fleet-scale
    assessment path: one corpus mine, one compiled model, N cheap
    re-scores and diffs.

    Args:
        network: the architecture every member is assessed against.
        fleet: a :class:`~repro.core.pipeline.FleetResult`.
        workers: score the member table pairs through a thread-pool
            :mod:`~repro.core.executor` of this size.  Scores are pure
            functions of the compiled model, so any thread count
            returns member-for-member identical reports; threads (not
            processes) so the members keep sharing one feasibility
            memo — process executors are rejected.
        executor: explicit executor instance; wins over ``workers``.
        engine_kwargs: extra :class:`TaraEngine` constructor arguments
            (``table``, ``risk_matrix``, ``policy``,
            ``impact_overrides``) applied to the baseline and every
            tuned score alike.  ``insider_table`` is rejected: each
            member supplies its own.
    """
    from repro.core.executor import resolve_executor

    allowed = {"table", "risk_matrix", "policy", "impact_overrides"}
    unknown = set(engine_kwargs) - allowed
    if unknown:
        names = ", ".join(sorted(unknown))
        raise TypeError(f"fleet_taras() got unexpected engine kwargs: {names}")
    table = engine_kwargs.get("table")
    model = compile_threat_model(
        network, impact_overrides=engine_kwargs.get("impact_overrides")
    )
    scorer = BatchTaraScorer(
        model,
        risk_matrix=engine_kwargs.get("risk_matrix"),
        policy=engine_kwargs.get("policy"),
    )
    specs = [TableSpec(label="__static__", table=table)]
    specs.extend(
        TableSpec(
            label=member.target.describe(),
            table=table,
            insider_table=member.insider_table,
        )
        for member in fleet
    )
    owns_executor = executor is None
    if owns_executor:
        executor = resolve_executor(workers, prefer="thread")
    try:
        reports = scorer.score_many(specs, executor=executor)
    finally:
        if owns_executor:
            executor.close()
    static = reports.pop("__static__")
    return FleetTaraReport(
        static=static, tuned=reports, memo_stats=scorer.memo_stats
    )


def compare_runs(
    network: VehicleNetwork,
    static: TaraReportData,
    tuned: TaraReportData,
) -> List[RatingDisagreement]:
    """Diff two TARA runs over the same architecture (experiment E10).

    Threats whose asset id does not resolve to a network ECU (possible
    with hand-written extra threats) are reported with ``domain=None``
    instead of raising.
    """
    tuned_by_id = tuned.by_threat()
    disagreements = []
    for record in static.records:
        other = tuned_by_id.get(record.threat.threat_id)
        if other is None or other.feasibility is record.feasibility:
            continue
        ecu_id = record.threat.asset_id.split(".")[0]
        try:
            domain: Optional[VehicleDomain] = network.ecu(ecu_id).domain
        except KeyError:
            domain = None
        disagreements.append(
            RatingDisagreement(
                threat_id=record.threat.threat_id,
                ecu_id=ecu_id,
                domain=domain,
                static_feasibility=record.feasibility,
                tuned_feasibility=other.feasibility,
                static_risk=record.risk_value,
                tuned_risk=other.risk_value,
            )
        )
    return disagreements
