"""Tests for Social Attraction Index computation."""

import datetime as dt

import pytest

from repro.core.config import PSPConfig, SAIWeights
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer, SAIEntry, SAIList
from repro.iso21434.enums import AttackVector
from repro.social.api import InMemoryClient
from repro.social.corpus import Corpus
from repro.social.post import Engagement, Post


def post(pid, text, views=1000, likes=50, year=2022) -> Post:
    return Post(
        post_id=pid, text=text, author="u",
        created_at=dt.date(year, 6, 1),
        engagement=Engagement(views=views, likes=likes),
    )


def db_with(*keywords) -> KeywordDatabase:
    db = KeywordDatabase()
    for keyword in keywords:
        db.add(AttackKeyword(keyword=keyword, vector=AttackVector.PHYSICAL,
                             owner_approved=True))
    return db


@pytest.fixture()
def computer_small():
    corpus = Corpus(
        [
            post("p1", "love my #dpfdelete", views=5000, likes=300),
            post("p2", "#dpfdelete done, great", views=4000, likes=250),
            post("p3", "#egroff was fine", views=500, likes=10),
        ]
    )
    return SAIComputer(InMemoryClient(corpus))


class TestSAIEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            SAIEntry(
                keyword="x", vector=None, owner_approved=None,
                score=-1.0, probability=0.0, post_count=0,
                engagement=Engagement(), mean_sentiment=0.0,
            )
        with pytest.raises(ValueError):
            SAIEntry(
                keyword="x", vector=None, owner_approved=None,
                score=0.0, probability=1.5, post_count=0,
                engagement=Engagement(), mean_sentiment=0.0,
            )


class TestComputation:
    def test_dominant_topic_ranks_first(self, computer_small):
        sai = computer_small.compute(db_with("dpfdelete", "egroff"))
        assert sai.ranking() == ("dpfdelete", "egroff")

    def test_probabilities_sum_to_one(self, computer_small):
        sai = computer_small.compute(db_with("dpfdelete", "egroff"))
        assert sum(e.probability for e in sai) == pytest.approx(1.0)

    def test_zero_match_keyword_kept_with_zero_score(self, computer_small):
        sai = computer_small.compute(db_with("dpfdelete", "adbluedelete"))
        entry = sai.entry("adbluedelete")
        assert entry.score == 0.0
        assert entry.post_count == 0

    def test_empty_scene_all_zero(self):
        computer = SAIComputer(InMemoryClient(Corpus()))
        sai = computer.compute(db_with("dpfdelete"))
        assert sai.entry("dpfdelete").score == 0.0
        assert sai.entry("dpfdelete").probability == 0.0

    def test_window_filter_applies(self):
        corpus = Corpus(
            [
                post("p1", "#dpfdelete old", year=2018),
                post("p2", "#dpfdelete new", year=2023),
            ]
        )
        computer = SAIComputer(InMemoryClient(corpus))
        sai = computer.compute(
            db_with("dpfdelete"), since=dt.date(2022, 1, 1)
        )
        assert sai.entry("dpfdelete").post_count == 1

    def test_engagement_totals_recorded(self, computer_small):
        sai = computer_small.compute(db_with("dpfdelete"))
        assert sai.entry("dpfdelete").engagement.views == 9000

    def test_positive_sentiment_amplifies(self):
        corpus = Corpus(
            [
                post("p1", "#kwa is awesome, best ever, love it"),
                post("p2", "#kwb"),
            ]
        )
        computer = SAIComputer(InMemoryClient(corpus))
        sai = computer.compute(db_with("kwa", "kwb"))
        # identical engagement and volume; sentiment breaks the tie
        assert sai.entry("kwa").score > sai.entry("kwb").score

    def test_sentiment_never_suppresses(self):
        corpus = Corpus(
            [
                post("p1", "#kwa broke my engine, worst scam, regret"),
                post("p2", "#kwb"),
            ]
        )
        computer = SAIComputer(InMemoryClient(corpus))
        sai = computer.compute(db_with("kwa", "kwb"))
        assert sai.entry("kwa").score == pytest.approx(sai.entry("kwb").score)

    def test_score_monotone_in_views(self):
        base = Corpus(
            [post("p1", "#kwa", views=1000), post("p2", "#kwb", views=1000)]
        )
        more = Corpus(
            [post("p1", "#kwa", views=9000), post("p2", "#kwb", views=1000)]
        )
        config = PSPConfig(sai_weights=SAIWeights(views=1, interactions=0, volume=0))
        sai_base = SAIComputer(InMemoryClient(base), config=config).compute(
            db_with("kwa", "kwb")
        )
        sai_more = SAIComputer(InMemoryClient(more), config=config).compute(
            db_with("kwa", "kwb")
        )
        assert (
            sai_more.entry("kwa").probability
            > sai_base.entry("kwa").probability
        )


class TestSAIList:
    def _sai(self, computer_small):
        return computer_small.compute(db_with("dpfdelete", "egroff"))

    def test_sorted_descending(self, computer_small):
        sai = self._sai(computer_small)
        scores = [e.score for e in sai]
        assert scores == sorted(scores, reverse=True)

    def test_top(self, computer_small):
        sai = self._sai(computer_small)
        assert len(sai.top(1)) == 1
        assert sai.top(1)[0].keyword == "dpfdelete"

    def test_entry_lookup_unknown(self, computer_small):
        with pytest.raises(KeyError):
            self._sai(computer_small).entry("nope")

    def test_indexing(self, computer_small):
        sai = self._sai(computer_small)
        assert sai[0].keyword == "dpfdelete"
        assert len(sai) == 2

    def test_probability_by_vector_normalised(self, computer_small):
        sai = self._sai(computer_small)
        shares = sai.probability_by_vector()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[AttackVector.PHYSICAL] == pytest.approx(1.0)

    def test_probability_by_vector_skips_unannotated(self):
        corpus = Corpus([post("p1", "#kwa"), post("p2", "#kwb")])
        db = KeywordDatabase(
            [
                AttackKeyword(keyword="kwa", vector=AttackVector.LOCAL),
                AttackKeyword(keyword="kwb"),  # no vector annotation
            ]
        )
        sai = SAIComputer(InMemoryClient(corpus)).compute(db)
        shares = sai.probability_by_vector()
        assert set(shares) == {AttackVector.LOCAL}
        assert shares[AttackVector.LOCAL] == pytest.approx(1.0)

    def test_as_rows(self, computer_small):
        rows = self._sai(computer_small).as_rows()
        assert rows[0][0] == "dpfdelete"
        assert len(rows) == 2
