"""Tests for the runtime PSP monitor."""

import pytest

from repro.core.monitor import PSPMonitor
from repro.iso21434.enums import AttackVector
from repro.tara.lifecycle import LifecycleTracker, Phase, ReprocessingTrigger


class TestTick:
    def test_first_tick_is_baseline(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        assert monitor.tick(2018) is None
        assert monitor.current_table is not None
        assert monitor.alerts == ()

    def test_ticks_must_advance(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        monitor.tick(2018)
        with pytest.raises(ValueError, match="advance"):
            monitor.tick(2018)

    def test_tick_before_start_rejected(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        with pytest.raises(ValueError, match="precedes"):
            monitor.tick(2014)

    def test_stable_years_do_not_alert(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        monitor.tick(2018)
        # 2019/2020 continue the same physical-dominated regime
        assert monitor.tick(2019) is None
        assert monitor.tick(2020) is None


class TestTrendDetection:
    def test_ecm_shift_detected_eventually(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        alerts = monitor.run_years(2018, 2023)
        assert alerts
        # the local vector must appear among the raised ratings
        raised = [
            change.vector
            for alert in alerts
            for change in alert.changes
            if change.raised
        ]
        assert AttackVector.LOCAL in raised

    def test_alert_describe(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        alerts = monitor.run_years(2018, 2023)
        text = alerts[0].describe()
        assert "insider ratings moved" in text

    def test_run_years_validates_order(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        with pytest.raises(ValueError):
            monitor.run_years(2023, 2018)


class TestLifecycleIntegration:
    def test_alerts_recorded_as_reprocessing(self, ecm_framework):
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        monitor = PSPMonitor(
            ecm_framework, start_year=2015, tracker=tracker
        )
        alerts = monitor.run_years(2018, 2023)
        assert len(monitor.reprocessing_events()) == len(alerts)
        assert tracker.reprocessing_count(
            ReprocessingTrigger.PSP_TREND_SHIFT
        ) == len(alerts)

    def test_without_tracker_no_events(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        monitor.run_years(2018, 2023)
        assert monitor.reprocessing_events() == ()


class TestStreamMode:
    def test_stream_tick_api_is_backward_compatible(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015, stream=True)
        assert monitor.tick(2018) is None  # baseline, as in batch mode
        assert monitor.current_table is not None
        with pytest.raises(ValueError, match="advance"):
            monitor.tick(2018)
        assert monitor.stream_runtime is not None

    def test_stream_alerts_match_batch_alerts(self, ecm_client):
        from tests.conftest import build_ecm_database
        from repro import PSPFramework, TargetApplication

        target = TargetApplication("car", "europe", "passenger")
        batch = PSPMonitor(
            PSPFramework(ecm_client, target, database=build_ecm_database()),
            start_year=2015,
        )
        stream = PSPMonitor(
            PSPFramework(ecm_client, target, database=build_ecm_database()),
            start_year=2015,
            stream=True,
        )
        batch_alerts = batch.run_years(2018, 2023)
        stream_alerts = stream.run_years(2018, 2023)
        assert [a.upto_year for a in stream_alerts] == [
            a.upto_year for a in batch_alerts
        ]
        assert [a.changes for a in stream_alerts] == [
            a.changes for a in batch_alerts
        ]
        assert (
            stream.current_table.as_rows() == batch.current_table.as_rows()
        )

    def test_stream_tara_matches_batch_tara(self, ecm_client, fig4_network):
        from tests.conftest import build_ecm_database
        from repro import PSPFramework, TargetApplication

        target = TargetApplication("car", "europe", "passenger")
        batch = PSPMonitor(
            PSPFramework(ecm_client, target, database=build_ecm_database()),
            start_year=2015,
            network=fig4_network,
        )
        stream = PSPMonitor(
            PSPFramework(ecm_client, target, database=build_ecm_database()),
            start_year=2015,
            network=fig4_network,
            stream=True,
        )
        batch_alerts = batch.run_years(2018, 2023)
        stream_alerts = stream.run_years(2018, 2023)
        assert [a.tara for a in stream_alerts] == [
            a.tara for a in batch_alerts
        ]
        assert stream.tara_scorer is not None
        assert stream.baseline_tara() == batch.baseline_tara()

    def test_stream_alerts_recorded_on_tracker(self, ecm_framework):
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        monitor = PSPMonitor(
            ecm_framework, start_year=2015, tracker=tracker, stream=True
        )
        alerts = monitor.run_years(2018, 2023)
        assert len(monitor.reprocessing_events()) == len(alerts)

    def test_stream_with_learn_rejected(self, ecm_framework):
        with pytest.raises(ValueError, match="learning"):
            PSPMonitor(
                ecm_framework, start_year=2015, stream=True, learn=True
            )

    def test_filtering_client_routes_filter_into_feed_path(self, ecm_client):
        from tests.conftest import build_ecm_database
        from repro import PSPFramework, TargetApplication
        from repro.core.poisoning import FilteringClient

        filtering = FilteringClient(ecm_client)
        framework = PSPFramework(
            filtering,
            TargetApplication("car", "europe", "passenger"),
            database=build_ecm_database(),
        )
        monitor = PSPMonitor(framework, start_year=2015, stream=True)
        runtime = monitor.stream_runtime
        # the client stack is unwrapped: the corpus feeds the stream and
        # the FilteringClient's own filter guards each micro-batch
        assert runtime.post_filter is filtering.post_filter
        assert monitor.tick(2018) is None

    def test_stream_without_corpus_client_needs_feed(self, ecm_client):
        from tests.conftest import build_ecm_database
        from repro import PSPFramework, TargetApplication
        from repro.social.api import SocialMediaClient

        class StubClient(SocialMediaClient):
            def search(self, query):
                return []

            def count_by_year(self, query):
                return {}

        framework = PSPFramework(
            StubClient(),
            TargetApplication("car", "europe", "passenger"),
            database=build_ecm_database(),
        )
        with pytest.raises(ValueError, match="feed"):
            PSPMonitor(framework, start_year=2015, stream=True)


class TestTaraRescoring:
    def test_alerts_carry_rescored_tara(self, ecm_framework, fig4_network):
        monitor = PSPMonitor(
            ecm_framework, start_year=2015, network=fig4_network
        )
        alerts = monitor.run_years(2018, 2023)
        assert alerts
        for alert in alerts:
            assert alert.tara is not None
            assert alert.tara.records
        assert monitor.tara_scorer is not None

    def test_alert_tara_matches_engine_run(self, ecm_framework, fig4_network):
        from repro.tara.engine import TaraEngine

        monitor = PSPMonitor(
            ecm_framework, start_year=2015, network=fig4_network
        )
        alerts = monitor.run_years(2018, 2023)
        alert = alerts[-1]
        engine = TaraEngine(
            fig4_network, insider_table=alert.result.insider_table
        )
        assert alert.tara == engine.run()

    def test_baseline_tara_available(self, ecm_framework, fig4_network):
        monitor = PSPMonitor(
            ecm_framework, start_year=2015, network=fig4_network
        )
        baseline = monitor.baseline_tara()
        assert baseline is not None
        assert baseline.table_source == "iso21434-g9"

    def test_without_network_no_tara(self, ecm_framework):
        monitor = PSPMonitor(ecm_framework, start_year=2015)
        assert monitor.tara_scorer is None
        assert monitor.baseline_tara() is None
        alerts = monitor.run_years(2018, 2023)
        assert all(alert.tara is None for alert in alerts)
