"""Tests for dynamic weight-table generation (paper Figs. 7-8)."""

import pytest

from repro.core.classification import ClassifiedEntry, InsiderOutsiderSplit
from repro.core.config import TuningThresholds
from repro.core.sai import SAIEntry
from repro.core.weights import (
    WeightTuner,
    rating_from_share,
    tune_table_for_sai,
)
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.social.post import Engagement


def entry(keyword, vector, probability, insider=True) -> ClassifiedEntry:
    sai_entry = SAIEntry(
        keyword=keyword, vector=vector, owner_approved=insider,
        score=probability, probability=probability, post_count=1,
        engagement=Engagement(), mean_sentiment=0.0,
    )
    return ClassifiedEntry(
        entry=sai_entry, insider=insider, from_annotation=True,
        insider_votes=0, outsider_votes=0,
    )


def split_of(*entries) -> InsiderOutsiderSplit:
    return InsiderOutsiderSplit(
        insider=tuple(e for e in entries if e.insider),
        outsider=tuple(e for e in entries if not e.insider),
    )


class TestRatingFromShare:
    @pytest.mark.parametrize(
        "share,expected",
        [
            (0.0, FeasibilityRating.VERY_LOW),
            (0.07, FeasibilityRating.VERY_LOW),
            (0.08, FeasibilityRating.LOW),
            (0.24, FeasibilityRating.LOW),
            (0.25, FeasibilityRating.MEDIUM),
            (0.49, FeasibilityRating.MEDIUM),
            (0.50, FeasibilityRating.HIGH),
            (1.0, FeasibilityRating.HIGH),
        ],
    )
    def test_default_thresholds(self, share, expected):
        assert rating_from_share(share) is expected

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rating_from_share(1.2)
        with pytest.raises(ValueError):
            rating_from_share(-0.1)

    def test_custom_thresholds(self):
        thresholds = TuningThresholds(high=0.9, medium=0.5, low=0.1)
        assert rating_from_share(0.6, thresholds) is FeasibilityRating.MEDIUM

    def test_monotone_in_share(self):
        shares = [i / 100 for i in range(101)]
        ratings = [rating_from_share(s) for s in shares]
        for earlier, later in zip(ratings, ratings[1:]):
            assert later >= earlier


class TestTuner:
    def test_paper_fig8_shape(self):
        # Insider evidence dominated by physical attacks: the tuned table
        # must raise physical and keep the outsider table untouched.
        split = split_of(
            entry("ecmreprogramming", AttackVector.PHYSICAL, 0.55),
            entry("obdtuning", AttackVector.LOCAL, 0.30),
            entry("dongle", AttackVector.ADJACENT, 0.10),
            entry("remote", AttackVector.NETWORK, 0.05),
        )
        outcome = WeightTuner().tune(split, window_label="full history")
        insider = outcome.insider_table
        assert insider.rating(AttackVector.PHYSICAL) is FeasibilityRating.HIGH
        assert insider.rating(AttackVector.LOCAL) is FeasibilityRating.MEDIUM
        assert insider.rating(AttackVector.ADJACENT) is FeasibilityRating.LOW
        assert insider.rating(AttackVector.NETWORK) is FeasibilityRating.VERY_LOW
        assert outcome.outsider_table.ratings == standard_table().ratings

    def test_outsider_entries_do_not_influence_tuning(self):
        with_outsider = split_of(
            entry("ecmreprogramming", AttackVector.PHYSICAL, 0.5),
            entry("theft", AttackVector.NETWORK, 0.5, insider=False),
        )
        outcome = WeightTuner().tune(with_outsider)
        # all insider mass is physical -> physical High despite the huge
        # outsider network presence
        assert outcome.insider_table.rating(AttackVector.PHYSICAL) is (
            FeasibilityRating.HIGH
        )

    def test_shares_renormalised_over_insiders(self):
        split = split_of(
            entry("a", AttackVector.PHYSICAL, 0.3),
            entry("b", AttackVector.LOCAL, 0.1),
            entry("theft", AttackVector.NETWORK, 0.6, insider=False),
        )
        outcome = WeightTuner().tune(split)
        assert outcome.vector_shares[AttackVector.PHYSICAL] == pytest.approx(0.75)
        assert outcome.vector_shares[AttackVector.LOCAL] == pytest.approx(0.25)

    def test_unobserved_vector_capped_at_low(self):
        split = split_of(entry("a", AttackVector.PHYSICAL, 1.0))
        table = WeightTuner().tune(split).insider_table
        # Network is High in the standard table but has no insider social
        # evidence: capped at Low.
        assert table.rating(AttackVector.NETWORK) is FeasibilityRating.LOW
        # Physical, fully observed, is High.
        assert table.rating(AttackVector.PHYSICAL) is FeasibilityRating.HIGH

    def test_unobserved_vector_below_low_keeps_standard(self):
        split = split_of(entry("a", AttackVector.PHYSICAL, 1.0))
        table = WeightTuner().tune(split).insider_table
        # Physical's standard rating is Very Low, below the Low cap;
        # unobserved vectors never get *raised* by the cap rule.
        assert table.rating(AttackVector.LOCAL) is FeasibilityRating.LOW

    def test_no_insider_evidence_all_capped(self):
        split = split_of(entry("theft", AttackVector.NETWORK, 1.0, insider=False))
        table = WeightTuner().tune(split).insider_table
        for vector in AttackVector:
            assert table.rating(vector) <= FeasibilityRating.LOW

    def test_changed_vectors_reported(self):
        split = split_of(entry("a", AttackVector.PHYSICAL, 1.0))
        outcome = WeightTuner().tune(split)
        assert AttackVector.PHYSICAL in outcome.changed_vectors()

    def test_table_source_is_psp(self):
        split = split_of(entry("a", AttackVector.PHYSICAL, 1.0))
        outcome = WeightTuner().tune(split, window_label="since 2022")
        assert outcome.insider_table.source == "psp"
        assert "since 2022" in outcome.insider_table.note


class TestTuneForSai:
    def test_shortcut_uses_vector_shares(self, ecm_client):
        from repro.core.sai import SAIComputer
        from tests.conftest import build_ecm_database

        sai = SAIComputer(ecm_client).compute(build_ecm_database())
        table = tune_table_for_sai(sai, note="bench")
        assert table.source == "psp"
        assert table.rating(AttackVector.PHYSICAL) > standard_table().rating(
            AttackVector.PHYSICAL
        )
