"""Tests for the map-style executor abstraction."""

import os

import pytest

from repro.core.executor import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cpus,
    resolve_executor,
)


def _square(value):
    return value * value


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialExecutor().map(_square, []) == []

    def test_context_manager(self):
        with SerialExecutor() as executor:
            assert executor.map(_square, [2]) == [4]


class TestPoolExecutors:
    @pytest.mark.parametrize("factory", [ThreadExecutor, ProcessExecutor])
    def test_ordered_results_match_serial(self, factory):
        items = list(range(20))
        with factory(3) as executor:
            assert executor.map(_square, items) == [i * i for i in items]

    @pytest.mark.parametrize("factory", [ThreadExecutor, ProcessExecutor])
    def test_pool_reused_across_calls(self, factory):
        with factory(2) as executor:
            assert executor.map(_square, [1, 2]) == [1, 4]
            pool = executor._pool
            assert executor.map(_square, [3, 4]) == [9, 16]
            assert executor._pool is pool

    def test_single_item_skips_pool(self):
        executor = ThreadExecutor(4)
        assert executor.map(_square, [5]) == [25]
        assert executor._pool is None
        executor.close()

    def test_worker_exception_propagates(self):
        def boom(value):
            raise RuntimeError(f"bad {value}")

        with ThreadExecutor(2) as executor:
            with pytest.raises(RuntimeError):
                executor.map(boom, [1, 2, 3])

    def test_close_idempotent(self):
        executor = ThreadExecutor(2)
        executor.map(_square, [1, 2])
        executor.close()
        executor.close()

    @pytest.mark.parametrize("factory", [ThreadExecutor, ProcessExecutor])
    def test_rejects_zero_workers(self, factory):
        with pytest.raises(ValueError):
            factory(0)


class TestResolveExecutor:
    def test_default_is_serial(self):
        assert resolve_executor(None).kind == "serial"
        assert resolve_executor(0).kind == "serial"
        assert resolve_executor(1).kind == "serial"

    def test_explicit_kinds_honoured(self):
        assert resolve_executor(3, kind="thread").kind == "thread"
        assert resolve_executor(3, kind="process").kind == "process"
        assert resolve_executor(8, kind="serial").kind == "serial"

    def test_auto_matches_hardware(self):
        executor = resolve_executor(4)
        if available_cpus() <= 1:
            # Single-CPU host: parallel pure-Python kernels cannot win,
            # so auto degrades to serial instead of paying pool costs.
            assert executor.kind == "serial"
        else:
            assert executor.kind == "process"

    def test_auto_prefers_threads_when_asked(self):
        executor = resolve_executor(4, prefer="thread")
        assert executor.kind in ("serial", "thread")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            resolve_executor(2, kind="quantum")
        with pytest.raises(ValueError):
            resolve_executor(2, prefer="serial")
        with pytest.raises(ValueError):
            resolve_executor(-1)

    def test_kinds_constant(self):
        assert set(EXECUTOR_KINDS) == {"auto", "serial", "thread", "process"}


def test_available_cpus_positive():
    assert available_cpus() >= 1
    assert available_cpus() <= (os.cpu_count() or 1)
