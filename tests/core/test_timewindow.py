"""Tests for time windows and trend detection."""

import datetime as dt

import pytest

from repro.core.sai import SAIEntry, SAIList
from repro.core.timewindow import (
    TimeWindow,
    detect_inversions,
    vector_trends,
    yearly_shares,
)
from repro.iso21434.enums import AttackVector
from repro.social.post import Engagement


def sai_with_shares(shares) -> SAIList:
    """Build a SAI list with one keyword per vector carrying the share."""
    entries = [
        SAIEntry(
            keyword=f"kw{vector.value}", vector=vector, owner_approved=True,
            score=share, probability=share, post_count=1,
            engagement=Engagement(), mean_sentiment=0.0,
        )
        for vector, share in shares.items()
    ]
    return SAIList(entries)


class TestTimeWindow:
    def test_full_history_unbounded(self):
        window = TimeWindow.full_history()
        assert window.since is None
        assert window.until is None
        assert window.describe() == "full history"

    def test_since_year(self):
        window = TimeWindow.since_year(2022)
        assert window.since == dt.date(2022, 1, 1)
        assert window.describe() == "since 2022"

    def test_years_range(self):
        window = TimeWindow.years(2015, 2021)
        assert window.since == dt.date(2015, 1, 1)
        assert window.until == dt.date(2021, 12, 31)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow.years(2022, 2015)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(since=dt.date(2023, 1, 1), until=dt.date(2022, 1, 1))

    def test_describe_without_label(self):
        window = TimeWindow(since=dt.date(2022, 1, 1))
        assert "2022-01-01" in window.describe()


class TestVectorTrends:
    def test_delta_computed(self):
        before = sai_with_shares({AttackVector.PHYSICAL: 0.7, AttackVector.LOCAL: 0.3})
        after = sai_with_shares({AttackVector.PHYSICAL: 0.2, AttackVector.LOCAL: 0.8})
        trends = {t.vector: t for t in vector_trends(before, after)}
        assert trends[AttackVector.LOCAL].delta == pytest.approx(0.5)
        assert trends[AttackVector.PHYSICAL].delta == pytest.approx(-0.5)

    def test_vector_missing_in_one_window(self):
        before = sai_with_shares({AttackVector.PHYSICAL: 1.0})
        after = sai_with_shares({AttackVector.LOCAL: 1.0})
        trends = {t.vector: t for t in vector_trends(before, after)}
        assert trends[AttackVector.LOCAL].share_before == 0.0
        assert trends[AttackVector.PHYSICAL].share_after == 0.0


class TestInversions:
    def test_paper_inversion_detected(self):
        before = sai_with_shares({AttackVector.PHYSICAL: 0.7, AttackVector.LOCAL: 0.3})
        after = sai_with_shares({AttackVector.PHYSICAL: 0.2, AttackVector.LOCAL: 0.8})
        inversions = detect_inversions(before, after)
        assert any(
            inv.risen is AttackVector.LOCAL and inv.fallen is AttackVector.PHYSICAL
            for inv in inversions
        )

    def test_stable_ordering_no_inversion(self):
        shares = {AttackVector.PHYSICAL: 0.7, AttackVector.LOCAL: 0.3}
        assert detect_inversions(sai_with_shares(shares), sai_with_shares(shares)) == []

    def test_describe(self):
        before = sai_with_shares({AttackVector.PHYSICAL: 0.7, AttackVector.LOCAL: 0.3})
        after = sai_with_shares({AttackVector.PHYSICAL: 0.2, AttackVector.LOCAL: 0.8})
        inversion = detect_inversions(before, after)[0]
        assert "overtook" in inversion.describe()


class TestYearlyShares:
    def test_shapes(self):
        by_year = {
            2021: sai_with_shares({AttackVector.PHYSICAL: 1.0}),
            2022: sai_with_shares({AttackVector.LOCAL: 1.0}),
        }
        shares = yearly_shares(by_year)
        assert list(shares) == [2021, 2022]
        assert shares[2022][AttackVector.LOCAL] == pytest.approx(1.0)
