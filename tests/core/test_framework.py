"""Tests for the PSPFramework orchestrator."""

import pytest

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.core.errors import DataUnavailableError
from repro.core.keywords import paper_seed_database
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import standard_table


class TestRun:
    def test_run_produces_complete_result(self, excavator_framework):
        result = excavator_framework.run()
        assert len(result.sai) > 0
        assert result.insider_table.source == "psp"
        assert result.outsider_table.ratings == standard_table().ratings
        assert result.window.describe() == "full history"

    def test_learning_grows_database(self, excavator_client):
        psp = PSPFramework(
            excavator_client,
            TargetApplication("excavator", "europe"),
            database=paper_seed_database(),
        )
        before = len(psp.database)
        result = psp.run(learn=True)
        assert len(psp.database) == before + len(result.learned_keywords)
        assert result.learned_keywords  # companion tags exist in the corpus

    def test_learn_false_skips_learning(self, excavator_framework):
        result = excavator_framework.run(learn=False)
        assert result.learned_keywords == ()

    def test_window_restricts_sai(self, ecm_framework):
        full = ecm_framework.run(TimeWindow.full_history(), learn=False)
        recent = ecm_framework.run(TimeWindow.since_year(2022), learn=False)
        full_posts = full.sai.entry("ecmreprogramming").post_count
        recent_posts = recent.sai.entry("ecmreprogramming").post_count
        assert recent_posts < full_posts


class TestCompareWindows:
    def test_detects_paper_inversion(self, ecm_framework):
        before, after, inversions = ecm_framework.compare_windows(
            TimeWindow.full_history(), TimeWindow.since_year(2022)
        )
        assert any(
            inv.risen is AttackVector.LOCAL
            and inv.fallen is AttackVector.PHYSICAL
            for inv in inversions
        )

    def test_tables_differ_between_windows(self, ecm_framework):
        before, after, _ = ecm_framework.compare_windows(
            TimeWindow.full_history(), TimeWindow.since_year(2022)
        )
        assert before.insider_table.differs_from(after.insider_table)


class TestFinancial:
    def test_paper_eq6_eq7(self, excavator_framework):
        assessment = excavator_framework.assess_financial("dpfdelete")
        assert assessment.pae == 1406
        assert assessment.ppia == pytest.approx(360.0)
        assert assessment.mv == pytest.approx(506160.0)
        assert assessment.competitors == 3
        assert assessment.fc_required == pytest.approx(145286.67, abs=0.01)
        assert assessment.feasibility is FeasibilityRating.HIGH

    def test_competitors_override(self, excavator_framework):
        assessment = excavator_framework.assess_financial(
            "dpfdelete", competitors=1
        )
        assert assessment.competitors == 1
        assert assessment.fc_required == pytest.approx(1406 * 310.0)

    def test_unknown_application_raises(self, excavator_client):
        psp = PSPFramework(
            excavator_client, TargetApplication("submarine", "europe")
        )
        with pytest.raises(DataUnavailableError, match="sales"):
            psp.assess_financial("dpfdelete")

    def test_unlisted_attack_raises(self, excavator_framework):
        with pytest.raises(DataUnavailableError, match="listings"):
            excavator_framework.assess_financial("keycloning")

    def test_specific_sales_year(self, excavator_framework):
        assessment = excavator_framework.assess_financial(
            "dpfdelete", sales_year=2021
        )
        # 131,000 x 1% = 1,310
        assert assessment.pae == 1310
