"""Tests for PSP configuration objects."""

import pytest

from repro.core.config import (
    PAPER_SEED_KEYWORDS,
    PSPConfig,
    SAIWeights,
    TargetApplication,
    TuningThresholds,
)


class TestTargetApplication:
    def test_requires_application(self):
        with pytest.raises(ValueError):
            TargetApplication("")

    def test_requires_region(self):
        with pytest.raises(ValueError):
            TargetApplication("car", region="")

    def test_describe(self):
        target = TargetApplication("excavator", "europe", "industrial")
        assert target.describe() == "excavator / industrial / europe"

    def test_defaults(self):
        target = TargetApplication("car")
        assert target.region == "europe"


class TestSAIWeights:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SAIWeights(views=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            SAIWeights(views=0, interactions=0, volume=0)

    def test_defaults_volume_heaviest(self):
        weights = SAIWeights()
        assert weights.volume > weights.interactions > weights.views


class TestTuningThresholds:
    def test_defaults_descending(self):
        t = TuningThresholds()
        assert t.high > t.medium > t.low > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(high=0.2, medium=0.25, low=0.08),   # high < medium
            dict(high=0.5, medium=0.05, low=0.08),   # medium < low
            dict(high=1.5, medium=0.25, low=0.08),   # high > 1
            dict(high=0.5, medium=0.25, low=0.0),    # low = 0
        ],
    )
    def test_invalid_orderings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TuningThresholds(**kwargs)


class TestPSPConfig:
    def test_defaults_valid(self):
        config = PSPConfig()
        assert config.sentiment_gain >= 0
        assert config.default_competitors >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sentiment_gain=-0.1),
            dict(learning_min_support=1.5),
            dict(learning_max_new=-1),
            dict(default_attacker_rate=0.0),
            dict(default_fte_hours=-1),
            dict(default_sld=-1),
            dict(default_competitors=0),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PSPConfig(**kwargs)


class TestSeedKeywords:
    def test_paper_hashtags_present(self):
        # §III: "#dpfdelete, #egrremoval, #egrdelete, #egroff,
        # #dieselpower, #chiptuning"
        assert PAPER_SEED_KEYWORDS == (
            "dpfdelete", "egrremoval", "egrdelete", "egroff",
            "dieselpower", "chiptuning",
        )
