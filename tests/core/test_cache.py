"""Cache layer: TTL store, cached client, SAI memoisation."""

import datetime as dt

import pytest

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.core.cache import CachedClient, SAICache, TTLCache
from repro.core.sai import SAIComputer
from repro.social import InMemoryClient, excavator_corpus
from repro.social.api import BatchQuery, SearchQuery
from tests.conftest import build_excavator_database


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class CountingClient(InMemoryClient):
    """InMemoryClient that counts backend operations."""

    def __init__(self, corpus) -> None:
        super().__init__(corpus)
        self.search_calls = 0
        self.batch_calls = 0

    def search(self, query):
        self.search_calls += 1
        return super().search(query)

    def search_many(self, batch):
        self.batch_calls += 1
        return super().search_many(batch)


class TestTTLCache:
    def test_miss_then_hit(self):
        cache = TTLCache()
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = TTLCache(ttl=10.0, clock=clock)
        cache.put("k", "v")
        clock.advance(9.9)
        assert cache.get("k") == "v"
        clock.advance(0.2)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = TTLCache(clock=clock)
        cache.put("k", "v")
        clock.advance(1e9)
        assert cache.get("k") == "v"

    def test_eviction_at_capacity(self):
        cache = TTLCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c") == 3

    def test_invalidate_by_predicate(self):
        cache = TTLCache()
        cache.put(("x", 1), "a")
        cache.put(("x", 2), "b")
        cache.put(("y", 1), "c")
        removed = cache.invalidate(lambda key: key[0] == "x")
        assert removed == 2
        assert cache.stats.invalidations == 2
        assert cache.get(("y", 1)) == "c"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TTLCache(ttl=0)
        with pytest.raises(ValueError):
            TTLCache(max_entries=0)


class TestCachedClient:
    def test_search_equivalence(self, excavator_client):
        cached = CachedClient(excavator_client)
        for query in (
            SearchQuery(keyword="dpfdelete"),
            SearchQuery(keyword="dpfdelete", region="europe"),
            SearchQuery(
                keyword="dpfdelete",
                since=dt.date(2020, 1, 1),
                until=dt.date(2022, 12, 31),
            ),
            SearchQuery(keyword="dpfdelete", limit=5),
        ):
            assert cached.search(query) == excavator_client.search(query)
            # Second call is served from cache, still identical.
            assert cached.search(query) == excavator_client.search(query)
        assert cached.stats.hits > 0

    def test_count_by_year_cached(self, excavator_client):
        cached = CachedClient(excavator_client)
        query = SearchQuery(keyword="dpfdelete")
        first = cached.count_by_year(query)
        second = cached.count_by_year(query)
        assert first == second == excavator_client.count_by_year(query)
        assert cached.stats.hits == 1

    def test_overlapping_windows_share_year_segments(self):
        backend = CountingClient(excavator_corpus())
        cached = CachedClient(backend)

        def window_query(last_year):
            return SearchQuery(
                keyword="dpfdelete",
                since=dt.date(2018, 1, 1),
                until=dt.date(last_year, 12, 31),
            )

        cached.search(window_query(2021))   # mines 2018..2021
        mined_first = backend.search_calls
        assert mined_first == 4  # one backend call per year segment
        cached.search(window_query(2022))   # only 2022 is new
        assert backend.search_calls == mined_first + 1

    def test_batched_growing_window_fetches_only_new_year(self):
        backend = CountingClient(excavator_corpus())
        cached = CachedClient(backend)
        keywords = ("dpfdelete", "egrdelete", "chiptuning")

        def batch(last_year):
            return BatchQuery(
                keywords=keywords,
                since=dt.date(2020, 1, 1),
                until=dt.date(last_year, 12, 31),
            )

        first = cached.search_many(batch(2021))
        batches_after_first = backend.batch_calls
        second = cached.search_many(batch(2022))
        # One extra inner batch covering only the newly mined year.
        assert backend.batch_calls == batches_after_first + 1
        for keyword in keywords:
            assert [p.post_id for p in first.posts(keyword)] == [
                p.post_id
                for p in second.posts(keyword)
                if p.created_at <= dt.date(2021, 12, 31)
            ]

    def test_batch_results_match_uncached_client(self, excavator_client):
        cached = CachedClient(InMemoryClient(excavator_client.corpus))
        batch = BatchQuery(
            keywords=("dpfdelete", "egroff"),
            since=dt.date(2019, 1, 1),
            until=dt.date(2022, 12, 31),
            region="europe",
        )
        expected = excavator_client.search_many(batch)
        assert cached.search_many(batch).posts_by_keyword == (
            expected.posts_by_keyword
        )
        # Warm pass: identical again, now from cache.
        assert cached.search_many(batch).posts_by_keyword == (
            expected.posts_by_keyword
        )

    def test_invalidate_keyword(self, excavator_client):
        cached = CachedClient(excavator_client)
        cached.search(SearchQuery(keyword="dpfdelete"))
        cached.search(SearchQuery(keyword="egroff"))
        removed = cached.invalidate_keyword("dpfdelete")
        assert removed == 1
        cached.search(SearchQuery(keyword="egroff"))
        assert cached.stats.hits == 1


class TestSAICache:
    def test_hit_requires_same_version(self):
        cache = SAICache()
        cache.put(3, "result", region="europe")
        assert cache.get(3, region="europe") == "result"
        assert cache.get(4, region="europe") is None

    def test_put_garbage_collects_older_versions(self):
        cache = SAICache()
        cache.put(1, "old", region="europe")
        cache.put(2, "new", region="europe")
        assert cache.get(1, region="europe") is None
        assert cache.stats.invalidations == 1

    def test_windows_are_distinct(self):
        cache = SAICache()
        cache.put(1, "full", region="europe")
        assert cache.get(1, region="europe", since=dt.date(2022, 1, 1)) is None


class TestFrameworkCaching:
    def test_cached_run_matches_uncached(self, excavator_client):
        plain = PSPFramework(
            excavator_client,
            TargetApplication("excavator", "europe", "industrial"),
            database=build_excavator_database(),
        )
        cached = PSPFramework(
            InMemoryClient(excavator_client.corpus),
            TargetApplication("excavator", "europe", "industrial"),
            database=build_excavator_database(),
            cache=True,
        )
        window = TimeWindow.years(2019, 2022)
        expected = plain.run(window, learn=False)
        first = cached.run(window, learn=False)
        second = cached.run(window, learn=False)
        assert first.sai.as_rows() == expected.sai.as_rows()
        assert second.sai.as_rows() == expected.sai.as_rows()
        assert second.insider_table.as_rows() == expected.insider_table.as_rows()
        stats = cached.cache_stats
        assert stats is not None
        assert stats["sai"]["hits"] >= 1

    def test_learning_invalidates_sai_cache(self):
        corpus = excavator_corpus()
        # The paper seed database still has companion hashtags to learn.
        psp = PSPFramework(
            InMemoryClient(corpus),
            TargetApplication("excavator", "europe", "industrial"),
            cache=True,
        )
        before = psp.run(learn=False)
        version_before = psp.database.version
        learned = psp.learn_keywords()
        assert learned, "excavator corpus should yield learned keywords"
        assert psp.database.version > version_before
        after = psp.run(learn=False)
        # The learned keywords participate in the refreshed SAI list.
        assert len(after.sai) == len(before.sai) + len(learned)

    def test_compute_sai_served_from_cache(self):
        backend = CountingClient(excavator_corpus())
        psp = PSPFramework(
            backend,
            TargetApplication("excavator", "europe", "industrial"),
            database=build_excavator_database(),
            cache=True,
        )
        psp.compute_sai()
        calls = backend.batch_calls + backend.search_calls
        psp.compute_sai()
        assert backend.batch_calls + backend.search_calls == calls

    def test_cache_stats_none_when_disabled(self, excavator_framework):
        assert excavator_framework.cache_stats is None

    def test_passing_empty_ttlcache_enables_caching(self, excavator_client):
        # Regression: an empty TTLCache is falsy (it defines __len__);
        # the framework must still treat it as "caching on".
        store = TTLCache(ttl=300.0)
        psp = PSPFramework(
            excavator_client,
            TargetApplication("excavator", "europe", "industrial"),
            database=build_excavator_database(),
            cache=store,
        )
        assert isinstance(psp.client, CachedClient)
        assert psp.client.cache is store
        psp.compute_sai()
        psp.compute_sai()
        stats = psp.cache_stats
        assert stats is not None
        assert stats["sai"]["hits"] == 1

    def test_sibling_shares_policy_not_entries(self):
        clock = FakeClock()
        store = TTLCache(ttl=10.0, max_entries=5, clock=clock)
        store.put("k", "v")
        twin = store.sibling()
        assert len(twin) == 0
        twin.put("k", "w")
        assert store.get("k") == "v"
        clock.advance(11.0)
        assert twin.get("k") is None  # same TTL policy and clock


class TestPrewarmSegments:
    def _cached(self):
        return CachedClient(
            InMemoryClient(excavator_corpus()), cache=TTLCache()
        )

    def test_prewarm_then_windows_hit_entirely(self):
        client = self._cached()
        database = build_excavator_database()
        fetched = client.prewarm_segments(
            database.keywords, 2015, 2023, region="europe"
        )
        assert fetched == len(database.keywords) * 9
        computer = SAIComputer(client)
        for last in (2020, 2021, 2022, 2023):
            computer.compute(
                database,
                region="europe",
                since=dt.date(2015, 1, 1),
                until=dt.date(last, 12, 31),
            )
        assert client.stats.misses == 0
        assert client.stats.hit_rate == 1.0

    def test_prewarm_does_not_count_as_lookups(self):
        client = self._cached()
        client.prewarm_segments(("dpfdelete",), 2020, 2021)
        assert client.stats.lookups == 0

    def test_prewarm_is_idempotent(self):
        client = self._cached()
        first = client.prewarm_segments(("dpfdelete",), 2020, 2022)
        second = client.prewarm_segments(("dpfdelete",), 2020, 2022)
        assert first == 3
        assert second == 0

    def test_prewarmed_results_match_direct_queries(self):
        warmed = self._cached()
        warmed.prewarm_segments(("dpfdelete",), 2015, 2023, region="europe")
        cold = self._cached()
        query = SearchQuery(
            keyword="dpfdelete",
            since=dt.date(2015, 1, 1),
            until=dt.date(2023, 12, 31),
            region="europe",
        )
        assert [p.post_id for p in warmed.search(query)] == [
            p.post_id for p in cold.search(query)
        ]

    def test_prewarm_rejects_inverted_span(self):
        with pytest.raises(ValueError):
            self._cached().prewarm_segments(("dpfdelete",), 2023, 2020)


class TestTTLCacheThreadSafety:
    def test_concurrent_expiry_never_raises(self):
        """Racing expiry deletes must not KeyError (parallel fleet tails)."""
        import threading

        clock = {"now": 0.0}
        cache = TTLCache(ttl=0.5, clock=lambda: clock["now"])
        for i in range(200):
            cache.put(("k", i), i)
        clock["now"] = 1.0  # everything expired
        errors = []

        def reader():
            try:
                for i in range(200):
                    cache.get(("k", i))
            except KeyError as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) == 0

    def test_concurrent_eviction_never_raises(self):
        import threading

        cache = TTLCache(max_entries=8)
        errors = []

        def writer(base):
            try:
                for i in range(300):
                    cache.put((base, i), i)
            except (KeyError, StopIteration) as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 8
