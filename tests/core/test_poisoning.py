"""Tests for the post-authenticity filter (paper §IV future work)."""

import datetime as dt

import pytest

from repro.core.poisoning import (
    FilterConfig,
    FilteringClient,
    PostAuthenticityFilter,
    RejectionReason,
    poison_corpus_with_flood,
)
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer
from repro.social.api import InMemoryClient, SearchQuery
from repro.social.corpus import Corpus
from repro.social.post import Engagement, Post


def post(pid, text, author="organic", views=1000) -> Post:
    return Post(
        post_id=pid, text=text, author=author,
        created_at=dt.date(2022, 6, 1),
        engagement=Engagement(views=views, likes=views // 20),
    )


def organic_posts(n=20, keyword="dpfdelete"):
    texts = [
        "finally got my #{kw} done, pulls great",
        "quoted for a #{kw} at the workshop",
        "is the #{kw} detectable at inspection?",
        "my neighbour recommends the #{kw}",
        "thinking about a #{kw} on the 2019 model",
    ]
    return [
        post(f"o{i:03d}", texts[i % len(texts)].format(kw=keyword) + f" ({i})",
             author=f"user{i:03d}", views=900 + 17 * (i % 7))
        for i in range(n)
    ]


class TestDuplicateRule:
    def test_flood_rejected_beyond_allowance(self):
        posts = organic_posts(10) + [
            post(f"d{i}", "buy the #dpfdelete kit now", author=f"a{i}")
            for i in range(10)
        ]
        report = PostAuthenticityFilter().filter(posts)
        flood = report.rejected_by(RejectionReason.DUPLICATE_FLOOD)
        assert len(flood) >= 8  # allowance = 10% of 20 = 2

    def test_organic_posts_survive(self):
        report = PostAuthenticityFilter().filter(organic_posts(20))
        assert report.rejection_rate == 0.0

    def test_empty_input(self):
        report = PostAuthenticityFilter().filter([])
        assert report.accepted == ()
        assert report.rejection_rate == 0.0


class TestAuthorRule:
    def test_single_author_flood_rejected(self):
        posts = organic_posts(15) + [
            post(f"b{i}", f"the #dpfdelete is great, take {i}", author="botnet")
            for i in range(15)
        ]
        report = PostAuthenticityFilter().filter(posts)
        concentrated = report.rejected_by(RejectionReason.AUTHOR_CONCENTRATION)
        assert concentrated
        assert all(r.post.author == "botnet" for r in concentrated)

    def test_rule_inactive_below_minimum_sample(self):
        posts = [
            post(f"b{i}", f"unique text number {i} about #x", author="same")
            for i in range(5)
        ]
        report = PostAuthenticityFilter().filter(posts)
        assert not report.rejected_by(RejectionReason.AUTHOR_CONCENTRATION)


class TestEngagementRule:
    def test_bought_engagement_rejected(self):
        posts = organic_posts(30) + [
            post("whale", "my #dpfdelete story went viral somehow",
                 author="suspect", views=10_000_000)
        ]
        report = PostAuthenticityFilter().filter(posts)
        anomalies = report.rejected_by(RejectionReason.ENGAGEMENT_ANOMALY)
        assert [r.post.post_id for r in anomalies] == ["whale"]

    def test_rule_inactive_below_minimum_sample(self):
        posts = [post("p1", "a #x post", views=100),
                 post("p2", "another #x post", views=1_000_000)]
        report = PostAuthenticityFilter().filter(posts)
        assert not report.rejected_by(RejectionReason.ENGAGEMENT_ANOMALY)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_duplicate_share=0.0),
            dict(max_author_share=1.5),
            dict(engagement_sigma=0),
            dict(min_posts_for_author_rule=0),
            dict(min_posts_for_engagement_rule=1),
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FilterConfig(**kwargs)


class TestFilteringClient:
    def _poisoned_client(self):
        posts = poison_corpus_with_flood(
            organic_posts(20), keyword="dpfdelete", copies=40
        )
        return FilteringClient(InMemoryClient(Corpus(posts)))

    def test_search_drops_poison(self):
        client = self._poisoned_client()
        results = client.search(SearchQuery(keyword="dpfdelete"))
        assert not any(p.post_id.startswith("poison") for p in results)

    def test_report_recorded_per_keyword(self):
        client = self._poisoned_client()
        client.search(SearchQuery(keyword="dpfdelete"))
        report = client.reports["dpfdelete"]
        assert report.rejection_rate > 0.4

    def test_count_by_year_uses_filtered_set(self):
        client = self._poisoned_client()
        raw = InMemoryClient(
            Corpus(
                poison_corpus_with_flood(
                    organic_posts(20), keyword="dpfdelete", copies=40
                )
            )
        )
        filtered_count = client.count(SearchQuery(keyword="dpfdelete"))
        raw_count = raw.count(SearchQuery(keyword="dpfdelete"))
        assert filtered_count < raw_count


class TestEndToEndPoisoningDefence:
    def test_sai_poisoning_absorbed(self):
        """A flood campaign must not flip the SAI ranking when filtering is on."""
        organic = organic_posts(40, keyword="dpfdelete") + [
            post(f"e{i:03d}", f"my #egrdelete went fine ({i})",
                 author=f"egru{i}", views=800)
            for i in range(15)
        ]
        poisoned = poison_corpus_with_flood(
            organic, keyword="egrdelete", copies=120, views=80000
        )
        db = KeywordDatabase(
            [
                AttackKeyword(keyword="dpfdelete", owner_approved=True),
                AttackKeyword(keyword="egrdelete", owner_approved=True),
            ]
        )
        unfiltered = SAIComputer(InMemoryClient(Corpus(poisoned))).compute(db)
        filtered = SAIComputer(
            FilteringClient(InMemoryClient(Corpus(poisoned)))
        ).compute(db)
        # Without the filter the campaign flips the ranking...
        assert unfiltered.ranking()[0] == "egrdelete"
        # ...with the filter the organic ranking survives.
        assert filtered.ranking()[0] == "dpfdelete"


class TestPoisonHelper:
    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError):
            poison_corpus_with_flood([], keyword="x", copies=1)

    def test_rejects_negative_copies(self):
        with pytest.raises(ValueError):
            poison_corpus_with_flood(organic_posts(2), keyword="x", copies=-1)

    def test_adds_exact_copies(self):
        poisoned = poison_corpus_with_flood(
            organic_posts(5), keyword="x", copies=7
        )
        assert len(poisoned) == 12
