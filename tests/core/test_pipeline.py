"""Pipeline stages, composition, and fleet execution."""

import pytest

from repro import PSPConfig, PSPFramework, TargetApplication, TimeWindow
from repro.core.errors import PSPError
from repro.core.pipeline import (
    FinancialStage,
    LearnStage,
    PipelineContext,
    PipelineStage,
    PSPPipeline,
    QueryStage,
    SAIStage,
    SplitStage,
    TuneStage,
    run_fleet,
)
from repro.social import InMemoryClient, excavator_corpus
from tests.conftest import build_excavator_database

TARGET = TargetApplication("excavator", "europe", "industrial")


def make_context(client, window=None, database=None):
    return PipelineContext(
        client=client,
        target=TARGET,
        database=database or build_excavator_database(),
        config=PSPConfig(),
        window=window or TimeWindow.full_history(),
    )


class TestStages:
    def test_default_pipeline_order(self):
        assert PSPPipeline.default().stage_names == (
            "learn", "query", "sai", "split", "tune"
        )
        assert PSPPipeline.default(learn=False).stage_names == (
            "query", "sai", "split", "tune"
        )

    def test_full_run_fills_every_slot(self, excavator_client):
        context = make_context(excavator_client)
        PSPPipeline.default().run(context)
        assert context.batch is not None
        assert context.sai is not None and len(context.sai) > 0
        assert context.split is not None
        assert context.tuning is not None

    def test_matches_framework_run(self, excavator_client, excavator_framework):
        context = make_context(excavator_client)
        PSPPipeline.default(learn=False).run(context)
        result = excavator_framework.run(learn=False)
        assert context.sai.as_rows() == result.sai.as_rows()
        assert (
            context.tuning.insider_table.as_rows()
            == result.insider_table.as_rows()
        )

    def test_sai_stage_requires_query(self, excavator_client):
        context = make_context(excavator_client)
        with pytest.raises(PSPError, match="query"):
            SAIStage().run(context)

    def test_tune_stage_requires_split(self, excavator_client):
        context = make_context(excavator_client)
        with pytest.raises(PSPError, match="split"):
            TuneStage().run(context)

    def test_learn_stage_mutates_database(self, excavator_client):
        from repro.core.keywords import paper_seed_database

        database = paper_seed_database()
        context = make_context(excavator_client, database=database)
        size_before = len(database)
        version_before = database.version
        LearnStage().run(context)
        assert context.learned
        assert len(database) == size_before + len(context.learned)
        assert database.version > version_before

    def test_financial_stage_collects_assessments(self, excavator_framework):
        context = make_context(excavator_framework.client)
        pipeline = PSPPipeline.default(learn=False).followed_by(
            FinancialStage(excavator_framework.assess_financial, top=3)
        )
        pipeline.run(context)
        assert "dpfdelete" in context.financial
        assessment = context.financial["dpfdelete"]
        assert assessment.pae > 0

    def test_financial_stage_skips_unpriced_keywords(self, excavator_framework):
        # top=99 covers every insider keyword; the ones without market
        # data are skipped, not fatal.
        context = make_context(excavator_framework.client)
        pipeline = PSPPipeline.default(learn=False).followed_by(
            FinancialStage(excavator_framework.assess_financial, top=99)
        )
        pipeline.run(context)
        assert 1 <= len(context.financial) < len(context.sai)


class TestComposition:
    def test_without_removes_stage(self, excavator_client):
        pipeline = PSPPipeline.default().without("learn")
        assert "learn" not in pipeline.stage_names
        context = make_context(excavator_client)
        pipeline.run(context)
        assert context.learned == ()

    def test_without_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            PSPPipeline.default().without("nonsense")

    def test_replacing_swaps_stage(self, excavator_client):
        class UpperBoundSplit(SplitStage):
            """Everything insider: the most conservative split."""

            def run(self, context):
                super().run(context)
                sai = context.sai
                from repro.core.classification import (
                    ClassifiedEntry,
                    InsiderOutsiderSplit,
                )
                context.split = InsiderOutsiderSplit(
                    insider=tuple(
                        ClassifiedEntry(
                            entry=e,
                            insider=True,
                            from_annotation=False,
                            insider_votes=0,
                            outsider_votes=0,
                        )
                        for e in sai
                    ),
                    outsider=(),
                )

        pipeline = PSPPipeline.default(learn=False).replacing(UpperBoundSplit())
        context = make_context(excavator_client)
        pipeline.run(context)
        assert len(context.split.insider) == len(context.sai)
        assert not context.split.outsider

    def test_replacing_unknown_stage_raises(self):
        class Oddball(PipelineStage):
            name = "oddball"

            def run(self, context):
                pass

        with pytest.raises(KeyError):
            PSPPipeline.default().replacing(Oddball())

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            PSPPipeline([QueryStage(), QueryStage()])

    def test_stage_lookup(self):
        pipeline = PSPPipeline.default()
        assert pipeline.stage("tune").name == "tune"
        with pytest.raises(KeyError):
            pipeline.stage("missing")


class TestFleet:
    FLEET = (
        TargetApplication("excavator", "europe", "industrial"),
        TargetApplication("agricultural_tractor", "europe", "industrial"),
        TargetApplication("light_truck", "europe", "commercial"),
    )

    def test_one_query_pass_per_region(self, excavator_client):
        fleet = run_fleet(
            excavator_client,
            self.FLEET,
            database=build_excavator_database(),
        )
        assert len(fleet) == 3
        assert fleet.query_passes == 1

    def test_members_share_corpus_results(self, excavator_client):
        fleet = run_fleet(
            excavator_client,
            self.FLEET,
            database=build_excavator_database(),
        )
        rows = {m.sai.as_rows() for m in fleet}
        # Same region + same database => identical social evidence.
        assert len(rows) == 1

    def test_member_matches_single_target_run(self, excavator_client):
        fleet = run_fleet(
            excavator_client,
            self.FLEET,
            database=build_excavator_database(),
        )
        single = PSPFramework(
            excavator_client,
            self.FLEET[0],
            database=build_excavator_database(),
        ).run(learn=False)
        member = fleet.member(self.FLEET[0])
        assert member.sai.as_rows() == single.sai.as_rows()
        assert (
            member.insider_table.as_rows() == single.insider_table.as_rows()
        )

    def test_distinct_regions_get_distinct_passes(self, excavator_client):
        fleet = run_fleet(
            excavator_client,
            (
                TargetApplication("excavator", "europe", "industrial"),
                TargetApplication("excavator", "north_america", "industrial"),
            ),
            database=build_excavator_database(),
        )
        assert fleet.query_passes == 2

    def test_unknown_member_lookup_raises(self, excavator_client):
        fleet = run_fleet(
            excavator_client,
            self.FLEET[:1],
            database=build_excavator_database(),
        )
        with pytest.raises(KeyError):
            fleet.member(TargetApplication("submarine", "europe", "naval"))

    def test_rejects_empty_and_duplicate_fleets(self, excavator_client):
        with pytest.raises(ValueError):
            run_fleet(
                excavator_client, (), database=build_excavator_database()
            )
        with pytest.raises(ValueError):
            run_fleet(
                excavator_client,
                (self.FLEET[0], self.FLEET[0]),
                database=build_excavator_database(),
            )

    def test_framework_run_fleet_delegates(self, excavator_framework):
        fleet = excavator_framework.run_fleet(self.FLEET)
        assert len(fleet) == 3
        assert fleet.query_passes == 1

    def test_fleet_taras_share_static_baseline(
        self, excavator_client, fig4_network
    ):
        from repro.tara import fleet_taras

        fleet = run_fleet(
            excavator_client,
            self.FLEET,
            database=build_excavator_database(),
        )
        report = fleet_taras(fig4_network, fleet)
        assert set(report.targets()) == {t.describe() for t in self.FLEET}
        disagreements = report.disagreements(fig4_network)
        # The PSP-tuned insider tables disagree with the static baseline
        # (the paper's core claim), for every fleet member.
        assert all(len(d) > 0 for d in disagreements.values())


class TestParallelFleet:
    FLEET = (
        TargetApplication("excavator", "europe", "industrial"),
        TargetApplication("agricultural_tractor", "europe", "industrial"),
        TargetApplication("light_truck", "europe", "commercial"),
        TargetApplication("excavator", "north_america", "industrial"),
    )

    def _fleet(self, client, **kwargs):
        return run_fleet(
            client,
            self.FLEET,
            database=build_excavator_database(),
            **kwargs,
        )

    def test_workers_produce_member_identical_results(self, excavator_client):
        serial = self._fleet(excavator_client)
        threaded = self._fleet(excavator_client, workers=3)
        for target in self.FLEET:
            left = serial.member(target)
            right = threaded.member(target)
            assert left.sai.as_rows() == right.sai.as_rows()
            assert (
                left.insider_table.as_rows()
                == right.insider_table.as_rows()
            )
        assert threaded.query_passes == serial.query_passes

    def test_explicit_executor_wins_and_is_not_closed(self, excavator_client):
        from repro.core.executor import ThreadExecutor

        executor = ThreadExecutor(2)
        fleet = self._fleet(excavator_client, executor=executor)
        assert len(fleet) == len(self.FLEET)
        # The caller owns an explicitly passed executor: still usable.
        assert executor.map(len, [[1, 2]]) == [2]
        executor.close()

    def test_member_order_preserved_under_workers(self, excavator_client):
        fleet = self._fleet(excavator_client, workers=2)
        assert [m.target for m in fleet] == list(self.FLEET)

    def test_framework_passes_workers_through(self, excavator_framework):
        serial = excavator_framework.run_fleet(self.FLEET[:3])
        parallel = excavator_framework.run_fleet(self.FLEET[:3], workers=2)
        for target in self.FLEET[:3]:
            assert (
                serial.member(target).insider_table.as_rows()
                == parallel.member(target).insider_table.as_rows()
            )

    def test_process_executor_rejected(self, excavator_client):
        from repro.core.executor import ProcessExecutor

        executor = ProcessExecutor(2)
        try:
            with pytest.raises(ValueError, match="thread"):
                self._fleet(excavator_client, executor=executor)
        finally:
            executor.close()
