"""Tests for the attack-keyword database and auto-learning."""

import pytest

from repro.core.errors import KeywordError
from repro.core.keywords import (
    AttackKeyword,
    KeywordDatabase,
    KeywordSource,
    paper_seed_database,
)
from repro.iso21434.enums import AttackVector


class TestAttackKeyword:
    def test_canonicalised_on_construction(self):
        entry = AttackKeyword(keyword="#DPF_Delete")
        assert entry.keyword == "dpfdelete"

    def test_empty_fold_rejected(self):
        with pytest.raises(KeywordError):
            AttackKeyword(keyword="###")

    def test_annotated_copy(self):
        entry = AttackKeyword(keyword="dpfdelete")
        annotated = entry.annotated(
            vector=AttackVector.PHYSICAL, owner_approved=True
        )
        assert annotated.vector is AttackVector.PHYSICAL
        assert annotated.owner_approved is True
        assert entry.vector is None  # original untouched

    def test_annotated_preserves_existing(self):
        entry = AttackKeyword(keyword="x", vector=AttackVector.LOCAL)
        assert entry.annotated(owner_approved=True).vector is AttackVector.LOCAL


class TestDatabase:
    def test_add_get_contains(self):
        db = KeywordDatabase()
        db.add(AttackKeyword(keyword="dpfdelete"))
        assert "dpfdelete" in db
        assert "#DPF-delete" in db  # folded lookup
        assert db.get("DPF delete").keyword == "dpfdelete"

    def test_duplicate_rejected(self):
        db = KeywordDatabase()
        db.add(AttackKeyword(keyword="dpfdelete"))
        with pytest.raises(KeywordError, match="already present"):
            db.add(AttackKeyword(keyword="#dpfdelete"))

    def test_unknown_lookup(self):
        with pytest.raises(KeywordError, match="unknown"):
            KeywordDatabase().get("nope")

    def test_annotate_in_place(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        db.annotate("dpfdelete", vector=AttackVector.PHYSICAL)
        assert db.get("dpfdelete").vector is AttackVector.PHYSICAL

    def test_annotated_entries_filter(self):
        db = KeywordDatabase(
            [
                AttackKeyword(keyword="a", vector=AttackVector.LOCAL),
                AttackKeyword(keyword="b"),
            ]
        )
        assert [e.keyword for e in db.annotated_entries()] == ["a"]


class TestLearning:
    TEXTS = [
        "did my #dpfdelete with #stage1 kit",
        "#dpfdelete plus #stage1 is the combo",
        "#dpfdelete and a #dynorun after",
        "only #unrelated here",
    ]

    def test_learns_cooccurring_tags(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        added = db.learn_from_texts(self.TEXTS)
        keywords = {e.keyword for e in added}
        assert "stage1" in keywords
        assert all(e.source is KeywordSource.LEARNED for e in added)

    def test_learned_entries_query(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        db.learn_from_texts(self.TEXTS)
        assert db.learned_entries()

    def test_learned_have_no_vector(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        added = db.learn_from_texts(self.TEXTS)
        assert all(e.vector is None for e in added)

    def test_max_new_caps(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        added = db.learn_from_texts(self.TEXTS, max_new=1)
        assert len(added) == 1

    def test_min_support_filters(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        added = db.learn_from_texts(self.TEXTS, min_support=0.6)
        keywords = {e.keyword for e in added}
        assert "stage1" in keywords       # 2/3 support
        assert "dynorun" not in keywords  # 1/3 support

    def test_unmatched_tags_not_learned(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        added = db.learn_from_texts(self.TEXTS)
        assert "unrelated" not in {e.keyword for e in added}

    def test_idempotent_learning(self):
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        first = db.learn_from_texts(self.TEXTS)
        second = db.learn_from_texts(self.TEXTS)
        assert first
        assert not second  # nothing new the second time


class TestPaperSeed:
    def test_six_seed_keywords(self):
        db = paper_seed_database()
        assert len(db) == 6
        assert "dpfdelete" in db
        assert "chiptuning" in db

    def test_all_annotated_insider(self):
        db = paper_seed_database()
        for entry in db:
            assert entry.vector is not None
            assert entry.owner_approved is True
            assert entry.source is KeywordSource.MANUAL

    def test_chiptuning_is_local(self):
        assert paper_seed_database().get("chiptuning").vector is AttackVector.LOCAL
