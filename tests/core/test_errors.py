"""Tests for the PSP exception hierarchy."""

import pytest

from repro.core.errors import (
    DataUnavailableError,
    KeywordError,
    ModelInputError,
    PSPError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass", [KeywordError, DataUnavailableError, ModelInputError]
    )
    def test_all_derive_from_psp_error(self, subclass):
        assert issubclass(subclass, PSPError)

    def test_catchable_as_psp_error(self):
        with pytest.raises(PSPError):
            raise DataUnavailableError("no sales record")

    def test_distinct_classes(self):
        # A keyword problem must not be swallowed by a data-availability
        # handler and vice versa.
        assert not issubclass(KeywordError, DataUnavailableError)
        assert not issubclass(DataUnavailableError, KeywordError)
