"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sai", "--scenario", "submarine"])


class TestSai:
    def test_excavator_ranking(self, capsys):
        assert main(["sai", "--scenario", "excavator"]) == 0
        out = capsys.readouterr().out
        assert "dpfdelete" in out
        assert "SAI" in out

    def test_top_limits(self, capsys):
        main(["sai", "--scenario", "excavator", "--top", "1"])
        out = capsys.readouterr().out
        assert "dpfdelete" in out
        assert "hourmeterrollback" not in out

    def test_since_year(self, capsys):
        assert main(["sai", "--scenario", "ecm", "--since-year", "2022"]) == 0
        assert "obdtuning" in capsys.readouterr().out


class TestTune:
    def test_prints_both_tables(self, capsys):
        assert main(["tune", "--scenario", "ecm"]) == 0
        out = capsys.readouterr().out
        assert "Outsider weight table" in out
        assert "Insider weight table (PSP)" in out


class TestCompare:
    def test_fig9_output(self, capsys):
        assert main(["compare", "--scenario", "ecm", "--split-year", "2022"]) == 0
        out = capsys.readouterr().out
        assert "Original G.9 table" in out
        assert "full history" in out
        assert "since 2022" in out
        assert "Trend inversion" in out


class TestFinancial:
    def test_paper_values(self, capsys):
        code = main(
            ["financial", "--scenario", "excavator", "--keyword", "dpfdelete"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "506,160" in out
        assert "1,406" in out

    def test_unknown_keyword_fails_cleanly(self, capsys):
        code = main(
            ["financial", "--scenario", "excavator", "--keyword", "submarine"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTara:
    def test_static_run(self, capsys):
        assert main(["tara"]) == 0
        assert "TARA" in capsys.readouterr().out

    def test_psp_run_reports_disagreements(self, capsys):
        assert main(["tara", "--psp"]) == 0
        out = capsys.readouterr().out
        assert "rated differently" in out


class TestFleet:
    def test_default_fleet_runs(self, capsys):
        assert main(["fleet"]) == 0
        out = capsys.readouterr().out
        assert "Fleet assessment — 3 targets" in out
        assert "1 platform query pass" in out
        assert "excavator / fleet / europe" in out
        assert "query cache:" in out

    def test_custom_applications(self, capsys):
        code = main(
            ["fleet", "--scenario", "excavator",
             "--applications", "excavator,light_truck"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 targets" in out
        assert "light_truck / fleet / europe" in out

    def test_empty_applications_fails_cleanly(self, capsys):
        assert main(["fleet", "--applications", " , "]) == 2
        assert "error:" in capsys.readouterr().err


class TestScenarios:
    def test_lists_the_whole_fleet(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) >= 8
        for name in ("ecm", "excavator", "tractor", "marine", "slangecm"):
            assert any(line.startswith(f"{name}:") for line in lines)
        assert "poisoning burst" in out
        assert "outage" in out

    def test_new_scenarios_work_in_legacy_subcommands(self, capsys):
        assert main(["sai", "--scenario", "tractor"]) == 0
        out = capsys.readouterr().out
        assert "agritune" in out
        assert main(["tune", "--scenario", "motorcycle"]) == 0
        assert "Insider weight table (PSP)" in capsys.readouterr().out


class TestReplay:
    def test_smoke_replay_passes(self, capsys):
        code = main(
            ["replay", "--scenario", "ecm", "--months", "2", "--smoke"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replay ecm: 2 boundaries" in out
        assert "verdict: PASS" in out

    def test_smoke_defaults_to_two_months(self, capsys):
        assert main(["replay", "--scenario", "tractor", "--smoke"]) == 0
        assert "2 boundaries" in capsys.readouterr().out

    def test_full_replay_includes_poison_defence(self, capsys):
        code = main(
            ["replay", "--scenario", "marine", "--shards", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "poison defence marine" in out
        assert "20/20 injected posts rejected" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--scenario", "submarine"])


class TestStream:
    def test_stream_replay_runs(self, capsys):
        assert main(["stream", "--scenario", "ecm", "--batch-size", "400",
                     "--start-year", "2015"]) == 0
        out = capsys.readouterr().out
        assert "streaming ecm" in out
        assert "tick 1:" in out
        assert "retunes" in out
        assert "index segments" in out

    def test_stream_with_tara_and_filter(self, capsys):
        assert main(["stream", "--scenario", "ecm", "--batch-size", "500",
                     "--start-year", "2015", "--tara", "--filter"]) == 0
        out = capsys.readouterr().out
        assert "TARA rescores" in out
        assert "ALERT" in out

    def test_invalid_batch_size_fails_cleanly(self, capsys):
        assert main(["stream", "--batch-size", "0"]) == 2
        assert "error:" in capsys.readouterr().err
