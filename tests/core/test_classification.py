"""Tests for insider/outsider classification."""

import datetime as dt

import pytest

from repro.core.classification import (
    InsiderOutsiderClassifier,
    InsiderOutsiderSplit,
)
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer, SAIEntry
from repro.iso21434.enums import AttackVector
from repro.social.api import InMemoryClient
from repro.social.corpus import Corpus
from repro.social.post import Engagement, Post


def entry(keyword, owner_approved=None, probability=0.5, posts=1) -> SAIEntry:
    return SAIEntry(
        keyword=keyword, vector=AttackVector.PHYSICAL,
        owner_approved=owner_approved, score=1.0, probability=probability,
        post_count=posts, engagement=Engagement(views=10), mean_sentiment=0.0,
    )


def post(pid, text) -> Post:
    return Post(
        post_id=pid, text=text, author="u", created_at=dt.date(2022, 1, 1),
        engagement=Engagement(views=10),
    )


class TestAnnotationPath:
    def test_annotation_wins(self):
        classifier = InsiderOutsiderClassifier()
        classified = classifier.classify_entry(entry("x", owner_approved=True))
        assert classified.insider
        assert classified.from_annotation

    def test_annotation_false_is_outsider(self):
        classifier = InsiderOutsiderClassifier()
        classified = classifier.classify_entry(entry("x", owner_approved=False))
        assert not classified.insider


class TestTextSignalPath:
    def test_owner_voice_classifies_insider(self):
        corpus = Corpus(
            [
                post("p1", "got my #mystery done, worth every cent #mystery"),
                post("p2", "my mechanic installed the #mystery kit"),
            ]
        )
        classifier = InsiderOutsiderClassifier(InMemoryClient(corpus))
        classified = classifier.classify_entry(entry("mystery", posts=2))
        assert classified.insider
        assert not classified.from_annotation
        assert classified.insider_votes > classified.outsider_votes

    def test_crime_voice_classifies_outsider(self):
        corpus = Corpus(
            [
                post("p1", "thieves used #mystery to steal a van, police alerted"),
                post("p2", "another theft with #mystery, gang arrested"),
            ]
        )
        classifier = InsiderOutsiderClassifier(InMemoryClient(corpus))
        classified = classifier.classify_entry(entry("mystery", posts=2))
        assert not classified.insider

    def test_no_evidence_defaults_outsider(self):
        classifier = InsiderOutsiderClassifier()
        classified = classifier.classify_entry(entry("mystery"))
        assert not classified.insider  # conservative default


class TestSplit:
    def _split(self, ecm_client) -> InsiderOutsiderSplit:
        db = KeywordDatabase(
            [
                AttackKeyword(keyword="ecmreprogramming",
                              vector=AttackVector.PHYSICAL, owner_approved=True),
                AttackKeyword(keyword="relayattack",
                              vector=AttackVector.ADJACENT, owner_approved=False),
            ]
        )
        sai = SAIComputer(ecm_client).compute(db)
        return InsiderOutsiderClassifier(ecm_client).split(sai)

    def test_partition(self, ecm_client):
        split = self._split(ecm_client)
        keywords = split.all_keywords()
        assert sorted(keywords) == ["ecmreprogramming", "relayattack"]
        assert len(split.insider) + len(split.outsider) == 2

    def test_classes_correct(self, ecm_client):
        split = self._split(ecm_client)
        assert [c.entry.keyword for c in split.insider] == ["ecmreprogramming"]
        assert [c.entry.keyword for c in split.outsider] == ["relayattack"]

    def test_probability_mass(self, ecm_client):
        split = self._split(ecm_client)
        total = split.insider_probability_mass + sum(
            e.probability for e in split.outsider_entries
        )
        assert total == pytest.approx(1.0)

    def test_unannotated_outsider_topic_split_by_text(self, ecm_client):
        # relayattack posts use crime voice; without annotation the text
        # classifier must still put it in the outsider class.
        db = KeywordDatabase([AttackKeyword(keyword="relayattack")])
        sai = SAIComputer(ecm_client).compute(db)
        split = InsiderOutsiderClassifier(ecm_client).split(sai)
        assert [c.entry.keyword for c in split.outsider] == ["relayattack"]

    def test_unannotated_insider_topic_split_by_text(self, ecm_client):
        db = KeywordDatabase([AttackKeyword(keyword="obdtuning")])
        sai = SAIComputer(ecm_client).compute(db)
        split = InsiderOutsiderClassifier(ecm_client).split(sai)
        assert [c.entry.keyword for c in split.insider] == ["obdtuning"]
