"""Tests for the financial attack-feasibility model (Eqs. 1-7)."""

import pytest

from repro.core.errors import ModelInputError
from repro.core.financial import (
    BreakEvenAnalysis,
    assess,
    break_even_point,
    financial_feasibility,
    fixed_cost,
    fixed_cost_from_bep,
    market_value,
    potential_attackers,
)
from repro.iso21434.enums import FeasibilityRating
from repro.market.sales import SalesRecord


def record(monopolistic=False, units=140600, share=0.35) -> SalesRecord:
    return SalesRecord(
        application="excavator", region="europe", year=2022,
        units_sold=units, market_share=share, monopolistic=monopolistic,
    )


class TestEq2PotentialAttackers:
    def test_paper_value(self):
        # 140,600 units x 1% = 1,406 (the paper's PAE).
        assert potential_attackers(record(), 0.01) == 1406

    def test_monopolistic_uses_vs(self):
        assert potential_attackers(record(monopolistic=True), 0.01) == 1406

    def test_non_monopolistic_uses_company_share_of_market(self):
        # share x market_units == units_sold, per the MS-in-units reading.
        assert potential_attackers(record(monopolistic=False), 0.01) == 1406

    def test_rate_validated(self):
        with pytest.raises(ModelInputError):
            potential_attackers(record(), 0.0)
        with pytest.raises(ModelInputError):
            potential_attackers(record(), 1.5)

    def test_rounding(self):
        assert potential_attackers(record(units=150, share=1.0), 0.01) == 2


class TestEq1MarketValue:
    def test_paper_eq6(self):
        assert market_value(1406, 360.0) == pytest.approx(506160.0)

    def test_validation(self):
        with pytest.raises(ModelInputError):
            market_value(-1, 360.0)
        with pytest.raises(ModelInputError):
            market_value(1, -360.0)


class TestEq4FixedCost:
    def test_formula(self):
        assert fixed_cost(1200.0, 90.0, 15000.0) == pytest.approx(123000.0)

    def test_validation(self):
        with pytest.raises(ModelInputError):
            fixed_cost(-1, 90, 0)


class TestEq3BreakEven:
    def test_formula(self):
        # FC=3100, margin=310, n=1 -> 10 units
        assert break_even_point(3100.0, 360.0, 50.0) == pytest.approx(10.0)

    def test_competitors_scale_bep(self):
        single = break_even_point(3100.0, 360.0, 50.0, n=1)
        triple = break_even_point(3100.0, 360.0, 50.0, n=3)
        assert triple == pytest.approx(3 * single)

    def test_margin_must_be_positive(self):
        with pytest.raises(ModelInputError, match="exceed"):
            break_even_point(100.0, 50.0, 50.0)

    def test_n_validated(self):
        with pytest.raises(ModelInputError):
            break_even_point(100.0, 360.0, 50.0, n=0)


class TestEq5Inverse:
    def test_paper_eq7(self):
        # FC = 1,406 x 310 / 3 ≈ 145,286.67 EUR
        fc = fixed_cost_from_bep(1406, 360.0, 50.0, n=3)
        assert fc == pytest.approx(145286.67, abs=0.01)

    def test_inverse_of_eq3(self):
        fc = 123456.0
        bep = break_even_point(fc, 360.0, 50.0, n=3)
        assert fixed_cost_from_bep(bep, 360.0, 50.0, n=3) == pytest.approx(fc)

    def test_validation(self):
        with pytest.raises(ModelInputError):
            fixed_cost_from_bep(-1, 360.0, 50.0)
        with pytest.raises(ModelInputError):
            fixed_cost_from_bep(10, 50.0, 50.0)


class TestBreakEvenAnalysis:
    def test_crossover_at_bep(self):
        analysis = BreakEvenAnalysis(fc=145286.67, ppia=360.0, vcu=50.0, n=3)
        bep = analysis.break_even
        assert analysis.profit(bep) == pytest.approx(0.0, abs=1e-6)
        assert not analysis.is_profitable(bep * 0.9)
        assert analysis.is_profitable(bep * 1.1)

    def test_revenue_and_cost_linear(self):
        analysis = BreakEvenAnalysis(fc=1000.0, ppia=100.0, vcu=20.0, n=1)
        assert analysis.revenue(10) == pytest.approx(1000.0)
        assert analysis.cost(10) == pytest.approx(1200.0)

    def test_curve_samples(self):
        analysis = BreakEvenAnalysis(fc=1000.0, ppia=100.0, vcu=20.0)
        curve = analysis.curve(100.0, points=5)
        assert len(curve) == 5
        assert curve[0][0] == 0.0
        assert curve[-1][0] == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ModelInputError):
            BreakEvenAnalysis(fc=1.0, ppia=10.0, vcu=10.0)
        with pytest.raises(ModelInputError):
            BreakEvenAnalysis(fc=1.0, ppia=10.0, vcu=5.0).revenue(-1)


class TestFeasibilityIndex:
    @pytest.mark.parametrize(
        "mv,fc,expected",
        [
            (300.0, 100.0, FeasibilityRating.HIGH),
            (200.0, 100.0, FeasibilityRating.MEDIUM),
            (120.0, 100.0, FeasibilityRating.LOW),
            (90.0, 100.0, FeasibilityRating.VERY_LOW),
            (100.0, 0.0, FeasibilityRating.HIGH),
            (0.0, 100.0, FeasibilityRating.VERY_LOW),
        ],
    )
    def test_ratio_bands(self, mv, fc, expected):
        assert financial_feasibility(mv, fc) is expected

    def test_validation(self):
        with pytest.raises(ModelInputError):
            financial_feasibility(-1.0, 1.0)


class TestAssess:
    def test_paper_dpf_assessment(self):
        assessment = assess(
            "dpfdelete", pae=1406, ppia=360.0, vcu=50.0, competitors=3
        )
        assert assessment.mv == pytest.approx(506160.0)
        assert assessment.fc_required == pytest.approx(145286.67, abs=0.01)
        assert assessment.feasibility is FeasibilityRating.HIGH
        assert assessment.margin == pytest.approx(310.0)

    def test_describe_mentions_keyword_and_values(self):
        assessment = assess("dpfdelete", pae=1406, ppia=360.0, vcu=50.0,
                            competitors=3)
        text = assessment.describe()
        assert "dpfdelete" in text
        assert "506,160" in text

    def test_analysis_round_trip(self):
        assessment = assess("x", pae=1000, ppia=100.0, vcu=20.0, competitors=2)
        analysis = assessment.analysis()
        assert analysis.break_even == pytest.approx(1000.0)
