"""Tests for the combined social + financial feasibility integration."""

import pytest

from repro.core.financial import assess
from repro.core.integration import (
    CombinationMode,
    combined_feasibility,
    required_security_budget,
)
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import standard_table


def tuned_table(physical=FeasibilityRating.HIGH):
    return standard_table().with_rating(
        AttackVector.PHYSICAL, physical, source="psp"
    )


def lucrative():
    # MV/FC ~ 3.48 -> financial High
    return assess("dpfdelete", pae=1406, ppia=360.0, vcu=50.0, competitors=3)


def marginal():
    # mv=100, fc_required=90 -> MV/FC ~ 1.11 -> financial Low
    return assess("nichehack", pae=1, ppia=100.0, vcu=10.0, competitors=1)


class TestEitherMode:
    def test_social_driver_wins(self):
        combined = combined_feasibility(
            "nichehack", AttackVector.PHYSICAL, tuned_table(), marginal()
        )
        assert combined.combined is FeasibilityRating.HIGH
        assert combined.driver == "social"

    def test_financial_driver_wins(self):
        table = tuned_table(physical=FeasibilityRating.VERY_LOW)
        combined = combined_feasibility(
            "dpfdelete", AttackVector.PHYSICAL, table, lucrative()
        )
        assert combined.combined is FeasibilityRating.HIGH
        assert combined.driver == "financial"

    def test_agreement_reported_as_both(self):
        combined = combined_feasibility(
            "dpfdelete", AttackVector.PHYSICAL, tuned_table(), lucrative()
        )
        assert combined.driver == "both"


class TestBothMode:
    def test_conservative_takes_minimum(self):
        combined = combined_feasibility(
            "nichehack",
            AttackVector.PHYSICAL,
            tuned_table(),
            marginal(),
            mode=CombinationMode.BOTH,
        )
        assert combined.combined is marginal().feasibility
        assert combined.combined < FeasibilityRating.HIGH

    def test_both_never_exceeds_either(self):
        either = combined_feasibility(
            "nichehack", AttackVector.PHYSICAL, tuned_table(), marginal()
        )
        both = combined_feasibility(
            "nichehack",
            AttackVector.PHYSICAL,
            tuned_table(),
            marginal(),
            mode=CombinationMode.BOTH,
        )
        assert both.combined <= either.combined


class TestDescribe:
    def test_mentions_everything(self):
        combined = combined_feasibility(
            "dpfdelete", AttackVector.PHYSICAL, tuned_table(), lucrative()
        )
        text = combined.describe()
        assert "dpfdelete" in text
        assert "physical" in text
        assert "High" in text


class TestSecurityBudget:
    def test_paper_dpf_budget(self):
        budget = required_security_budget(lucrative())
        assert budget == pytest.approx(145286.67, abs=0.01)

    def test_safety_factor_scales(self):
        budget = required_security_budget(lucrative(), safety_factor=2.0)
        assert budget == pytest.approx(2 * 145286.67, abs=0.01)

    def test_safety_factor_validated(self):
        with pytest.raises(ValueError):
            required_security_budget(lucrative(), safety_factor=0.0)
