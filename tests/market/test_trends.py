"""Tests for sales-trend fitting and projection."""

import pytest

from repro.market.sales import default_sales_database
from repro.market.trends import (
    fit_trend,
    projected_attackers,
    sales_trend,
)


class TestFitTrend:
    def test_perfect_line_recovered(self):
        series = [(2019, 100), (2020, 110), (2021, 120), (2022, 130)]
        trend = fit_trend(series)
        assert trend.slope == pytest.approx(10.0)
        assert trend.predict(2023) == pytest.approx(140.0)

    def test_direction_labels(self):
        growing = fit_trend([(2020, 100), (2021, 200)])
        shrinking = fit_trend([(2020, 200), (2021, 100)])
        flat = fit_trend([(2020, 100), (2021, 100)])
        assert growing.direction == "growing"
        assert shrinking.direction == "shrinking"
        assert flat.direction == "flat"

    def test_prediction_clamped_at_zero(self):
        trend = fit_trend([(2020, 100), (2021, 10)])
        assert trend.predict(2030) == 0.0

    def test_residuals_sum_to_zero(self):
        series = [(2019, 100), (2020, 140), (2021, 120), (2022, 180)]
        trend = fit_trend(series)
        assert sum(trend.residuals()) == pytest.approx(0.0, abs=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match=">= 2"):
            fit_trend([(2020, 100)])

    def test_single_year_rejected(self):
        with pytest.raises(ValueError, match="one year"):
            fit_trend([(2020, 100), (2020, 120)])


class TestSalesTrend:
    def test_excavator_europe_growing(self):
        trend = sales_trend(default_sales_database(), "excavator", "europe")
        assert trend.direction == "growing"

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError, match="no sales records"):
            sales_trend(default_sales_database(), "submarine", "europe")


class TestProjectedAttackers:
    def test_projection_exceeds_snapshot_for_growing_market(self):
        db = default_sales_database()
        projected = projected_attackers(
            db, "excavator", "europe", year=2024, attacker_rate=0.01
        )
        snapshot = int(round(db.lookup("excavator", "europe").units_sold * 0.01))
        assert projected > snapshot

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            projected_attackers(
                default_sales_database(), "excavator", "europe",
                year=2024, attacker_rate=0.0,
            )
