"""Tests for the synthetic annual-report library."""

import pytest

from repro.iso21434.enums import AttackVector
from repro.market.reports import (
    AnnualReport,
    IncidentStats,
    ReportLibrary,
    default_report_library,
)
from repro.nlp.textmining import find_count


class TestIncidentStats:
    def test_total_and_share(self):
        stats = IncidentStats(
            year=2022,
            counts={AttackVector.PHYSICAL: 30, AttackVector.LOCAL: 70},
        )
        assert stats.total == 100
        assert stats.share(AttackVector.LOCAL) == pytest.approx(0.7)
        assert stats.share(AttackVector.NETWORK) == 0.0

    def test_empty_year_share_zero(self):
        stats = IncidentStats(year=2022, counts={})
        assert stats.share(AttackVector.LOCAL) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            IncidentStats(year=2022, counts={AttackVector.LOCAL: -1})


class TestAnnualReport:
    def test_attacker_rate_validated(self):
        with pytest.raises(ValueError):
            AnnualReport(
                year=2023, application="x", region="europe",
                prose="p", attacker_rate=1.5,
            )

    def test_incidents_for(self):
        report = default_report_library().latest("excavator", "europe")
        assert report.incidents_for(2022) is not None
        assert report.incidents_for(1999) is None


class TestLibrary:
    def test_latest_picks_newest(self):
        older = AnnualReport(
            year=2021, application="excavator", region="europe", prose="old"
        )
        newer = AnnualReport(
            year=2023, application="excavator", region="europe", prose="new"
        )
        library = ReportLibrary([older, newer])
        assert library.latest("excavator", "europe").year == 2023

    def test_latest_unknown_is_none(self):
        assert default_report_library().latest("submarine", "europe") is None

    def test_prose_corpus_newest_first(self):
        older = AnnualReport(
            year=2021, application="excavator", region="europe", prose="old"
        )
        newer = AnnualReport(
            year=2023, application="excavator", region="europe", prose="new"
        )
        library = ReportLibrary([older, newer])
        assert library.prose_corpus("excavator", "europe") == ["new", "old"]


class TestDefaultLibrary:
    def test_paper_quantities_minable(self):
        report = default_report_library().latest("excavator", "europe")
        assert find_count([report.prose], "potential attackers") == 1406
        assert find_count([report.prose], "competing sellers") == 3

    def test_attacker_rate_one_percent(self):
        report = default_report_library().latest("excavator", "europe")
        assert report.attacker_rate == pytest.approx(0.01)

    def test_trend_inversion_encoded(self):
        # physical share falls below local share between 2020 and 2022.
        report = default_report_library().latest("excavator", "europe")
        first = report.incidents_for(2020)
        last = report.incidents_for(2022)
        assert first.share(AttackVector.PHYSICAL) > first.share(AttackVector.LOCAL)
        assert last.share(AttackVector.LOCAL) > last.share(AttackVector.PHYSICAL)
