"""Tests for the sales database."""

import pytest

from repro.market.sales import SalesDatabase, SalesRecord, default_sales_database


def record(**overrides) -> SalesRecord:
    defaults = dict(
        application="excavator",
        region="europe",
        year=2022,
        units_sold=140600,
        market_share=0.35,
    )
    defaults.update(overrides)
    return SalesRecord(**defaults)


class TestSalesRecord:
    def test_rejects_negative_units(self):
        with pytest.raises(ValueError):
            record(units_sold=-1)

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError):
            record(market_share=1.5)

    def test_market_units(self):
        r = record(units_sold=100, market_share=0.25)
        assert r.market_units == pytest.approx(400)

    def test_market_units_zero_share(self):
        assert record(market_share=0.0).market_units == 0.0


class TestSalesDatabase:
    def test_lookup_latest_year(self):
        db = SalesDatabase([record(year=2020), record(year=2022)])
        assert db.lookup("excavator", "europe").year == 2022

    def test_lookup_specific_year(self):
        db = SalesDatabase([record(year=2020), record(year=2022)])
        assert db.lookup("excavator", "europe", 2020).year == 2020

    def test_lookup_missing_year(self):
        db = SalesDatabase([record(year=2022)])
        assert db.lookup("excavator", "europe", 1999) is None

    def test_lookup_case_insensitive(self):
        db = SalesDatabase([record()])
        assert db.lookup("Excavator", "EUROPE") is not None

    def test_lookup_unknown_application(self):
        assert SalesDatabase([record()]).lookup("submarine", "europe") is None

    def test_trend_sorted(self):
        db = SalesDatabase(
            [record(year=2022, units_sold=140600),
             record(year=2020, units_sold=112500)]
        )
        assert db.trend("excavator", "europe") == [
            (2020, 112500), (2022, 140600),
        ]

    def test_add_and_len(self):
        db = SalesDatabase()
        db.add(record())
        assert len(db) == 1


class TestDefaultDatabase:
    def test_paper_calibration_row(self):
        # 140,600 units x 1% attacker rate = the paper's PAE of 1,406.
        db = default_sales_database()
        latest = db.lookup("excavator", "europe")
        assert latest.units_sold == 140600
        assert not latest.monopolistic

    def test_monopolistic_market_present(self):
        db = default_sales_database()
        tractor = db.lookup("agricultural_tractor", "europe")
        assert tractor.monopolistic

    def test_multiple_regions(self):
        db = default_sales_database()
        assert db.lookup("excavator", "north_america") is not None
