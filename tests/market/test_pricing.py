"""Tests for the price catalogue and PPIA estimation."""

import pytest

from repro.market.pricing import (
    DEFAULT_VCU,
    PriceCatalog,
    PriceListing,
    default_price_catalog,
    variable_cost,
)


class TestPriceListing:
    def test_keyword_canonicalised(self):
        listing = PriceListing("l1", "#DPF_Delete", "kit", 360.0)
        assert listing.keyword == "dpfdelete"

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            PriceListing("l1", "dpfdelete", "kit", -5.0)


class TestCatalog:
    def test_prices_for_folds_keyword(self):
        catalog = default_price_catalog()
        assert catalog.prices_for("DPF delete") == catalog.prices_for("dpfdelete")

    def test_ppia_paper_calibration(self):
        # The paper's Eq. 6 input: average defeat-device price 360 EUR.
        catalog = default_price_catalog()
        assert catalog.estimate_ppia("dpfdelete") == pytest.approx(360.0)

    def test_ppia_ignores_service_and_scam_regimes(self):
        catalog = default_price_catalog()
        ppia = catalog.estimate_ppia("dpfdelete")
        prices = catalog.prices_for("dpfdelete")
        assert min(prices) < 100          # scam listings exist
        assert max(prices) > 1000         # service listings exist
        assert 300 <= ppia <= 420         # but the retail regime wins

    def test_ppia_unknown_keyword(self):
        with pytest.raises(ValueError, match="no listings"):
            default_price_catalog().estimate_ppia("submarine")

    def test_add_and_len(self):
        catalog = PriceCatalog()
        catalog.add(PriceListing("l1", "x", "t", 10.0))
        assert len(catalog) == 1

    def test_every_insider_attack_has_listings(self):
        catalog = default_price_catalog()
        for keyword in ("dpfdelete", "egrdelete", "adbluedelete",
                        "chiptuning", "obdtuning", "ecmreprogramming"):
            assert catalog.prices_for(keyword), keyword


class TestVariableCost:
    def test_paper_calibration(self):
        # PPIA - VCU must equal the paper's 310 EUR margin.
        assert 360.0 - variable_cost("dpfdelete") == pytest.approx(310.0)

    def test_folding(self):
        assert variable_cost("DPF delete") == variable_cost("dpfdelete")

    def test_unknown_keyword(self):
        with pytest.raises(KeyError, match="no variable-cost entry"):
            variable_cost("submarine")

    def test_all_costs_positive(self):
        assert all(v > 0 for v in DEFAULT_VCU.values())

    def test_vcu_below_typical_prices(self):
        catalog = default_price_catalog()
        for keyword, vcu in DEFAULT_VCU.items():
            prices = catalog.prices_for(keyword)
            if prices:
                assert vcu < max(prices)
