"""Test package (namespacing avoids basename collisions across dirs)."""
