"""Tests for dirty-keyword tracking and running SAI aggregates."""

import datetime as dt

import pytest

from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer
from repro.iso21434.enums import AttackVector
from repro.social.post import Engagement, Post
from repro.stream.deltas import DeltaTracker


def _db(*keywords):
    db = KeywordDatabase()
    for keyword in keywords:
        db.add(AttackKeyword(keyword=keyword, vector=AttackVector.PHYSICAL))
    return db


def _post(i, text, *, year=2020, region="europe", views=100, likes=10):
    return Post(
        post_id=f"d{i:03d}",
        text=text,
        author=f"user{i}",
        created_at=dt.date(year, 1, 1 + (i % 27)),
        region=region,
        engagement=Engagement(views=views, likes=likes),
    )


class TestDirtyMapping:
    def test_hashtag_token_stem_and_phrase_all_dirty(self):
        tracker = DeltaTracker(_db("dpfdelete", "egrremoval", "tuning"))
        assert tracker.observe(_post(0, "#dpf_delete rocks")) == {"dpfdelete"}
        assert tracker.observe(_post(1, "my egr removal went fine")) == {
            "egrremoval"
        }
        # stem: "tuning" canonicalises to itself, matched inside text
        assert tracker.observe(_post(2, "ecu tuning day")) == {"tuning"}
        assert tracker.observe(_post(3, "nothing relevant")) == frozenset()
        assert tracker.dirty == {"dpfdelete", "egrremoval", "tuning"}

    def test_take_dirty_clears(self):
        tracker = DeltaTracker(_db("dpfdelete"))
        tracker.observe(_post(0, "#dpfdelete"))
        assert tracker.take_dirty() == {"dpfdelete"}
        assert tracker.dirty == frozenset()

    def test_multi_keyword_post_dirties_all(self):
        tracker = DeltaTracker(_db("dpfdelete", "egrdelete"))
        dirty = tracker.observe(_post(0, "#dpfdelete and #egrdelete combo"))
        assert dirty == {"dpfdelete", "egrdelete"}


class TestRegionScope:
    def test_foreign_region_votes_but_does_not_feed_sai(self):
        tracker = DeltaTracker(_db("dpfdelete"), region="europe")
        tracker.observe(_post(0, "my #dpfdelete install", region="america"))
        # voice votes are region-unscoped (batch classifier semantics)
        assert tracker.votes("dpfdelete") == (1, 0)
        # but the SAI aggregates only count the scoped region
        assert tracker.window_count("dpfdelete") == 0
        assert tracker.signals() == {}
        # the keyword is still dirty: its classification input changed
        assert tracker.dirty == {"dpfdelete"}

    def test_in_region_feeds_both(self):
        tracker = DeltaTracker(_db("dpfdelete"), region="europe")
        tracker.observe(_post(0, "my #dpfdelete install", region="Europe"))
        assert tracker.window_count("dpfdelete") == 1
        assert tracker.votes("dpfdelete") == (1, 0)


class TestAggregateEquivalence:
    def test_signals_match_batch_gathering(self):
        db = _db("dpfdelete", "egrremoval")
        posts = [
            _post(0, "my #dpfdelete kit, worth it", year=2019, views=500),
            _post(1, "#dpfdelete fitted by the workshop", year=2020, views=300),
            _post(2, "egr removal finally done", year=2021, views=200),
            _post(3, "police warning about stolen kit", year=2021),
        ]
        tracker = DeltaTracker(db)
        tracker.observe_batch(posts)
        computer = SAIComputer(None)

        streamed = computer.compute_from_signals(db, tracker.signals())
        batch = computer.compute_from_posts(
            db,
            {
                "dpfdelete": posts[0:2],
                "egrremoval": posts[2:3],
            },
        )
        assert streamed.as_rows() == batch.as_rows()

    def test_year_window_selects_buckets(self):
        db = _db("dpfdelete")
        tracker = DeltaTracker(db)
        tracker.observe_batch(
            [
                _post(0, "#dpfdelete a", year=2018, views=100),
                _post(1, "#dpfdelete b", year=2020, views=200),
                _post(2, "#dpfdelete c", year=2022, views=400),
            ]
        )
        signals = tracker.signals(since_year=2019, until_year=2021)
        assert signals["dpfdelete"].post_count == 1
        assert signals["dpfdelete"].engagement.views == 200
        assert tracker.window_count("dpfdelete", since_year=2019) == 2

    def test_voice_votes_follow_classifier_markers(self):
        tracker = DeltaTracker(_db("dpfdelete"))
        tracker.observe(_post(0, "my #dpfdelete was worth it"))  # insider
        tracker.observe(_post(1, "#dpfdelete kit stolen, police involved"))
        tracker.observe(_post(2, "#dpfdelete exists"))  # no markers
        assert tracker.votes("dpfdelete") == (1, 1)


class TestStateRoundTrip:
    def test_state_dict_round_trips(self):
        db = _db("dpfdelete", "egrremoval")
        tracker = DeltaTracker(db, region="europe")
        tracker.observe_batch(
            [
                _post(0, "my #dpfdelete kit", year=2019),
                _post(1, "#egr_removal day", year=2021, region="america"),
            ]
        )
        state = tracker.state_dict()

        import json

        restored = DeltaTracker(db, region="europe")
        restored.load_state(json.loads(json.dumps(state)))
        assert restored.signals() == tracker.signals()
        assert restored.votes("egrremoval") == tracker.votes("egrremoval")
        assert restored.dirty == tracker.dirty
        assert restored.observed_posts == tracker.observed_posts

    def test_keyword_mismatch_rejected(self):
        tracker = DeltaTracker(_db("dpfdelete"))
        state = tracker.state_dict()
        other = DeltaTracker(_db("egrremoval"))
        with pytest.raises(ValueError, match="keyword set"):
            other.load_state(state)
