"""Tests for streaming checkpoint/resume.

The acceptance property: a checkpointed-then-resumed runtime produces
the same alerts as an uninterrupted run over the same feed.
"""

import json

import pytest

from repro.core.config import TargetApplication
from repro.social import ecm_reprogramming_corpus
from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_state,
    load_checkpoint,
    restore_runtime,
    save_checkpoint,
    save_delta_checkpoint,
)
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime
from tests.conftest import build_ecm_database

ECM_TARGET = TargetApplication("car", "europe", "passenger")
BATCH = 300


def _runtime(**kwargs):
    return StreamRuntime(
        SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
        batch_size=BATCH,
        **kwargs,
    )


def _alert_keys(runtime):
    return [
        (
            alert.upto_year,
            alert.changes,
            alert.result.insider_table.as_rows(),
        )
        for alert in runtime.alerts
    ]


class TestResumeParity:
    @pytest.mark.parametrize("stop_after", [1, 3, 5])
    def test_resumed_run_emits_remaining_alerts(self, tmp_path, stop_after):
        reference = _runtime()
        reference.run()

        interrupted = _runtime()
        for _ in range(stop_after):
            assert interrupted.step() is not None
        path = save_checkpoint(interrupted, tmp_path / "run.ckpt.json")

        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        assert resumed.cursor == interrupted.cursor
        resumed.run()

        assert (
            _alert_keys(interrupted) + _alert_keys(resumed)
            == _alert_keys(reference)
        )
        assert (
            resumed.current_table.as_rows()
            == reference.current_table.as_rows()
        )
        assert (
            resumed.current_result.sai.as_rows()
            == reference.current_result.sai.as_rows()
        )

    def test_resume_with_tara_rescores_identically(self, tmp_path, fig4_network):
        reference = _runtime(network=fig4_network)
        reference.run()

        interrupted = _runtime(network=fig4_network)
        for _ in range(3):
            interrupted.step()
        path = save_checkpoint(interrupted, tmp_path / "tara.ckpt.json")
        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
            network=fig4_network,
        )
        resumed.run()
        combined = [a.tara for a in interrupted.alerts + resumed.alerts]
        assert combined == [a.tara for a in reference.alerts]


class TestCheckpointFormat:
    def test_state_is_json_round_trippable(self):
        runtime = _runtime()
        runtime.step()
        state = checkpoint_state(runtime)
        assert state["checkpoint_version"] == CHECKPOINT_VERSION
        assert state == json.loads(json.dumps(state))

    def test_load_validates_version(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        path = save_checkpoint(runtime, tmp_path / "v.ckpt.json")
        payload = json.loads(path.read_text())
        payload["checkpoint_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="checkpoint version"):
            load_checkpoint(path)

    def test_load_requires_runtime_state(self, tmp_path):
        path = tmp_path / "empty.ckpt.json"
        path.write_text(json.dumps({"checkpoint_version": CHECKPOINT_VERSION}))
        with pytest.raises(ValueError, match="runtime"):
            load_checkpoint(path)

    def test_restore_rejects_mismatched_database(self, tmp_path):
        from tests.conftest import build_excavator_database

        runtime = _runtime()
        runtime.step()
        path = save_checkpoint(runtime, tmp_path / "db.ckpt.json")
        with pytest.raises(ValueError, match="keyword set"):
            restore_runtime(
                path,
                SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
                build_excavator_database(),
                target=ECM_TARGET,
            )

    def test_stats_report_observed_posts_after_restore(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        path = save_checkpoint(runtime, tmp_path / "s.ckpt.json")
        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        # the ingest counter comes from the aggregates, not the index,
        # so it also survives lean (include_index=False) restores
        assert resumed.stream_stats["posts_ingested"] == (
            runtime.stream_stats["posts_ingested"]
        )
        assert resumed.stream_stats["posts_ingested"] > 0

    def test_reannotated_database_drops_cached_classifications(self, tmp_path):
        import datetime as dt

        from repro.core.config import PSPConfig
        from repro.core.keywords import AttackKeyword, KeywordDatabase
        from repro.social.post import Post

        # Staleness retuning off: this test is about the cached
        # classification being dropped, and a 1-post batch on a 2-post
        # baseline would trip the volume-drift policy regardless.
        config = PSPConfig(stream_staleness_share=None)

        def build_db(owner_approved):
            db = KeywordDatabase()
            db.add(
                AttackKeyword(
                    keyword="dpfdelete", owner_approved=owner_approved
                )
            )
            return db

        posts = [
            Post(
                post_id=f"x{i}",
                text="my #dpfdelete was worth it",
                author=f"u{i}",
                created_at=dt.date(2020, 1, 1 + i),
            )
            for i in range(3)
        ]
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(feed, build_db(True), batch_size=2,
                                config=config)
        runtime.step()
        path = save_checkpoint(runtime, tmp_path / "ann.ckpt.json")

        # the analyst flips the annotation; same keyword set, new version
        reannotated = build_db(True)
        reannotated.annotate("dpfdelete", owner_approved=False)
        resumed = restore_runtime(
            path, SyntheticFeed(posts), reannotated, batch_size=2,
            config=config,
        )
        tick = resumed.step()
        # the stale insider=True verdict was dropped: with the keyword
        # now annotated outsider, the dirty batch is not insider-relevant
        assert not tick.retuned
        assert resumed.current_result is None or not any(
            c.insider
            for c in resumed.current_result.split.insider
        )

    def test_cursor_and_counters_survive(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        runtime.step()
        path = save_checkpoint(runtime, tmp_path / "c.ckpt.json")
        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        assert resumed.cursor == runtime.cursor
        assert resumed.stream_stats["retunes"] == runtime.stream_stats["retunes"]
        assert (
            resumed.current_table.as_rows() == runtime.current_table.as_rows()
        )


class TestIndexRestoration:
    """Base checkpoints restore the columnar index segments exactly."""

    def test_resumed_index_segments_match_uninterrupted(self, tmp_path):
        reference = _runtime(compact_threshold=128)
        reference.run()
        # The parity below must cover real compaction churn.
        assert reference.index.segment_stats["compactions"] >= 2

        interrupted = _runtime(compact_threshold=128)
        for _ in range(3):
            interrupted.step()
        path = save_checkpoint(interrupted, tmp_path / "ix.ckpt.json")

        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        # Immediately queryable with the exact base/tail split — not a
        # rebuilt approximation of it.
        assert resumed.index.segment_stats == interrupted.index.segment_stats
        assert list(resumed.index.posts) == list(interrupted.index.posts)

        resumed.run()
        assert resumed.index.segment_stats == reference.index.segment_stats
        assert [p.post_id for p in resumed.index.posts] == [
            p.post_id for p in reference.index.posts
        ]
        for keyword in build_ecm_database().keywords:
            assert [
                p.post_id for p in resumed.index.matching(keyword)
            ] == [p.post_id for p in reference.index.matching(keyword)]
        assert _alert_keys(interrupted) + _alert_keys(resumed) == (
            _alert_keys(reference)
        )

    def test_checkpoint_state_is_json_serialisable_with_index(self):
        runtime = _runtime()
        runtime.step()
        payload = checkpoint_state(runtime)
        assert "index" in payload["runtime"]
        json.dumps(payload)

    def test_lean_checkpoint_omits_index_and_still_resumes(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        payload = checkpoint_state(runtime, include_index=False)
        assert "index" not in payload["runtime"]
        path = tmp_path / "lean.ckpt.json"
        path.write_text(json.dumps(payload))
        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        assert len(resumed.index) == 0
        assert resumed.cursor == runtime.cursor


class TestDeltaCheckpoints:
    """Base + delta restore == uninterrupted run, at O(changed) save cost."""

    def test_delta_requires_a_base(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        with pytest.raises(ValueError):
            save_delta_checkpoint(runtime, tmp_path / "orphan.json")

    def test_resumed_from_delta_matches_uninterrupted(self, tmp_path):
        reference = _runtime()
        reference.run()

        interrupted = _runtime()
        interrupted.step()
        base_path = save_checkpoint(interrupted, tmp_path / "base.json")
        interrupted.step()
        interrupted.step()
        delta_path = save_delta_checkpoint(interrupted, tmp_path / "delta.json")

        resumed = restore_runtime(
            delta_path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            base=base_path,
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        assert resumed.cursor == interrupted.cursor
        resumed.run()
        assert _alert_keys(resumed) == _alert_keys(reference)
        assert (
            resumed.current_table.as_rows()
            == reference.current_table.as_rows()
        )

    def test_deltas_are_cumulative_against_one_base(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        base_path = save_checkpoint(runtime, tmp_path / "base.json")
        runtime.step()
        save_delta_checkpoint(runtime, tmp_path / "delta1.json")
        runtime.step()
        latest = save_delta_checkpoint(runtime, tmp_path / "delta2.json")

        # base + latest delta alone restores the full current state;
        # delta1 is deletable.
        resumed = restore_runtime(
            latest,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            base=base_path,
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        assert resumed.cursor == runtime.cursor
        assert resumed.deltas.state_dict()["buckets"] == (
            runtime.deltas.state_dict()["buckets"]
        )

    def test_delta_save_is_o_changed_keywords(self, tmp_path):
        runtime = _runtime()
        runtime.run()
        save_checkpoint(runtime, tmp_path / "base.json")
        # Nothing dirtied since the base: the delta carries no buckets.
        delta_path = save_delta_checkpoint(runtime, tmp_path / "empty.json")
        payload = json.loads(delta_path.read_text())
        assert payload["kind"] == "delta"
        assert payload["runtime_delta"]["deltas_delta"]["changed"] == {}

    def test_restore_rejects_mismatched_base(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        save_checkpoint(runtime, tmp_path / "base.json")
        runtime.step()
        delta_path = save_delta_checkpoint(runtime, tmp_path / "delta.json")

        other = _runtime()
        other.step()
        other.step()
        other_base = save_checkpoint(other, tmp_path / "other_base.json")

        with pytest.raises(ValueError):
            restore_runtime(
                delta_path,
                SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
                build_ecm_database(),
                base=other_base,
                target=ECM_TARGET,
            )

    def test_restore_from_delta_needs_base_argument(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        save_checkpoint(runtime, tmp_path / "base.json")
        delta_path = save_delta_checkpoint(runtime, tmp_path / "delta.json")
        with pytest.raises(ValueError):
            restore_runtime(
                delta_path,
                SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
                build_ecm_database(),
            )

    def test_restored_runtime_keeps_delta_saving(self, tmp_path):
        runtime = _runtime()
        runtime.step()
        base_path = save_checkpoint(runtime, tmp_path / "base.json")
        runtime.step()
        delta_path = save_delta_checkpoint(runtime, tmp_path / "delta.json")

        resumed = restore_runtime(
            delta_path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            base=base_path,
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        resumed.step()
        # No fresh base needed: the adopted base id keeps the chain going.
        next_delta = save_delta_checkpoint(resumed, tmp_path / "delta2.json")
        payload = json.loads(next_delta.read_text())
        assert payload["base_id"] == json.loads(base_path.read_text())["base_id"]

    def test_base_restore_resets_the_delta_baseline(self, tmp_path):
        """A resume must not re-persist the whole history in its deltas."""
        runtime = _runtime()
        runtime.run()
        base_path = save_checkpoint(runtime, tmp_path / "base.json")

        resumed = restore_runtime(
            base_path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        # Nothing changed since the base document: the first delta
        # carries no keyword buckets at all.
        delta_path = save_delta_checkpoint(resumed, tmp_path / "after.json")
        payload = json.loads(delta_path.read_text())
        assert payload["runtime_delta"]["deltas_delta"]["changed"] == {}
        assert len(delta_path.read_text()) < len(base_path.read_text())

    def test_sharded_runtime_rejected_before_writing(self, tmp_path):
        from repro.stream.sharding import ShardedStreamRuntime, shard_feeds

        sharded = ShardedStreamRuntime(
            shard_feeds(list(ecm_reprogramming_corpus().posts), 2),
            build_ecm_database(),
            target=ECM_TARGET,
        )
        sharded.tick()
        path = tmp_path / "sharded.json"
        with pytest.raises(TypeError, match="state_dict"):
            save_checkpoint(sharded, path)
        assert not path.exists()  # rejected before any file was written


class TestMetricsContinuity:
    """Restored runtimes continue their telemetry counters, not restart."""

    @staticmethod
    def _counters(registry):
        collected = registry.collect()
        return {
            name: instrument.samples()
            for name, instrument in collected.items()
            if instrument.kind == "counter"
        }

    def test_checkpoint_embeds_a_metrics_block_outside_the_hash(self, tmp_path):
        from repro.obs.registry import OBS_SCHEMA_VERSION, MetricsRegistry

        instrumented = _runtime(metrics=MetricsRegistry())
        instrumented.step()
        with_metrics = checkpoint_state(instrumented)
        block = with_metrics["metadata"]["metrics"]
        assert block["obs_schema"] == OBS_SCHEMA_VERSION
        assert block["metrics"]["psp_ticks_total"]["series"] == [
            {"labels": [], "value": 1}
        ]

        plain = _runtime()
        plain.step()
        without = checkpoint_state(plain)
        assert "metrics" not in without["metadata"]
        # The advisory block stays outside the delta base identity.
        assert with_metrics["base_id"] == without["base_id"]

    def test_resumed_counters_match_an_uninterrupted_run(self, tmp_path):
        from repro.obs.registry import MetricsRegistry

        reference = _runtime(metrics=MetricsRegistry())
        reference.run()

        interrupted = _runtime(metrics=MetricsRegistry())
        for _ in range(3):
            interrupted.step()
        path = save_checkpoint(interrupted, tmp_path / "run.ckpt.json")

        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
            metrics=MetricsRegistry(),
        )
        resumed.run()
        assert self._counters(resumed.metrics) == self._counters(
            reference.metrics
        )

    def test_delta_restore_prefers_the_cumulative_snapshot(self, tmp_path):
        from repro.obs.registry import MetricsRegistry

        runtime = _runtime(metrics=MetricsRegistry())
        runtime.step()
        base_path = save_checkpoint(runtime, tmp_path / "base.json")
        runtime.step()
        runtime.step()
        delta_path = save_delta_checkpoint(runtime, tmp_path / "delta.json")

        resumed = restore_runtime(
            delta_path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            base=base_path,
            target=ECM_TARGET,
            batch_size=BATCH,
            metrics=MetricsRegistry(),
        )
        # Three ticks happened before the delta save, not one.
        assert (
            resumed.metrics.collect()["psp_ticks_total"].value() == 3
        )

    def test_restore_without_a_registry_stays_uninstrumented(self, tmp_path):
        from repro.obs.registry import MetricsRegistry

        runtime = _runtime(metrics=MetricsRegistry())
        runtime.step()
        path = save_checkpoint(runtime, tmp_path / "run.ckpt.json")

        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=BATCH,
        )
        assert resumed.metrics.enabled is False
        resumed.run()  # the snapshot is advisory: resume still works
