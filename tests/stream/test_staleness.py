"""Tests for the outsider-chatter staleness retune policy.

The conditional-retune optimisation skips evaluation when no dirty
keyword is insider-relevant — correct for the renormalised insider
*table* (outsider volume cancels), but SAI *scores* are shares of
corpus-wide totals, so a long outsider-only quiet period lets the
cached scores drift arbitrarily far from a fresh batch run.  The
``stream_staleness_share`` policy bounds that drift: an outsider-only
tick that moves the in-window corpus volume past the threshold forces
a retune anyway.
"""

import datetime as dt

import pytest

from repro.core.config import PSPConfig
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import AttackVector
from repro.social.post import Post
from repro.stream.checkpoint import restore_runtime, save_checkpoint
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime


def _database() -> KeywordDatabase:
    db = KeywordDatabase()
    db.add(
        AttackKeyword(
            keyword="dpfdelete",
            vector=AttackVector.PHYSICAL,
            owner_approved=True,
        )
    )
    db.add(
        AttackKeyword(
            keyword="relayattack",
            vector=AttackVector.ADJACENT,
            owner_approved=False,
        )
    )
    return db


def _insider_posts(count, start=dt.date(2020, 1, 1)):
    return [
        Post(
            post_id=f"i{i:03d}",
            text="my #dpfdelete kit was worth it",
            author=f"mech{i:03d}",
            created_at=start + dt.timedelta(days=i),
        )
        for i in range(count)
    ]


def _outsider_posts(count, start=dt.date(2020, 6, 1), prefix="o"):
    return [
        Post(
            post_id=f"{prefix}{i:03d}",
            text="#relayattack thieves caught again",
            author=f"news{i:03d}",
            created_at=start + dt.timedelta(days=i),
        )
        for i in range(count)
    ]


def _dpf_probability(runtime) -> float:
    rows = runtime.current_result.sai.as_rows()
    return {row[0]: row[2] for row in rows}["dpfdelete"]


class TestConfigValidation:
    def test_nonpositive_share_rejected(self):
        with pytest.raises(ValueError):
            PSPConfig(stream_staleness_share=0.0)
        with pytest.raises(ValueError):
            PSPConfig(stream_staleness_share=-0.1)

    def test_none_disables_policy(self):
        assert PSPConfig(stream_staleness_share=None).stream_staleness_share is None

    def test_default_is_ten_percent(self):
        assert PSPConfig().stream_staleness_share == pytest.approx(0.10)


class TestInsiderScoreDrift:
    """The regression the policy exists for."""

    def test_outsider_flood_drifts_sai_without_policy(self):
        # 20 insider posts, then 10 outsider posts: the true dpfdelete
        # probability falls from 1.0 to 20/30, but with the policy off
        # the skipped tick leaves the cached 1.0 in place.
        posts = _insider_posts(20) + _outsider_posts(10)
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(
            feed, _database(),
            config=PSPConfig(stream_staleness_share=None),
        )
        runtime.ingest(feed.events_after(-1, limit=20))
        assert _dpf_probability(runtime) == pytest.approx(1.0)
        tick = runtime.ingest(feed.events_after(runtime.cursor))
        assert tick.dirty == ("relayattack",)
        assert not tick.retuned  # the PR4 skip, unbounded
        stale = _dpf_probability(runtime)
        assert stale == pytest.approx(1.0)
        # Ground truth: a fresh replay scoring all 30 posts at once.
        fresh_feed = SyntheticFeed(posts)
        fresh = StreamRuntime(fresh_feed, _database())
        fresh.ingest(fresh_feed.events_after(-1))
        assert stale - _dpf_probability(fresh) > 0.25  # the drift

    def test_outsider_flood_forces_retune_with_default_policy(self):
        posts = _insider_posts(20) + _outsider_posts(10)
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(feed, _database())
        runtime.ingest(feed.events_after(-1, limit=20))
        tick = runtime.ingest(feed.events_after(runtime.cursor))
        # 10 posts on a 20-post window is a 50% move > the 10% default.
        assert tick.dirty == ("relayattack",)
        assert tick.retuned
        assert tick.alert is None  # volume moved, ratings did not
        assert runtime.stream_stats["forced_retunes"] == 1
        # The forced retune lands exactly on the fresh-scoring truth.
        fresh_feed = SyntheticFeed(posts)
        fresh = StreamRuntime(fresh_feed, _database())
        fresh.ingest(fresh_feed.events_after(-1))
        assert _dpf_probability(runtime) == pytest.approx(
            _dpf_probability(fresh)
        )

    def test_below_threshold_drip_still_skips(self):
        posts = _insider_posts(40) + _outsider_posts(3)
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(feed, _database())
        runtime.ingest(feed.events_after(-1, limit=40))
        tick = runtime.ingest(feed.events_after(runtime.cursor))
        # 3 posts on a 40-post window is 7.5% < 10%: the cheap skip
        # survives, bounding the cost of the policy to one counter read.
        assert not tick.retuned
        assert runtime.stream_stats["forced_retunes"] == 0

    def test_reference_resets_on_each_retune(self):
        # After a forced retune the drift reference is the new window
        # total, so the same absolute drip no longer re-triggers: the
        # policy is amortised against the current corpus size.
        posts = (
            _insider_posts(20)
            + _outsider_posts(10)
            + _outsider_posts(2, start=dt.date(2020, 9, 1), prefix="p")
        )
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(feed, _database())
        runtime.ingest(feed.events_after(-1, limit=20))
        forced = runtime.ingest(feed.events_after(runtime.cursor, limit=10))
        assert forced.retuned
        drip = runtime.ingest(feed.events_after(runtime.cursor))
        # 2 posts on the refreshed 30-post reference is 6.7% < 10%.
        assert not drip.retuned
        assert runtime.stream_stats["forced_retunes"] == 1


class TestStalenessStatePersistence:
    def test_reference_and_counter_survive_checkpoint(self, tmp_path):
        posts = _insider_posts(20) + _outsider_posts(10)
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(feed, _database())
        runtime.ingest(feed.events_after(-1, limit=20))
        runtime.ingest(feed.events_after(runtime.cursor))
        assert runtime.evaluator.retune_window_posts == 30
        assert runtime.evaluator.forced_retunes == 1

        path = save_checkpoint(runtime, tmp_path / "staleness.ckpt.json")
        resumed = restore_runtime(path, SyntheticFeed(posts), _database())
        assert resumed.evaluator.retune_window_posts == 30
        assert resumed.evaluator.forced_retunes == 1

    def test_legacy_state_defaults_to_no_reference(self):
        # A pre-policy checkpoint has no retune_window_posts: the
        # restored evaluator starts without a reference and re-arms on
        # its next retune instead of guessing.
        runtime = StreamRuntime(SyntheticFeed([]), _database())
        state = runtime.state_dict()
        del state["retune_window_posts"]
        del state["forced_retunes"]
        fresh = StreamRuntime(SyntheticFeed([]), _database())
        fresh.load_state(state)
        assert fresh.evaluator.retune_window_posts is None
        assert fresh.evaluator.forced_retunes == 0
