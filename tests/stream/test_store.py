"""Tests for the cold-segment spill-to-disk store.

Covers the binary codec (exact round trips, floats bit-for-bit), the
crash-atomicity contract (temp files and orphans ignored, manifest never
references a missing file), typed :class:`StoreError` failures naming
the offending key, the LRU hydration cache, the ``psp_store_*``
telemetry, and the spill lifecycle through ``TieredCorpusIndex``,
checkpoints, sharded runtimes and the CLI.
"""

import datetime as dt
import json
import math
from array import array

import pytest

from repro.cli import main
from repro.core.config import TargetApplication
from repro.obs.registry import MetricsRegistry
from repro.social import ecm_reprogramming_corpus
from repro.social.index import CorpusIndex
from repro.social.post import Post
from repro.stream.checkpoint import (
    restore_runtime,
    save_checkpoint,
)
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime
from repro.stream.sharding import ShardedStreamRuntime
from repro.stream.store import (
    DEFAULT_MAX_RESIDENT_COLD,
    HydrationCache,
    SegmentStore,
    StoreError,
    segment_from_bytes,
    segment_to_bytes,
)
from repro.stream.tiers import TieredCorpusIndex, build_stream_index
from tests.conftest import build_ecm_database

ECM_TARGET = TargetApplication("car", "europe", "passenger")

KEYWORDS = ("dpfdelete", "egrremoval", "delet", "stolen", "nomatch")

TEXTS = (
    "my #dpfdelete kit arrived",
    "deleting the egr today",
    "stolen excavator warning",
    "dpf delete done at the workshop",
    "#egr_removal before and after",
)


def _daily_posts(days, *, start=dt.date(2020, 1, 1), step=1):
    return [
        Post(
            post_id=f"p{i:04d}",
            text=TEXTS[i % len(TEXTS)],
            author=f"user{i % 3}",
            created_at=start + dt.timedelta(days=i * step),
        )
        for i in range(days)
    ]


def _spilled_index(tmp_path, posts=None, **knobs):
    index = build_stream_index(
        posts if posts is not None else (),
        warm_span_days=knobs.pop("warm_span_days", 30),
        cold_age_days=knobs.pop("cold_age_days", 120),
        spill_dir=tmp_path / "store",
        compact_threshold=1000,
        **knobs,
    )
    return index


def _assert_same_queries(tiered, rebuilt):
    assert [p.post_id for p in tiered.posts] == [
        p.post_id for p in rebuilt.posts
    ]
    got = tiered.search_many(KEYWORDS)
    want = rebuilt.search_many(KEYWORDS)
    for keyword in KEYWORDS:
        assert [p.post_id for p in got[keyword]] == [
            p.post_id for p in want[keyword]
        ], keyword


SAMPLE_STATE = {
    "dates": array("l", [737424, 737425, 737426]),
    "views": array("q", [10, 0, 2**40]),
    "scores": array("d", [0.1, -1e300, math.inf, 1.5e-310]),
    "post_ids": ["a", "b", "c"],
    "texts": ["first text", "", "unicode ✓ café"],
}


class TestCodec:
    def test_round_trip_is_exact(self):
        decoded = segment_from_bytes(segment_to_bytes(SAMPLE_STATE))
        assert list(decoded) == list(SAMPLE_STATE)  # section order kept
        for name, value in SAMPLE_STATE.items():
            got = decoded[name]
            if isinstance(value, array):
                assert isinstance(got, array)
                assert got.typecode == value.typecode
                # Bit-for-bit, not value equality: inf, subnormals and
                # negative zero must survive unchanged.
                assert got.tobytes() == value.tobytes()
            else:
                assert got == value

    def test_empty_columns_round_trip(self):
        state = {"dates": array("l"), "post_ids": [], "texts": []}
        decoded = segment_from_bytes(segment_to_bytes(state))
        assert decoded["dates"].tobytes() == b""
        assert decoded["post_ids"] == []

    def test_bad_magic_raises(self):
        with pytest.raises(StoreError, match="magic"):
            segment_from_bytes(b"NOTASEGMENT")

    def test_short_prefix_raises(self):
        data = segment_to_bytes(SAMPLE_STATE)
        with pytest.raises(StoreError, match="magic"):
            segment_from_bytes(data[:12])

    def test_truncated_header_raises(self):
        data = segment_to_bytes(SAMPLE_STATE)
        with pytest.raises(StoreError, match="truncated inside the header"):
            segment_from_bytes(data[:20])

    def test_truncated_payload_raises(self):
        data = segment_to_bytes(SAMPLE_STATE)
        with pytest.raises(StoreError, match="checksum|truncated"):
            segment_from_bytes(data[:-5])

    def test_corrupted_payload_raises_checksum(self):
        data = bytearray(segment_to_bytes(SAMPLE_STATE))
        data[-1] ^= 0xFF
        with pytest.raises(StoreError, match="checksum mismatch"):
            segment_from_bytes(bytes(data))

    def test_unsupported_version_raises(self):
        data = segment_to_bytes({"post_ids": ["x"]})
        # Rewrite the header with a bumped version, keeping the layout.
        magic_len = 8
        header_len = int.from_bytes(data[magic_len : magic_len + 8], "little")
        header = json.loads(data[magic_len + 8 : magic_len + 8 + header_len])
        header["version"] = 99
        new_header = json.dumps(header, separators=(",", ":")).encode()
        patched = (
            data[:magic_len]
            + len(new_header).to_bytes(8, "little")
            + new_header
            + data[magic_len + 8 + header_len :]
        )
        with pytest.raises(StoreError, match="version"):
            segment_from_bytes(patched)


class TestHydrationCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            HydrationCache(0)

    def test_lru_evicts_least_recent(self):
        cache = HydrationCache(2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refreshes 'a'
        cache.put("c", "C")  # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.evictions == 1
        assert cache.hits == 3
        assert cache.misses == 1

    def test_clear_keeps_statistics(self):
        cache = HydrationCache(2)
        cache.put("a", "A")
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestSegmentStore:
    def _state(self, tag="x"):
        return {
            "dates": array("l", [737424, 737425]),
            "post_ids": [f"{tag}1", f"{tag}2"],
            "texts": [f"{tag} first", f"{tag} second"],
        }

    def test_spill_and_load_round_trip(self, tmp_path):
        store = SegmentStore(tmp_path)
        key = store.spill(self._state(), span=7)
        assert key.startswith("seg-7-")
        assert key in store
        loaded = store.load_columns_state(key)
        assert loaded["post_ids"] == ["x1", "x2"]
        assert store.load_post_ids(key) == ["x1", "x2"]
        assert store.segment_count == 1
        assert store.bytes_on_disk > 0

    def test_spill_is_idempotent_by_content(self, tmp_path):
        store = SegmentStore(tmp_path)
        first = store.spill(self._state(), span=7)
        second = store.spill(self._state(), span=7)
        assert first == second
        assert store.segment_count == 1
        seg_files = list(tmp_path.glob("*.seg"))
        assert len(seg_files) == 1

    def test_missing_key_raises_naming_key(self, tmp_path):
        store = SegmentStore(tmp_path)
        with pytest.raises(StoreError, match="'seg-0-nope'"):
            store.load_columns_state("seg-0-nope")

    def test_deleted_segment_file_raises_naming_key(self, tmp_path):
        store = SegmentStore(tmp_path)
        key = store.spill(self._state(), span=1)
        (tmp_path / f"{key}.seg").unlink()
        with pytest.raises(StoreError) as excinfo:
            store.load_columns_state(key)
        assert key in str(excinfo.value)

    def test_corrupted_segment_file_raises_naming_key(self, tmp_path):
        store = SegmentStore(tmp_path)
        key = store.spill(self._state(), span=1)
        path = tmp_path / f"{key}.seg"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreError) as excinfo:
            store.load_columns_state(key)
        message = str(excinfo.value)
        assert key in message and "checksum" in message

    def test_directory_adoption_reads_existing_manifest(self, tmp_path):
        first = SegmentStore(tmp_path)
        key = first.spill(self._state(), span=3)
        second = SegmentStore(tmp_path)
        assert key in second
        assert second.load_post_ids(key) == ["x1", "x2"]

    def test_orphan_tmp_and_seg_files_ignored_on_open(self, tmp_path):
        # A kill mid-spill leaves either a temp file (crash before the
        # rename) or a renamed segment the manifest never recorded
        # (crash between rename and manifest write).  Both are inert.
        store = SegmentStore(tmp_path)
        key = store.spill(self._state(), span=3)
        (tmp_path / f"seg-9-deadbeef.seg.{12345}.tmp").write_bytes(b"junk")
        (tmp_path / "seg-9-deadbeef.seg").write_bytes(b"orphan")
        adopted = SegmentStore(tmp_path)
        assert list(adopted.keys()) == [key]
        assert adopted.load_post_ids(key) == ["x1", "x2"]
        # The orphaned content-addressed file is reused on the next
        # spill of the same content, never trusted blindly.
        assert "seg-9-deadbeef" not in adopted

    def test_manifest_never_references_missing_file(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.spill(self._state("a"), span=1)
        store.spill(self._state("b"), span=2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        for entry in manifest["segments"].values():
            assert (tmp_path / entry["file"]).exists()

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(StoreError, match="not valid JSON"):
            SegmentStore(tmp_path)

    def test_manifest_union_merge_across_instances(self, tmp_path):
        # Two instances sharing one directory (shards, replay sub-runs)
        # must not clobber each other's manifest records.
        first = SegmentStore(tmp_path)
        second = SegmentStore(tmp_path)
        key_a = first.spill(self._state("a"), span=1)
        key_b = second.spill(self._state("b"), span=2)
        adopted = SegmentStore(tmp_path)
        assert key_a in adopted and key_b in adopted

    def test_stats_and_metrics(self, tmp_path):
        registry = MetricsRegistry()
        store = SegmentStore(tmp_path, max_resident_cold=1, metrics=registry)
        store.spill(self._state("a"), span=1)
        store.spill(self._state("b"), span=2)
        stats = store.stats
        assert stats["segments"] == 2 and stats["spills"] == 2
        assert stats["max_resident_cold"] == 1
        collected = registry.collect()
        assert collected["psp_store_spills_total"].value() == 2
        assert collected["psp_store_spilled_bytes_total"].value() == (
            store.bytes_on_disk
        )
        # Gauges are collector-refreshed at snapshot/export time.
        snapshot = registry.snapshot()
        gauges = {
            name: entry["series"][0]["value"]
            for name, entry in snapshot["metrics"].items()
            if entry["kind"] == "gauge" and entry["series"]
        }
        assert gauges["psp_store_segments"] == 2
        assert gauges["psp_store_bytes"] == store.bytes_on_disk
        assert gauges["psp_store_resident_segments"] <= 1  # capacity 1


class TestIndexSpill:
    def test_cold_seals_spill_and_queries_match_flat(self, tmp_path):
        posts = _daily_posts(500)
        index = _spilled_index(tmp_path)
        for i in range(0, len(posts), 40):
            index.append(posts[i : i + 40])
        tiers = index.segment_stats["tiers"]
        assert tiers["cold"]["segments"] > 0
        assert tiers["cold"]["spilled"] == tiers["cold"]["segments"]
        assert index.store is not None
        assert index.store.segment_count > 0
        _assert_same_queries(index, CorpusIndex(posts))

    def test_hydration_rides_the_lru_cache(self, tmp_path):
        posts = _daily_posts(500)
        # Capacity large enough that one query's scan fits: the second
        # identical query must be all cache hits, zero disk reads.
        index = _spilled_index(tmp_path, max_resident_cold=64)
        for i in range(0, len(posts), 40):
            index.append(posts[i : i + 40])
        store = index.store
        store.drop_cache()
        hydrations_before = store.hydrations
        index.search_many(("dpfdelete",))
        first_pass_hydrations = store.hydrations - hydrations_before
        assert first_pass_hydrations > 0
        hits_before = store.cache.hits
        index.search_many(("dpfdelete",))
        assert store.hydrations == hydrations_before + first_pass_hydrations
        assert store.cache.hits > hits_before

    def test_small_cache_evicts_under_scan(self, tmp_path):
        posts = _daily_posts(500)
        index = _spilled_index(tmp_path, max_resident_cold=1)
        for i in range(0, len(posts), 40):
            index.append(posts[i : i + 40])
        store = index.store
        store.drop_cache()
        index.search_many(("dpfdelete",))
        # More spilled segments than cache slots: the scan must evict.
        assert store.segment_count > 1
        assert store.cache.evictions > 0
        assert len(store.cache) <= 1

    def test_resident_cold_also_cached_per_query(self, tmp_path):
        # The PR 10 fix: even WITHOUT a store, back-to-back cold queries
        # must not rebuild a throwaway interner per call.
        posts = _daily_posts(500)
        index = build_stream_index(
            posts, warm_span_days=30, cold_age_days=120,
            compact_threshold=1000,
        )
        remat_first = index.segment_stats
        index.search_many(("dpfdelete",))
        after_one = index.segment_stats["tiers"]
        index.search_many(("dpfdelete",))
        # Rematerialization counter parity is covered via metrics in
        # runtime tests; here the observable contract is identity: two
        # queries in a row return identical results without error.
        assert index.search_many(("dpfdelete",)) is not None
        assert remat_first["layout"] == "tiered"
        assert after_one["cold"]["spilled"] == 0

    def test_spill_requires_tiered_retention(self, tmp_path):
        with pytest.raises(ValueError, match="tiered retention"):
            build_stream_index(spill_dir=tmp_path / "s")
        with pytest.raises(ValueError, match="tiered retention"):
            build_stream_index(max_resident_cold=2)

    def test_state_dict_roundtrip_reattaches_store(self, tmp_path):
        posts = _daily_posts(400)
        index = _spilled_index(tmp_path)
        for i in range(0, len(posts), 40):
            index.append(posts[i : i + 40])
        state = index.state_dict()
        spilled_entries = [
            entry for entry in state["cold"] if entry["store_key"]
        ]
        assert spilled_entries
        assert all(entry["columns"] is None for entry in spilled_entries)

        restored = build_stream_index(
            warm_span_days=30, cold_age_days=120,
            spill_dir=tmp_path / "store", compact_threshold=1000,
        )
        restored.load_state(state)
        _assert_same_queries(restored, CorpusIndex(posts))

    def test_snapshot_without_store_raises_typed_error(self, tmp_path):
        posts = _daily_posts(400)
        index = _spilled_index(tmp_path)
        for i in range(0, len(posts), 40):
            index.append(posts[i : i + 40])
        state = index.state_dict()
        detached = build_stream_index(
            warm_span_days=30, cold_age_days=120, compact_threshold=1000
        )
        with pytest.raises(StoreError, match="spill_dir"):
            detached.load_state(state)

    def test_snapshot_with_wrong_store_names_missing_key(self, tmp_path):
        posts = _daily_posts(400)
        index = _spilled_index(tmp_path)
        for i in range(0, len(posts), 40):
            index.append(posts[i : i + 40])
        state = index.state_dict()
        other = build_stream_index(
            warm_span_days=30, cold_age_days=120,
            spill_dir=tmp_path / "elsewhere", compact_threshold=1000,
        )
        with pytest.raises(StoreError, match="seg-"):
            other.load_state(state)

    def test_resident_snapshot_respills_into_attached_store(self, tmp_path):
        posts = _daily_posts(400)
        resident = build_stream_index(
            posts, warm_span_days=30, cold_age_days=120,
            compact_threshold=1000,
        )
        state = resident.state_dict()
        spilling = build_stream_index(
            warm_span_days=30, cold_age_days=120,
            spill_dir=tmp_path / "store", compact_threshold=1000,
        )
        spilling.load_state(state)
        assert spilling.store.segment_count > 0
        tiers = spilling.segment_stats["tiers"]
        assert tiers["cold"]["spilled"] == tiers["cold"]["segments"]
        _assert_same_queries(spilling, CorpusIndex(posts))


def _ecm_runtime(**kwargs):
    return StreamRuntime(
        SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
        batch_size=200,
        warm_span_days=60,
        cold_age_days=180,
        **kwargs,
    )


def _alert_keys(runtime):
    return [
        (
            alert.upto_year,
            alert.changes,
            alert.result.insider_table.as_rows(),
        )
        for alert in runtime.alerts
    ]


class TestCheckpointSpill:
    def test_checkpoint_restore_reattaches_store(self, tmp_path):
        spill = tmp_path / "store"
        reference = _ecm_runtime()
        reference.run()

        interrupted = _ecm_runtime(spill_dir=spill)
        while True:
            tick = interrupted.step()
            assert tick is not None, "feed drained before any cold seal"
            if interrupted.index.segment_stats["cold_seals"] > 0:
                break
        path = save_checkpoint(interrupted, tmp_path / "spill.ckpt.json")
        payload = json.loads(path.read_text())
        meta = payload["metadata"]["store"]
        assert meta["directory"] == str(spill)
        assert meta["segments"] > 0 and meta["bytes"] > 0
        assert meta["manifest"] == str(spill / "manifest.json")

        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=200,
            warm_span_days=60,
            cold_age_days=180,
            spill_dir=spill,
        )
        resumed.run()
        assert _alert_keys(resumed) == _alert_keys(reference)

    def test_checkpoint_restore_without_store_degrades_cleanly(
        self, tmp_path
    ):
        spill = tmp_path / "store"
        runtime = _ecm_runtime(spill_dir=spill)
        while True:
            tick = runtime.step()
            assert tick is not None, "feed drained before any cold seal"
            if runtime.index.segment_stats["cold_seals"] > 0:
                break
        path = save_checkpoint(runtime, tmp_path / "spill.ckpt.json")
        with pytest.raises(StoreError) as excinfo:
            restore_runtime(
                path,
                SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
                build_ecm_database(),
                target=ECM_TARGET,
                batch_size=200,
                warm_span_days=60,
                cold_age_days=180,
            )
        message = str(excinfo.value)
        assert "checkpoint restore failed" in message
        assert "spill" in message  # points the operator at the remedy


class TestShardedSpill:
    def test_shards_share_one_store_and_match_resident_run(self, tmp_path):
        def _run(**kwargs):
            runtime = ShardedStreamRuntime(
                [
                    SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
                    SyntheticFeed.from_corpus(
                        ecm_reprogramming_corpus(), empty=True
                    )
                    if False
                    else SyntheticFeed(()),
                ],
                build_ecm_database(),
                target=ECM_TARGET,
                since_year=2015,
                batch_size=200,
                warm_span_days=60,
                cold_age_days=180,
                **kwargs,
            )
            runtime.run()
            keys = _alert_keys(runtime)
            stats = runtime.stream_stats["shard_stats"]
            store = runtime.store
            runtime.close()
            return keys, stats, store

        spilled_keys, spilled_stats, store = _run(
            spill_dir=tmp_path / "store", max_resident_cold=2
        )
        assert store is not None and store.segment_count > 0
        for shard in spilled_stats:
            tiers = shard["index"]["tiers"]
            assert tiers["cold"]["spilled"] == tiers["cold"]["segments"]
        resident_keys, _, no_store = _run()
        assert no_store is None
        assert spilled_keys == resident_keys

    def test_sharded_spill_requires_tiered_retention(self, tmp_path):
        with pytest.raises(ValueError, match="tiered retention"):
            ShardedStreamRuntime(
                [SyntheticFeed(())],
                build_ecm_database(),
                target=ECM_TARGET,
                spill_dir=tmp_path / "store",
            )


class TestCliSpill:
    def test_stream_stats_show_store_row(self, tmp_path, capsys):
        code = main(
            [
                "stream", "--scenario", "ecm", "--batch-size", "400",
                "--warm-span", "60", "--cold-age", "180",
                "--spill-dir", str(tmp_path / "store"),
                "--max-resident-cold", "2", "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "store:" in out
        assert str(tmp_path / "store") in out
        assert "spilled" in out
        assert (tmp_path / "store" / "manifest.json").exists()

    def test_replay_with_spill_dir_passes(self, tmp_path, capsys):
        code = main(
            [
                "replay", "--scenario", "ecm", "--months", "2", "--smoke",
                "--warm-span", "60", "--cold-age", "180",
                "--spill-dir", str(tmp_path / "store"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replay ecm" in out

    def test_spill_without_tiering_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "stream", "--scenario", "ecm",
                "--spill-dir", str(tmp_path / "store"),
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "tiered retention" in err
