"""Tests for rotating base+delta checkpoint management."""

import datetime as dt
import json

import pytest

from repro.core.config import TargetApplication
from repro.social import ecm_reprogramming_corpus
from repro.stream.checkpoint import (
    CheckpointRotation,
    load_checkpoint,
    restore_runtime,
)
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime
from tests.conftest import build_ecm_database

ECM_TARGET = TargetApplication("car", "europe", "passenger")


def _runtime():
    return StreamRuntime(
        SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
    )


def _advance(runtime, year):
    return runtime.advance_to(dt.date(year, 12, 31), upto_year=year)


class TestRotationLifecycle:
    def test_first_save_is_a_base(self, tmp_path):
        runtime = _runtime()
        _advance(runtime, 2018)
        rotation = CheckpointRotation(runtime, tmp_path)
        path = rotation.save()
        assert path == rotation.base_path
        assert load_checkpoint(path)["kind"] == "base"
        assert rotation.delta_path is None
        assert rotation.restore_sources() == (path, None)

    def test_subsequent_saves_are_deltas(self, tmp_path):
        runtime = _runtime()
        _advance(runtime, 2018)
        # A year of ECM arrivals dirties every keyword, making the
        # cumulative delta nearly base-sized — a generous ratio keeps
        # these saves on the delta path under test.
        rotation = CheckpointRotation(runtime, tmp_path, max_delta_ratio=10)
        base = rotation.save()
        _advance(runtime, 2019)
        delta = rotation.save()
        assert delta != base
        assert load_checkpoint(delta)["kind"] == "delta"
        assert rotation.restore_sources() == (delta, base)

    def test_superseded_delta_is_pruned(self, tmp_path):
        runtime = _runtime()
        _advance(runtime, 2018)
        rotation = CheckpointRotation(runtime, tmp_path, max_delta_ratio=10)
        rotation.save()
        _advance(runtime, 2019)
        first_delta = rotation.save()
        _advance(runtime, 2020)
        second_delta = rotation.save()
        # Deltas are cumulative: the newer one alone restores, so the
        # directory holds exactly one base and one delta.
        assert not first_delta.exists()
        assert second_delta.exists()
        assert first_delta in rotation.pruned_files
        files = sorted(p.name for p in tmp_path.iterdir())
        assert len(files) == 2

    def test_oversized_delta_triggers_base_rotation(self, tmp_path):
        runtime = _runtime()
        _advance(runtime, 2018)
        # Any delta beats this ratio, so the second save must rotate.
        rotation = CheckpointRotation(
            runtime, tmp_path, max_delta_ratio=0.0001
        )
        first_base = rotation.save()
        _advance(runtime, 2019)
        new_base = rotation.save()
        assert rotation.rotations == 1
        assert load_checkpoint(new_base)["kind"] == "base"
        assert rotation.delta_path is None
        # The old generation (base + oversized delta) is gone.
        assert not first_base.exists()
        assert [p.name for p in tmp_path.iterdir()] == [new_base.name]
        assert rotation.restore_sources() == (new_base, None)

    def test_prune_false_keeps_history(self, tmp_path):
        runtime = _runtime()
        _advance(runtime, 2018)
        rotation = CheckpointRotation(runtime, tmp_path, prune=False)
        rotation.save()
        _advance(runtime, 2019)
        first_delta = rotation.save()
        _advance(runtime, 2020)
        rotation.save()
        assert first_delta.exists()
        assert rotation.pruned_files == []

    def test_restore_before_save_rejected(self, tmp_path):
        rotation = CheckpointRotation(_runtime(), tmp_path)
        with pytest.raises(ValueError):
            rotation.restore_sources()

    def test_nonpositive_ratio_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointRotation(_runtime(), tmp_path, max_delta_ratio=0)


class TestRotationRestoreParity:
    @pytest.mark.parametrize("max_delta_ratio", [10, 0.0001])
    def test_resume_matches_uninterrupted(self, tmp_path, max_delta_ratio):
        # Uninterrupted reference.
        reference = _runtime()
        reference_alerts = []
        for year in range(2018, 2024):
            tick = _advance(reference, year)
            if tick.alert is not None:
                reference_alerts.append((year, tick.alert.changes))

        # Checkpointed run: save after every year up to 2020 (with a
        # tiny ratio this exercises rotation, with the default it
        # exercises the delta chain), then resume and finish.
        runtime = _runtime()
        rotation = CheckpointRotation(
            runtime, tmp_path, max_delta_ratio=max_delta_ratio
        )
        for year in range(2018, 2021):
            _advance(runtime, year)
            rotation.save()
        source, base = rotation.restore_sources()
        resumed = restore_runtime(
            source,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            base=base,
            target=ECM_TARGET,
        )
        resumed_alerts = []
        for year in range(2021, 2024):
            tick = _advance(resumed, year)
            if tick.alert is not None:
                resumed_alerts.append((year, tick.alert.changes))

        expected_tail = [a for a in reference_alerts if a[0] >= 2021]
        assert resumed_alerts == expected_tail
        assert (
            resumed.current_table.as_rows()
            == reference.current_table.as_rows()
        )

    def test_restored_runtime_keeps_delta_saving(self, tmp_path):
        # A runtime restored from a rotation checkpoint adopts the base
        # id, so the rotation chain continues without a fresh base.
        runtime = _runtime()
        _advance(runtime, 2018)
        rotation = CheckpointRotation(runtime, tmp_path, max_delta_ratio=10)
        base = rotation.save()
        _advance(runtime, 2019)
        delta = rotation.save()
        resumed = restore_runtime(
            delta,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            base=base,
            target=ECM_TARGET,
        )
        _advance(resumed, 2020)
        follow_on = CheckpointRotation(resumed, tmp_path)
        # The fresh manager starts its own generation, but the resumed
        # runtime itself can still delta-save against the adopted base.
        from repro.stream.checkpoint import save_delta_checkpoint

        path = save_delta_checkpoint(resumed, tmp_path / "follow.json")
        payload = json.loads(path.read_text())
        assert payload["base_id"] == load_checkpoint(base)["base_id"]
        assert follow_on.rotations == 0
