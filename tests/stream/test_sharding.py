"""Tests for the sharded streaming runtime and its merge step."""

import datetime as dt

import pytest

from repro.core.config import TargetApplication
from repro.core.errors import PSPError
from repro.core.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.core.monitor import PSPMonitor
from repro.core.poisoning import PostAuthenticityFilter
from repro.social import ecm_reprogramming_corpus
from repro.stream.deltas import DeltaTracker
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime
from repro.stream.sharding import (
    ShardedStreamRuntime,
    merge_signals,
    partition_posts,
    shard_feeds,
)
from tests.conftest import build_ecm_database

ECM_TARGET = TargetApplication("car", "europe", "passenger")


def _posts():
    return list(ecm_reprogramming_corpus().posts)


def _single_runtime(**kwargs):
    return StreamRuntime(
        SyntheticFeed(_posts()),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
        **kwargs,
    )


def _sharded_runtime(shards=3, **kwargs):
    return ShardedStreamRuntime(
        shard_feeds(_posts(), shards),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
        **kwargs,
    )


def _advance_years(runtime, first=2018, last=2023):
    for year in range(first, last + 1):
        runtime.advance_to(dt.date(year, 12, 31), upto_year=year)
    return runtime


def _alert_keys(runtime):
    return [(a.upto_year, a.changes) for a in runtime.alerts]


class TestPartitioning:
    def test_partitions_are_disjoint_and_complete(self):
        posts = _posts()
        partitions = partition_posts(posts, 4)
        assert len(partitions) == 4
        ids = [p.post_id for part in partitions for p in part]
        assert sorted(ids) == sorted(p.post_id for p in posts)

    def test_partitioning_is_deterministic(self):
        posts = _posts()
        first = partition_posts(posts, 3)
        second = partition_posts(posts, 3)
        assert [[p.post_id for p in part] for part in first] == [
            [p.post_id for p in part] for part in second
        ]

    def test_custom_key_routes_by_region(self):
        posts = _posts()
        partitions = partition_posts(posts, 2, key=lambda p: p.region)
        for part in partitions:
            assert len({p.region for p in part}) <= 1

    def test_shard_feeds_cover_the_corpus(self):
        posts = _posts()
        feeds = shard_feeds(posts, 5)
        assert sum(len(feed) for feed in feeds) == len(posts)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            partition_posts(_posts(), 0)


class TestSingleFeedParity:
    """The tentpole contract: merged sharded run == single-feed run."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_yearly_alerts_table_and_sai_match(self, shards):
        single = _advance_years(_single_runtime())
        sharded = _advance_years(_sharded_runtime(shards))
        assert _alert_keys(sharded) == _alert_keys(single)
        assert (
            sharded.current_table.as_rows() == single.current_table.as_rows()
        )
        assert (
            sharded.current_result.sai.as_rows()
            == single.current_result.sai.as_rows()
        )

    def test_executors_produce_identical_results(self):
        reference = _advance_years(_sharded_runtime(3))
        for executor in (SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)):
            with _advance_years(
                _sharded_runtime(3, executor=executor)
            ) as runtime:
                assert _alert_keys(runtime) == _alert_keys(reference)
                assert (
                    runtime.current_table.as_rows()
                    == reference.current_table.as_rows()
                )

    def test_micro_batch_run_drains_every_feed(self):
        runtime = _sharded_runtime(3, batch_size=100)
        ticks = runtime.run()
        assert runtime.tick() is None  # drained
        assert sum(t.accepted for t in ticks) == len(_posts())
        assert all(len(t.shard_accepted) == 3 for t in ticks)
        stats = runtime.stream_stats
        assert stats["posts_ingested"] == len(_posts())
        assert stats["shards"] == 3
        assert len(stats["shard_stats"]) == 3

    def test_one_evaluation_per_tick_regardless_of_shards(self):
        runtime = _advance_years(_sharded_runtime(4))
        # ticks == retunes upper bound: one evaluation per merged tick,
        # not one per shard batch.
        assert runtime.evaluator.retunes <= len(runtime.ticks)


class TestMergeStep:
    def test_merge_signals_equals_unsharded_signals(self):
        posts = _posts()
        database = build_ecm_database()
        whole = DeltaTracker(database, region="europe")
        whole.observe_batch(posts)
        trackers = []
        for part in partition_posts(posts, 3):
            tracker = DeltaTracker(database, region="europe")
            tracker.observe_batch(part)
            trackers.append(tracker)
        merged = merge_signals(trackers)
        want = whole.signals()
        assert set(merged) == set(want)
        for keyword, signals in want.items():
            got = merged[keyword]
            assert got.post_count == signals.post_count
            assert got.engagement == signals.engagement
            assert got.mean_sentiment == pytest.approx(
                signals.mean_sentiment
            )

    def test_incremental_merge_matches_fresh_merge(self):
        runtime = _advance_years(_sharded_runtime(3))
        maintained = runtime.deltas.state_dict()
        fresh = runtime.merged_deltas().state_dict()
        # The transient dirty bookkeeping differs (ticks consume it);
        # every aggregate must be identical.
        for key in ("observed", "votes", "buckets"):
            assert maintained[key] == fresh[key]


class TestRuntimeBehaviour:
    def test_rejects_empty_feed_list(self):
        with pytest.raises(ValueError):
            ShardedStreamRuntime([], build_ecm_database())

    def test_database_addition_adopted_across_shards(self):
        database = build_ecm_database()
        runtime = ShardedStreamRuntime(
            shard_feeds(_posts(), 2), database, target=ECM_TARGET
        )
        runtime.tick()
        from repro.core.keywords import AttackKeyword
        from repro.iso21434.enums import AttackVector

        database.add(
            AttackKeyword(keyword="newkeyword", vector=AttackVector.LOCAL)
        )
        tick = runtime.tick()
        assert tick is not None
        assert "newkeyword" in tick.dirty
        assert all(
            "newkeyword" in deltas.keywords for deltas in runtime.shard_deltas
        )
        assert "newkeyword" in runtime.deltas.keywords
        assert runtime.stream_stats["learned_keywords"] == ["newkeyword"]

    def test_filter_applies_per_shard_batch(self):
        flood = [p for p in _posts()]
        runtime = ShardedStreamRuntime(
            shard_feeds(flood, 2),
            build_ecm_database(),
            target=ECM_TARGET,
            post_filter=PostAuthenticityFilter(),
        )
        runtime.run()
        # One report per non-empty shard batch.
        assert runtime.filter_reports
        stats = runtime.stream_stats
        assert stats["posts_ingested"] + stats["posts_rejected"] == len(flood)

    def test_state_roundtrip_resumes_identically(self):
        reference = _advance_years(_sharded_runtime(3))

        interrupted = _advance_years(_sharded_runtime(3), last=2020)
        state = interrupted.state_dict()

        resumed = _sharded_runtime(3)
        resumed.load_state(state)
        _advance_years(resumed, first=2021)
        reference_tail = _alert_keys(reference)[len(interrupted.alerts):]
        assert _alert_keys(resumed)[len(interrupted.alerts):] == reference_tail
        assert (
            resumed.current_table.as_rows()
            == reference.current_table.as_rows()
        )

    def test_state_rejects_wrong_shard_count(self):
        state = _sharded_runtime(3).state_dict()
        with pytest.raises(ValueError):
            _sharded_runtime(2).load_state(state)


class TestMonitorIntegration:
    def test_sharded_monitor_matches_batch_monitor(self, ecm_framework):
        batch = PSPMonitor(ecm_framework, start_year=2015)
        batch_alerts = batch.run_years(2018, 2023)

        sharded = PSPMonitor(
            ecm_framework, start_year=2015, stream=True, shards=3
        )
        stream_alerts = sharded.run_years(2018, 2023)

        assert [a.upto_year for a in stream_alerts] == [
            a.upto_year for a in batch_alerts
        ]
        assert [a.changes for a in stream_alerts] == [
            a.changes for a in batch_alerts
        ]
        assert (
            sharded.current_table.as_rows() == batch.current_table.as_rows()
        )
        assert sharded.stream_runtime.shard_count == 3

    def test_shards_require_stream_mode(self, ecm_framework):
        with pytest.raises(ValueError):
            PSPMonitor(ecm_framework, start_year=2015, shards=2)

    def test_monitor_close_releases_the_runtime(self, ecm_framework):
        closed = []
        with PSPMonitor(
            ecm_framework, start_year=2015, stream=True, shards=2
        ) as monitor:
            monitor.tick(2018)
            runtime = monitor.stream_runtime
            original = runtime.executor.close
            runtime.executor.close = lambda: (closed.append(True), original())
        assert closed  # __exit__ reached the executor
