"""Tests for the streaming PSP runtime."""
