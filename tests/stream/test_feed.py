"""Tests for the event-sourced post feed."""

import datetime as dt

import pytest

from repro.social.corpus import Corpus
from repro.social.post import Post
from repro.stream.feed import FeedSource, PostEvent, SyntheticFeed, replay_posts


def _post(i, day, *, text="a #dpfdelete post"):
    return Post(
        post_id=f"p{i:03d}",
        text=text,
        author=f"user{i % 3}",
        created_at=dt.date(2020, 1, day),
    )


@pytest.fixture()
def feed():
    # Deliberately shuffled input: the feed must emit in date order.
    return SyntheticFeed([_post(3, 9), _post(0, 1), _post(2, 9), _post(1, 4)])


class TestSyntheticFeed:
    def test_events_are_date_ordered_with_gap_free_seq(self, feed):
        events = feed.events_after(-1)
        assert [e.seq for e in events] == [0, 1, 2, 3]
        dates = [e.created_at for e in events]
        assert dates == sorted(dates)
        # same-day ties break on post_id, matching the index sort order
        assert [e.post.post_id for e in events[2:]] == ["p002", "p003"]

    def test_cursor_resumes_without_replay(self, feed):
        first = feed.events_after(-1, limit=2)
        rest = feed.events_after(first[-1].seq)
        assert [e.seq for e in rest] == [2, 3]
        assert feed.events_after(3) == ()

    def test_until_caps_by_post_date(self, feed):
        events = feed.events_after(-1, until=dt.date(2020, 1, 4))
        assert [e.post.post_id for e in events] == ["p000", "p001"]

    def test_repeat_reads_are_stable(self, feed):
        assert feed.events_after(0) == feed.events_after(0)

    def test_micro_batches_partition_the_feed(self, feed):
        batches = list(feed.micro_batches(3))
        assert [len(b) for b in batches] == [3, 1]
        seqs = [e.seq for batch in batches for e in batch]
        assert seqs == [0, 1, 2, 3]

    def test_invalid_limits_rejected(self, feed):
        with pytest.raises(ValueError):
            feed.events_after(-1, limit=0)
        with pytest.raises(ValueError):
            list(feed.micro_batches(0))

    def test_from_corpus_and_protocol(self):
        corpus = Corpus([_post(0, 1), _post(1, 2)])
        feed = SyntheticFeed.from_corpus(corpus)
        assert len(feed) == 2
        assert isinstance(feed, FeedSource)
        assert replay_posts(feed.events) == corpus.index().posts


class TestPostEvent:
    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            PostEvent(seq=-1, post=_post(0, 1))
