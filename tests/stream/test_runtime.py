"""Tests for the streaming runtime orchestrator."""

import datetime as dt

import pytest

from repro.core.config import TargetApplication
from repro.core.errors import PSPError
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.monitor import PSPMonitor, TrendAlert
from repro.core.poisoning import PostAuthenticityFilter
from repro.iso21434.enums import AttackVector
from repro.social import ecm_reprogramming_corpus
from repro.social.post import Engagement, Post
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime
from repro.tara.lifecycle import LifecycleTracker, ReprocessingTrigger
from tests.conftest import build_ecm_database

ECM_TARGET = TargetApplication("car", "europe", "passenger")


def _ecm_runtime(**kwargs):
    return StreamRuntime(
        SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
        **kwargs,
    )


def _advance_years(runtime, first=2018, last=2023):
    alerts = []
    for year in range(first, last + 1):
        tick = runtime.advance_to(dt.date(year, 12, 31), upto_year=year)
        if tick.alert is not None:
            alerts.append(tick.alert)
    return alerts


class TestTickLoop:
    def test_first_tick_establishes_baseline_without_alert(self):
        runtime = _ecm_runtime()
        tick = runtime.advance_to(dt.date(2018, 12, 31), upto_year=2018)
        assert tick.retuned
        assert tick.alert is None
        assert runtime.current_table is not None
        assert runtime.alerts == ()

    def test_empty_first_tick_still_tunes_baseline(self):
        runtime = _ecm_runtime()
        tick = runtime.ingest(())
        assert tick.retuned
        assert runtime.current_table is not None

    def test_feed_drain_via_steps(self):
        runtime = _ecm_runtime(batch_size=500)
        ticks = runtime.run()
        assert sum(t.accepted for t in ticks) == len(
            ecm_reprogramming_corpus()
        )
        assert runtime.step() is None  # drained
        assert runtime.stream_stats["ticks"] == len(ticks)

    def test_ecm_trend_shift_matches_batch_monitor(self, ecm_framework):
        batch = PSPMonitor(ecm_framework, start_year=2015)
        batch_alerts = batch.run_years(2018, 2023)

        runtime = _ecm_runtime()
        stream_alerts = _advance_years(runtime)

        assert [a.upto_year for a in stream_alerts] == [
            a.upto_year for a in batch_alerts
        ]
        assert [a.changes for a in stream_alerts] == [
            a.changes for a in batch_alerts
        ]
        assert (
            runtime.current_table.as_rows()
            == batch.current_table.as_rows()
        )
        assert (
            runtime.current_result.sai.as_rows()
            == batch_alerts[-1].result.sai.as_rows()
        )


class TestConditionalRecompute:
    def test_outsider_only_batch_skips_retune(self):
        db = KeywordDatabase()
        db.add(
            AttackKeyword(
                keyword="dpfdelete",
                vector=AttackVector.PHYSICAL,
                owner_approved=True,
            )
        )
        db.add(
            AttackKeyword(
                keyword="relayattack",
                vector=AttackVector.ADJACENT,
                owner_approved=False,
            )
        )
        # A real insider baseline: the trailing outsider drip is well
        # under the default 10% staleness allowance, so the skip path
        # must hold even with the volume-drift policy active.
        posts = [
            Post(
                post_id=f"i{i}",
                text="my #dpfdelete kit",
                author=f"a{i}",
                created_at=dt.date(2020, 1, 1 + i),
            )
            for i in range(25)
        ] + [
            Post(
                post_id="o0",
                text="#relayattack thieves caught",
                author="b",
                created_at=dt.date(2020, 2, 1),
            ),
            Post(
                post_id="o1",
                text="more #relayattack warnings",
                author="c",
                created_at=dt.date(2020, 3, 1),
            ),
        ]
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(feed, db)
        first = runtime.ingest(feed.events_after(-1, limit=25))
        assert first.retuned  # baseline
        outsider_tick = runtime.ingest(feed.events_after(runtime.cursor))
        assert outsider_tick.dirty == ("relayattack",)
        assert not outsider_tick.retuned
        assert not outsider_tick.rescored
        assert outsider_tick.alert is None
        assert runtime.stream_stats["forced_retunes"] == 0

    def test_untouched_batch_skips_retune(self):
        db = KeywordDatabase()
        db.add(AttackKeyword(keyword="dpfdelete", owner_approved=True))
        posts = [
            Post(
                post_id="i0",
                text="my #dpfdelete kit",
                author="a",
                created_at=dt.date(2020, 1, 1),
            ),
            Post(
                post_id="n0",
                text="nothing to see here",
                author="b",
                created_at=dt.date(2020, 2, 1),
            ),
        ]
        feed = SyntheticFeed(posts)
        runtime = StreamRuntime(feed, db)
        runtime.ingest(feed.events_after(-1, limit=1))
        tick = runtime.ingest(feed.events_after(runtime.cursor))
        assert tick.dirty == ()
        assert not tick.retuned

    def test_rescore_only_on_fingerprint_change(self, fig4_network):
        runtime = _ecm_runtime(network=fig4_network)
        _advance_years(runtime)
        stats = runtime.stream_stats
        # every yearly tick retunes (insider keywords always dirty) but
        # the compiled model is re-scored only when ratings moved
        assert stats["retunes"] == 6
        assert stats["tara_rescores"] == len(runtime.alerts)
        for alert in runtime.alerts:
            assert alert.tara is not None

    def test_alert_shape_is_monitor_compatible(self):
        runtime = _ecm_runtime()
        alerts = _advance_years(runtime)
        assert alerts
        for alert in alerts:
            assert isinstance(alert, TrendAlert)
            assert "insider ratings moved" in alert.describe()
            assert alert.result.tuning.insider_table is not None


class TestPoisoningDefence:
    def _organic(self, i):
        return Post(
            post_id=f"org{i:03d}",
            text=f"my obd tuning log number {i}",
            author=f"owner{i}",
            created_at=dt.date(2020, 1, 1 + (i % 27)),
            engagement=Engagement(views=90 + 7 * (i % 5), likes=3 + i % 4),
        )

    def _flood(self, copies, day=15):
        return [
            Post(
                post_id=f"poison{i:03d}",
                text="everyone is doing the #dpfdelete now, get yours",
                author="botnet001",
                created_at=dt.date(2020, 1, day),
                engagement=Engagement(views=50000, likes=2500),
            )
            for i in range(copies)
        ]

    def test_duplicate_flood_rejected_before_dirtying(self):
        """A flood injected mid-stream never dirties its target keyword.

        The duplicate rule caps the near-identical copies and the
        robust engagement rule absorbs the survivors (bought-engagement
        signature), so the targeted keyword's aggregates stay untouched
        and no retune/alert fires.
        """
        db = KeywordDatabase()
        db.add(AttackKeyword(keyword="obdtuning", owner_approved=True))
        db.add(AttackKeyword(keyword="dpfdelete", owner_approved=True))
        organic = [self._organic(i) for i in range(40)]
        flood = self._flood(10)
        feed = SyntheticFeed(organic + flood)
        runtime = StreamRuntime(
            feed, db, post_filter=PostAuthenticityFilter()
        )
        baseline = runtime.ingest(feed.events_after(-1, limit=20))
        assert baseline.retuned

        tick = runtime.ingest(feed.events_after(runtime.cursor))
        # the whole mid-stream flood dies across the filter rules ...
        assert tick.rejected == len(flood)
        assert tick.accepted == len(organic) - 20
        # ... before it can dirty the targeted keyword
        assert "dpfdelete" not in tick.dirty
        assert runtime.deltas.window_count("dpfdelete") == 0
        assert tick.alert is None
        report = runtime.filter_reports[-1]
        assert {r.post.author for r in report.rejected} == {"botnet001"}

    def test_unfiltered_runtime_is_poisoned(self):
        """Control: without the filter the flood dirties the keyword."""
        db = KeywordDatabase()
        db.add(AttackKeyword(keyword="obdtuning", owner_approved=True))
        db.add(AttackKeyword(keyword="dpfdelete", owner_approved=True))
        organic = [self._organic(i) for i in range(40)]
        feed = SyntheticFeed(organic + self._flood(10))
        runtime = StreamRuntime(feed, db)
        tick = runtime.ingest(feed.events_after(-1))
        assert "dpfdelete" in tick.dirty
        assert runtime.deltas.window_count("dpfdelete") == 10


class TestLifecycleAndSafety:
    def test_alerts_recorded_on_lifecycle_tracker(self):
        tracker = LifecycleTracker()
        runtime = _ecm_runtime(tracker=tracker)
        alerts = _advance_years(runtime)
        assert tracker.reprocessing_count(
            ReprocessingTrigger.PSP_TREND_SHIFT
        ) == len(alerts)

    def test_database_addition_mid_stream_adopted(self):
        runtime = _ecm_runtime()
        runtime.advance_to(dt.date(2018, 12, 31))
        runtime._database.add(AttackKeyword(keyword="newkeyword"))
        tick = runtime.advance_to(dt.date(2019, 12, 31))
        assert "newkeyword" in runtime.deltas.keywords
        assert "newkeyword" in tick.dirty
        assert runtime.stream_stats["learned_keywords"] == ["newkeyword"]

    def test_database_annotation_mid_stream_reclassifies(self):
        runtime = _ecm_runtime()
        runtime.advance_to(dt.date(2018, 12, 31))
        keyword = runtime.deltas.keywords[0]
        runtime._database.annotate(keyword, owner_approved=True)
        tick = runtime.advance_to(dt.date(2019, 12, 31))
        assert keyword in tick.dirty

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            _ecm_runtime(batch_size=0)
