"""Streaming keyword learning: mid-stream adoption == from-scratch run.

The regression the backfill machinery must hold: a keyword learned (or
added) mid-stream, with all its history already ingested — some of it
sealed into cold segments — ends up with exactly the aggregates, votes
and SAI evidence of a run that tracked the keyword from the first post.
Integer fields (window counts, engagement sums, votes) match exactly;
float scores match to relative 1e-9 (summation-order tolerance).
"""

import datetime as dt

import pytest

from repro.core.config import TargetApplication
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import AttackVector
from repro.social.post import Engagement, Post
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime
from repro.stream.sharding import ShardedStreamRuntime, shard_feeds

TARGET = TargetApplication("car", "europe", "passenger")

#: #stage1 co-occurs with the seed #dpfdelete in well over the default
#: learning support, so ``learn_keywords`` reliably mines it.
TEXT_CYCLE = (
    "did my #dpfdelete with #stage1 kit",
    "#dpfdelete plus #stage1 is the combo love it",
    "my mechanic hates the #dpfdelete",
    "#stage1 tune on the dyno today",
    "the dealer flagged a #dpfdelete van",
    "#dpfdelete and #stage1 back to back",
)

REGIONS = ("europe", "europe", "europe", "americas")


def _posts(count=240, start=dt.date(2019, 1, 3)):
    return [
        Post(
            post_id=f"p{i:04d}",
            text=TEXT_CYCLE[i % len(TEXT_CYCLE)],
            author=f"user{i % 5}",
            created_at=start + dt.timedelta(days=i * 3),
            region=REGIONS[i % len(REGIONS)],
            engagement=Engagement(
                views=10 * i, likes=i % 7, reposts=i % 3, replies=i % 5
            ),
        )
        for i in range(count)
    ]


def _database():
    return KeywordDatabase(
        [AttackKeyword(keyword="dpfdelete", vector=AttackVector.LOCAL)]
    )


def _database_with_learned():
    db = _database()
    db.add(AttackKeyword(keyword="stage1"))
    return db


def _assert_tracker_parity(streamed, scratch, keyword="stage1"):
    assert streamed.window_count(keyword) == scratch.window_count(keyword)
    assert streamed.votes(keyword) == scratch.votes(keyword)
    assert streamed.window_total() == scratch.window_total()
    got = streamed.signals()[keyword]
    want = scratch.signals()[keyword]
    assert got.post_count == want.post_count
    assert got.engagement == want.engagement
    assert got.mean_sentiment == pytest.approx(
        want.mean_sentiment, rel=1e-9, abs=1e-12
    )


def _runtime(posts, database, **kwargs):
    return StreamRuntime(
        SyntheticFeed(posts),
        database,
        target=TARGET,
        since_year=2019,
        batch_size=40,
        **kwargs,
    )


class TestMidStreamLearning:
    @pytest.mark.parametrize(
        "retention",
        [{}, {"warm_span_days": 45, "cold_age_days": 120}],
        ids=["flat", "tiered"],
    )
    def test_learned_keyword_matches_from_scratch(self, retention):
        posts = _posts()
        streamed = _runtime(posts, _database(), **retention)
        # Ingest two thirds of the stream, learn, then finish.
        for _ in range(4):
            assert streamed.step() is not None
        learned = streamed.learn_keywords()
        assert "stage1" in learned
        assert "stage1" in streamed.deltas.keywords
        streamed.run()

        scratch = _runtime(posts, _database_with_learned(), **retention)
        scratch.run()

        _assert_tracker_parity(streamed.deltas, scratch.deltas)
        assert streamed.stream_stats["learned_keywords"] == ["stage1"]
        if retention:
            stats = streamed.index.segment_stats
            assert stats["cold_seals"] > 0, "learning never crossed a seal"

    def test_learned_keyword_sai_matches_from_scratch(self):
        posts = _posts()
        retention = {"warm_span_days": 45, "cold_age_days": 120}
        streamed = _runtime(posts, _database(), **retention)
        for _ in range(4):
            streamed.step()
        assert "stage1" in streamed.learn_keywords()
        streamed.run()

        scratch = _runtime(posts, _database_with_learned(), **retention)
        scratch.run()

        assert streamed.current_result is not None
        got = {
            row[0]: row[1:]
            for row in streamed.current_result.sai.as_rows()
        }
        want = {
            row[0]: row[1:] for row in scratch.current_result.sai.as_rows()
        }
        assert set(got) == set(want)
        for keyword, (score, probability, count) in want.items():
            assert got[keyword][2] == count
            assert got[keyword][0] == pytest.approx(
                score, rel=1e-9, abs=1e-12
            )
            assert got[keyword][1] == pytest.approx(
                probability, rel=1e-9, abs=1e-12
            )

    def test_learning_before_any_seal_still_matches(self):
        posts = _posts(count=30)
        streamed = _runtime(
            posts, _database(), warm_span_days=45, cold_age_days=120
        )
        streamed.step()
        assert "stage1" in streamed.learn_keywords()
        streamed.run()
        scratch = _runtime(
            posts, _database_with_learned(),
            warm_span_days=45, cold_age_days=120,
        )
        scratch.run()
        _assert_tracker_parity(streamed.deltas, scratch.deltas)


class TestShardedLearning:
    def test_sharded_learned_keyword_matches_from_scratch(self):
        posts = _posts()
        retention = dict(warm_span_days=45, cold_age_days=120)
        streamed = ShardedStreamRuntime(
            shard_feeds(posts, 2),
            _database(),
            target=TARGET,
            since_year=2019,
            batch_size=40,
            **retention,
        )
        for _ in range(2):
            assert streamed.tick() is not None
        learned = streamed.learn_keywords()
        assert "stage1" in learned
        streamed.run()

        scratch = ShardedStreamRuntime(
            shard_feeds(posts, 2),
            _database_with_learned(),
            target=TARGET,
            since_year=2019,
            batch_size=40,
            **retention,
        )
        scratch.run()

        _assert_tracker_parity(streamed.deltas, scratch.deltas)
        for shard_streamed, shard_scratch in zip(
            streamed.shard_deltas, scratch.shard_deltas
        ):
            _assert_tracker_parity(shard_streamed, shard_scratch)
        assert streamed.stream_stats["learned_keywords"] == ["stage1"]
        streamed.close()
        scratch.close()
