"""Long-horizon replay harness: acceptance matrix and unit tests.

The acceptance matrix drives every registered scenario through a
multi-month sharded replay and requires all three audited invariants
(alert parity vs the batch monitor, checkpoint/resume parity, bounded
index memory) to hold — the PR's headline guarantee.
"""

import datetime as dt

import pytest

from repro.social.post import Post
from repro.social.registry import (
    OutageWindow,
    default_registry,
    get_scenario,
    scenario_names,
)
from repro.social.resilience import TransientPlatformError
from repro.stream.feed import SyntheticFeed
from repro.stream.replay import (
    BestEffortFeed,
    DelayedFeed,
    FlakyFeed,
    ReplayReport,
    RetryingFeed,
    month_boundaries,
    replay_poison_defence,
    replay_scenario,
)


class TestMonthBoundaries:
    def test_monthly_cadence(self):
        boundaries = month_boundaries(2020, 2020)
        assert len(boundaries) == 12
        assert boundaries[0] == dt.date(2020, 1, 31)
        assert boundaries[1] == dt.date(2020, 2, 29)  # leap year
        assert boundaries[-1] == dt.date(2020, 12, 31)

    def test_quarterly_and_yearly_cadence(self):
        quarters = month_boundaries(2020, 2021, cadence="quarterly")
        assert len(quarters) == 8
        assert quarters[0] == dt.date(2020, 3, 31)
        years = month_boundaries(2020, 2022, cadence="yearly")
        assert years == [
            dt.date(2020, 12, 31),
            dt.date(2021, 12, 31),
            dt.date(2022, 12, 31),
        ]

    def test_months_cap(self):
        assert len(month_boundaries(2020, 2023, months=5)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            month_boundaries(2021, 2020)
        with pytest.raises(ValueError):
            month_boundaries(2020, 2021, months=0)
        with pytest.raises(ValueError):
            month_boundaries(2020, 2021, cadence="hourly")


class TestDelayedFeed:
    def _posts(self):
        return [
            Post(
                post_id=f"forum:f{i}",
                text="#dpfdelete chat",
                author=f"u{i}",
                created_at=dt.date(2021, 1, 10 + i),
            )
            for i in range(3)
        ] + [
            Post(
                post_id="twitter:t0",
                text="#dpfdelete chat",
                author="t",
                created_at=dt.date(2021, 1, 12),
            )
        ]

    def _outage(self):
        return OutageWindow(
            platform="forum",
            start=dt.date(2021, 1, 1),
            end=dt.date(2021, 1, 31),
        )

    def test_outage_posts_arrive_after_the_window(self):
        feed = DelayedFeed(self._posts(), [self._outage()])
        mid = feed.events_after(-1, until=dt.date(2021, 1, 20))
        # Only the unaffected twitter post is visible mid-outage.
        assert [e.post.post_id for e in mid] == ["twitter:t0"]
        after = feed.events_after(-1, until=dt.date(2021, 2, 1))
        assert len(after) == 4

    def test_created_at_is_preserved(self):
        feed = DelayedFeed(self._posts(), [self._outage()])
        backfilled = feed.events_after(-1, until=dt.date(2021, 2, 1))
        dates = {e.post.post_id: e.post.created_at for e in backfilled}
        assert dates["forum:f0"] == dt.date(2021, 1, 10)

    def test_no_outage_matches_synthetic_order(self):
        posts = self._posts()
        delayed = DelayedFeed(posts)
        synthetic = SyntheticFeed(posts)
        assert [e.post.post_id for e in delayed.events_after(-1)] == [
            e.post.post_id for e in synthetic.events_after(-1)
        ]

    def test_partition_preserves_the_union(self):
        feed = DelayedFeed(self._posts(), [self._outage()])
        shards = feed.partition(3)
        union = sorted(
            e.post.post_id for shard in shards for e in shard.events_after(-1)
        )
        assert union == sorted(p.post_id for p in self._posts())


class TestResilienceWrappers:
    def _feed(self):
        return SyntheticFeed([
            Post(
                post_id=f"p{i}",
                text="#dpfdelete kit",
                author=f"u{i}",
                created_at=dt.date(2021, 1, 1 + i),
            )
            for i in range(4)
        ])

    def test_retrying_feed_rides_out_transient_failures(self):
        flaky = FlakyFeed(self._feed(), failures=2)
        retrying = RetryingFeed(flaky, max_attempts=3)
        events = retrying.events_after(-1)
        assert len(events) == 4
        assert retrying.retries == 2

    def test_retrying_feed_gives_up_eventually(self):
        flaky = FlakyFeed(self._feed(), failures=5)
        retrying = RetryingFeed(flaky, max_attempts=2)
        with pytest.raises(TransientPlatformError):
            retrying.events_after(-1)

    def test_best_effort_feed_degrades_to_empty(self):
        flaky = FlakyFeed(self._feed(), failures=1)
        best_effort = BestEffortFeed(flaky)
        assert best_effort.events_after(-1) == ()
        assert best_effort.degraded_polls == 1
        # The failure cleared: the stable cursor re-offers everything.
        assert len(best_effort.events_after(-1)) == 4


class TestStreamingResilience:
    """Injected platform failures must not corrupt the alert stream."""

    def _sharded(self, feeds, config=None):
        from repro.stream.sharding import ShardedStreamRuntime

        spec = get_scenario("ecm")
        return ShardedStreamRuntime(
            feeds,
            spec.database(),
            target=spec.target,
            since_year=spec.start_year,
            config=config,
        )

    def _alerts(self, runtime, spec):
        alerts = []
        for year in range(spec.start_year, spec.end_year + 1):
            tick = runtime.advance_to(
                dt.date(year, 12, 31), upto_year=year
            )
            if tick.alert is not None:
                alerts.append((year, tick.alert.changes))
        runtime.close()
        return alerts

    def test_transient_failures_with_retries_keep_alert_parity(self):
        spec = get_scenario("ecm")
        posts = list(spec.corpus().posts)
        from repro.stream.sharding import shard_feeds

        reference = self._alerts(
            self._sharded(shard_feeds(posts, 2)), spec
        )
        wrapped = tuple(
            RetryingFeed(FlakyFeed(feed, failures=2), max_attempts=4)
            for feed in shard_feeds(posts, 2)
        )
        resilient = self._alerts(self._sharded(wrapped), spec)
        assert resilient == reference
        assert reference  # the scenario is alert-bearing

    def test_persistent_outage_never_drops_other_platforms_alerts(self):
        # Split the ECM corpus into the insider keywords feed and the
        # rest; the "rest" platform dies permanently.  Degradation must
        # deliver exactly the alerts of a run where that platform simply
        # has nothing — never fewer.
        spec = get_scenario("ecm")
        posts = list(spec.corpus().posts)
        insider_only = [p for p in posts if "relayattack" not in p.text]
        outsider_only = [p for p in posts if "relayattack" in p.text]

        reference = self._alerts(
            self._sharded(
                (SyntheticFeed(insider_only), SyntheticFeed([]))
            ),
            spec,
        )
        dead_platform = BestEffortFeed(
            FlakyFeed(SyntheticFeed(outsider_only), failures=10**9)
        )
        degraded = self._alerts(
            self._sharded(
                (SyntheticFeed(insider_only), dead_platform)
            ),
            spec,
        )
        assert degraded == reference
        assert reference  # non-failing keywords still alert
        assert dead_platform.degraded_polls > 0


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("name", scenario_names())
    def test_three_month_sharded_replay(self, name):
        report = replay_scenario(name, months=3, shards=2)
        assert report.boundaries == 3
        assert report.alert_parity, report.describe()
        assert report.table_parity, report.describe()
        assert report.sai_parity, report.describe()
        assert report.checkpoint_parity, report.describe()
        assert report.memory_bounded, report.describe()
        assert report.ok

    @pytest.mark.parametrize("name", scenario_names())
    def test_year_one_sharded_replay(self, name):
        report = replay_scenario(name, months=12, shards=2)
        assert report.ok, report.describe()

    def test_full_span_replay_is_alert_bearing(self):
        report = replay_scenario("ecm", shards=2)
        assert report.ok, report.describe()
        assert report.stream_alerts >= 1
        assert report.stream_alerts == report.batch_alerts

    def test_single_shard_exercises_file_checkpoints(self, tmp_path):
        report = replay_scenario(
            "motorcycle", months=12, shards=1, checkpoint_dir=tmp_path
        )
        assert report.ok, report.describe()
        # The delta-chain restore actually happened from this directory.
        assert list(tmp_path.iterdir())

    def test_outage_scenario_full_span(self):
        report = replay_scenario("busfleet", shards=2)
        assert report.ok, report.describe()
        # The outage shadow was real: some boundaries were excluded and
        # convergence was still reached at the end.
        assert report.excluded_boundaries > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            replay_scenario("ecm", shards=0)
        with pytest.raises(KeyError):
            replay_scenario("submarine")


class TestPoisonDefence:
    def test_marine_burst_is_fully_absorbed(self):
        report = replay_poison_defence("marine")
        assert report.poison_posts == 20
        assert report.all_poison_rejected
        assert report.organic_rejected == 0
        assert report.alerts_match
        assert report.table_match
        assert report.ok
        assert "PASS" in report.describe()

    def test_scenario_without_bursts_rejected(self):
        with pytest.raises(ValueError, match="no poisoning bursts"):
            replay_poison_defence("ecm")


class TestReplayReport:
    def test_ok_requires_every_invariant(self):
        base = dict(
            scenario="x", shards=1, boundaries=3, posts=10,
            stream_alerts=0, batch_alerts=0, retunes=3, forced_retunes=0,
            excluded_boundaries=0, alert_parity=True, table_parity=True,
            sai_parity=True, checkpoint_parity=True, memory_bounded=True,
        )
        assert ReplayReport(**base).ok
        for flag in (
            "alert_parity", "table_parity", "sai_parity",
            "checkpoint_parity", "memory_bounded",
        ):
            broken = dict(base)
            broken[flag] = False
            report = ReplayReport(**broken)
            assert not report.ok
            assert "FAIL" in report.describe()


class TestSeedStability:
    @pytest.mark.parametrize("name", scenario_names())
    def test_replay_is_reproducible(self, name):
        # Two independent replays of the same scenario must agree on
        # every counter: the whole pipeline is deterministic end to end.
        first = replay_scenario(name, months=6, shards=2)
        second = replay_scenario(name, months=6, shards=2)
        assert first.ok and second.ok
        assert first.stream_alerts == second.stream_alerts
        assert first.retunes == second.retunes
        assert first.posts == second.posts


def test_registry_and_replay_agree_on_scenario_count():
    assert len(default_registry()) >= 8


class TestFeedWrapperCounters:
    """The resilience wrappers surface their behaviour as feed_* counters."""

    def _feed(self):
        return SyntheticFeed([
            Post(
                post_id=f"p{i}",
                text="#dpfdelete kit",
                author=f"u{i}",
                created_at=dt.date(2021, 1, 1 + i),
            )
            for i in range(4)
        ])

    def test_retrying_feed_counts_retries(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        flaky = FlakyFeed(self._feed(), failures=2, metrics=registry)
        retrying = RetryingFeed(flaky, max_attempts=3, metrics=registry)
        retrying.events_after(-1)
        collected = registry.collect()
        assert collected["feed_retries_total"].value() == 2
        assert collected["feed_failures_total"].value() == 2

    def test_best_effort_feed_counts_dropped_batches(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        flaky = FlakyFeed(self._feed(), failures=1, metrics=registry)
        best_effort = BestEffortFeed(flaky, metrics=registry)
        best_effort.events_after(-1)
        best_effort.events_after(-1)
        assert (
            registry.collect()["feed_dropped_batches_total"].value() == 1
        )

    def _outage_posts(self):
        posts = [
            Post(
                post_id=f"forum:f{i}",
                text="#dpfdelete chat",
                author=f"u{i}",
                created_at=dt.date(2021, 1, 10 + i),
            )
            for i in range(3)
        ]
        outage = OutageWindow(
            platform="forum",
            start=dt.date(2021, 1, 1),
            end=dt.date(2021, 1, 31),
        )
        return posts, [outage]

    def test_delayed_feed_counts_each_delayed_event_once(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        posts, outages = self._outage_posts()
        feed = DelayedFeed(posts, outages, metrics=registry)
        assert registry.collect()["feed_delayed_events_total"].value() == 3

        feed.partition(3)
        # Partition children must not re-count the same delays.
        assert registry.collect()["feed_delayed_events_total"].value() == 3

    def test_unwrapped_feeds_emit_nothing(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        DelayedFeed(self._outage_posts()[0], metrics=registry)
        # No outages: the counter exists but records zero delays.
        assert registry.collect()["feed_delayed_events_total"].value() == 0


class TestReplayTelemetry:
    def test_report_carries_stages_counters_and_audit_outcomes(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        report = replay_scenario(
            "excavator", months=2, shards=2, metrics=registry
        )
        assert report.ok, report.describe()

        assert report.stage_latencies["tick"]["count"] > 0
        assert "shard_map" in report.stage_latencies
        assert report.feed_counters.get("feed_delayed_events_total", 0) >= 0

        audits = registry.collect()["replay_audit_outcomes_total"]
        for invariant in (
            "alert_parity",
            "table_parity",
            "sai_parity",
            "checkpoint_parity",
            "memory_bounded",
        ):
            assert (
                audits.value(invariant=invariant, outcome="pass") == 1
            ), invariant
            assert audits.value(invariant=invariant, outcome="fail") == 0
        boundaries = registry.collect()["replay_boundaries_total"]
        assert boundaries.value() == report.boundaries

        text = report.describe()
        assert "stage" in text

    def test_uninstrumented_replay_report_is_unchanged(self):
        report = replay_scenario("excavator", months=2, shards=2)
        assert report.stage_latencies == {}
        assert report.feed_counters == {}
        assert "stage" not in report.describe()
