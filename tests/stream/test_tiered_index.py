"""Tests for the time-decay tiered corpus index."""

import datetime as dt

import pytest

from repro.core.config import TargetApplication
from repro.social import ecm_reprogramming_corpus
from repro.social.index import CorpusIndex
from repro.social.post import Post
from repro.stream.checkpoint import (
    checkpoint_state,
    restore_runtime,
    save_checkpoint,
)
from repro.stream.feed import SyntheticFeed
from repro.stream.index import StreamingCorpusIndex
from repro.stream.runtime import StreamRuntime
from repro.stream.tiers import (
    DEFAULT_COLD_AGE_DAYS,
    DEFAULT_WARM_SPAN_DAYS,
    TieredCorpusIndex,
    build_stream_index,
)
from tests.conftest import build_ecm_database

ECM_TARGET = TargetApplication("car", "europe", "passenger")

KEYWORDS = ("dpfdelete", "egrremoval", "delet", "stolen", "nomatch")

TEXTS = (
    "my #dpfdelete kit arrived",
    "deleting the egr today",
    "stolen excavator warning",
    "dpf delete done at the workshop",
    "#egr_removal before and after",
)


def _daily_posts(days, *, start=dt.date(2020, 1, 1), step=1):
    """A date-ordered stream, one post every ``step`` days."""
    return [
        Post(
            post_id=f"p{i:04d}",
            text=TEXTS[i % len(TEXTS)],
            author=f"user{i % 3}",
            created_at=start + dt.timedelta(days=i * step),
        )
        for i in range(days)
    ]


def _assert_same_queries(tiered, rebuilt):
    assert [p.post_id for p in tiered.posts] == [
        p.post_id for p in rebuilt.posts
    ]
    got = tiered.search_many(KEYWORDS)
    want = rebuilt.search_many(KEYWORDS)
    for keyword in KEYWORDS:
        assert [p.post_id for p in got[keyword]] == [
            p.post_id for p in want[keyword]
        ], keyword


class TestTierLifecycle:
    def test_full_lifecycle_reaches_every_tier(self):
        posts = _daily_posts(500)
        tiered = TieredCorpusIndex(
            compact_threshold=1000, warm_span_days=30, cold_age_days=120
        )
        for i in range(0, len(posts), 40):
            tiered.append(posts[i : i + 40])
        stats = tiered.segment_stats
        assert stats["layout"] == "tiered"
        assert stats["hot_seals"] > 0
        assert stats["cold_seals"] > 0
        tiers = stats["tiers"]
        assert tiers["hot"]["posts"] > 0
        assert tiers["warm"]["posts"] > 0
        assert tiers["cold"]["posts"] > 0
        assert tiers["cold"]["sidecars"] == 0  # no sidecar keywords set
        _assert_same_queries(tiered, CorpusIndex(posts))

    def test_warm_consolidation_merges_chunks(self):
        # Many small appends inside one 90-day span: each hot seal adds
        # a chunk, every WARM_CONSOLIDATE_CHUNKS-th merges the span.
        posts = _daily_posts(80)
        tiered = TieredCorpusIndex(
            compact_threshold=5, warm_span_days=90, cold_age_days=3650
        )
        for i in range(0, len(posts), 5):
            tiered.append(posts[i : i + 5])
        stats = tiered.segment_stats
        assert stats["consolidations"] >= 2
        assert stats["tiers"]["warm"]["chunks"] < stats["hot_seals"]
        _assert_same_queries(tiered, CorpusIndex(posts))

    def test_seal_boundary_dates_route_to_their_span(self):
        # Posts exactly on span boundaries (ordinal % span == 0 and the
        # day before) must land in adjacent spans without loss.
        start = dt.date.fromordinal(
            (dt.date(2020, 1, 1).toordinal() // 30 + 1) * 30
        )
        posts = [
            Post(
                post_id=f"b{i}",
                text="dpf delete on the boundary",
                author="a",
                created_at=start + dt.timedelta(days=delta),
            )
            for i, delta in enumerate((-1, 0, 29, 30, 59, 60, 400))
        ]
        tiered = TieredCorpusIndex(
            compact_threshold=1, warm_span_days=30, cold_age_days=90
        )
        for post in posts:
            tiered.append([post])
        assert len(tiered) == len(posts)
        _assert_same_queries(tiered, CorpusIndex(posts))

    def test_duplicate_append_is_atomic(self):
        posts = _daily_posts(10)
        tiered = TieredCorpusIndex(posts, warm_span_days=30)
        before = tiered.segment_stats
        fresh = Post(
            post_id="new", text="dpf delete", author="a",
            created_at=dt.date(2020, 2, 1),
        )
        with pytest.raises(ValueError, match="duplicate post id 'p0003'"):
            tiered.append([fresh, posts[3]])
        assert tiered.segment_stats == before
        assert "new" not in tiered
        tiered.append([fresh])  # the batch was not partially applied
        assert "new" in tiered

    def test_windowed_queries_route_per_tier(self):
        posts = _daily_posts(400)
        tiered = TieredCorpusIndex(
            posts, compact_threshold=1000, warm_span_days=30,
            cold_age_days=120,
        )
        tiered.append(
            [
                Post(
                    post_id="tail", text="dpf delete fresh", author="a",
                    created_at=posts[-1].created_at,
                )
            ]
        )
        rebuilt = CorpusIndex(list(posts) + [tiered.posts[-1]])
        for since, until in (
            (None, posts[50].created_at),        # cold only
            (posts[380].created_at, None),       # warm + hot only
            (posts[100].created_at, posts[390].created_at),
            (dt.date(2030, 1, 1), None),         # empty
        ):
            got = tiered.search_many(KEYWORDS, since=since, until=until)
            want = rebuilt.search_many(KEYWORDS, since=since, until=until)
            for keyword in KEYWORDS:
                assert [p.post_id for p in got[keyword]] == [
                    p.post_id for p in want[keyword]
                ], (keyword, since, until)

    def test_interner_pruned_on_cold_seal(self):
        posts = [
            Post(
                post_id=f"p{i:04d}",
                text=f"unique dpf delete text number {i}",
                author="a",
                created_at=dt.date(2020, 1, 1) + dt.timedelta(days=i),
            )
            for i in range(300)
        ]
        tiered = TieredCorpusIndex(
            posts, compact_threshold=1000, warm_span_days=30,
            cold_age_days=60,
        )
        stats = tiered.segment_stats
        assert stats["interner_evicted"] > 0
        retained = set(tiered.retained_texts())
        # Hot posts intern lazily (on the first hot-segment build), so
        # the pool never exceeds the retained hot+warm texts...
        assert stats["interned_texts"] <= len(retained)
        # Cold history still materializes on demand.
        _assert_same_queries(tiered, CorpusIndex(posts))
        # ...and converges to exactly them once the hot tier is indexed.
        assert tiered.segment_stats["interned_texts"] == len(retained)


class TestStatsAndState:
    def test_segment_stats_keeps_flat_compatible_keys(self):
        flat = StreamingCorpusIndex(_daily_posts(5))
        tiered = TieredCorpusIndex(_daily_posts(5), warm_span_days=30)
        missing = set(flat.segment_stats) - set(tiered.segment_stats)
        assert not missing
        for key in (
            "layout", "warm_span_days", "cold_age_days", "hot_seals",
            "consolidations", "cold_seals", "interner_evicted", "tiers",
        ):
            assert key in tiered.segment_stats

    def test_state_dict_roundtrip_via_factory(self):
        posts = _daily_posts(200)
        tiered = build_stream_index(
            posts, warm_span_days=30, cold_age_days=90
        )
        assert isinstance(tiered, TieredCorpusIndex)
        restored = build_stream_index(warm_span_days=30, cold_age_days=90)
        restored.load_state(tiered.state_dict())
        assert restored.segment_stats == tiered.segment_stats
        _assert_same_queries(restored, CorpusIndex(posts))

    def test_factory_defaults(self):
        assert isinstance(build_stream_index(), StreamingCorpusIndex)
        only_warm = build_stream_index(warm_span_days=30)
        assert isinstance(only_warm, TieredCorpusIndex)
        assert only_warm.segment_stats["cold_age_days"] == (
            DEFAULT_COLD_AGE_DAYS
        )
        only_cold = build_stream_index(cold_age_days=120)
        assert only_cold.segment_stats["warm_span_days"] == (
            DEFAULT_WARM_SPAN_DAYS
        )

    def test_flat_index_rejects_tiered_snapshot(self):
        tiered = TieredCorpusIndex(_daily_posts(5), warm_span_days=30)
        flat = StreamingCorpusIndex()
        with pytest.raises(ValueError, match="tiered-index state_dict"):
            flat.load_state(tiered.state_dict())

    def test_tiered_index_rejects_flat_snapshot(self):
        flat = StreamingCorpusIndex(_daily_posts(5))
        tiered = TieredCorpusIndex(warm_span_days=30)
        with pytest.raises(ValueError):
            tiered.load_state(flat.state_dict())


class TestRuntimeIntegration:
    def _runtime(self, **kwargs):
        return StreamRuntime(
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            since_year=2015,
            batch_size=200,
            warm_span_days=60,
            cold_age_days=180,
            **kwargs,
        )

    def _alert_keys(self, runtime):
        return [
            (
                alert.upto_year,
                alert.changes,
                alert.result.insider_table.as_rows(),
            )
            for alert in runtime.alerts
        ]

    def test_runtime_seals_and_matches_flat_alerts(self):
        tiered = self._runtime()
        tiered.run()
        stats = tiered.stream_stats["index"]
        assert stats["layout"] == "tiered"
        assert stats["cold_seals"] > 0
        assert stats["tiers"]["cold"]["sidecars"] > 0

        flat = StreamRuntime(
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            since_year=2015,
            batch_size=200,
        )
        flat.run()
        assert self._alert_keys(tiered) == self._alert_keys(flat)

    def test_checkpoint_resume_across_a_tier_seal(self, tmp_path):
        reference = self._runtime()
        reference.run()

        interrupted = self._runtime()
        sealed_at = None
        while True:
            tick = interrupted.step()
            assert tick is not None, "feed drained before any cold seal"
            if interrupted.index.segment_stats["cold_seals"] > 0:
                sealed_at = tick.seq
                break
        path = save_checkpoint(interrupted, tmp_path / "seal.ckpt.json")
        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
            build_ecm_database(),
            target=ECM_TARGET,
            batch_size=200,
            warm_span_days=60,
            cold_age_days=180,
        )

        def stats_of(runtime):
            # Interning is lazy (hot posts join the pool when the hot
            # segment is first indexed) — query first so live and
            # restored pools are both fully materialized.
            runtime.index.search_many(("dpfdelete",))
            return runtime.index.segment_stats

        assert stats_of(resumed) == stats_of(interrupted)
        resumed.run()
        assert sealed_at is not None
        assert self._alert_keys(resumed) == self._alert_keys(reference)
        assert stats_of(resumed) == stats_of(reference)

    def test_checkpoint_metadata_carries_tier_stats(self):
        runtime = self._runtime()
        runtime.run()
        payload = checkpoint_state(runtime)
        assert payload["metadata"]["segment_stats"] == (
            runtime.index.segment_stats
        )
        assert "metadata" not in payload["runtime"]
