"""Tests for the appendable delta-segment corpus index."""

import datetime as dt

import pytest

from repro.social.index import CorpusIndex
from repro.social.post import Post
from repro.stream.index import StreamingCorpusIndex


def _post(i, day, text, month=1):
    return Post(
        post_id=f"p{i:03d}",
        text=text,
        author="a",
        created_at=dt.date(2020, month, day),
    )


POSTS = [
    _post(0, 1, "my #dpfdelete kit arrived"),
    _post(1, 2, "deleting the egr today"),
    _post(2, 3, "stolen excavator warning"),
    _post(3, 4, "dpf delete done at the workshop"),
    _post(4, 5, "#egr_removal before and after"),
]

KEYWORDS = ("dpfdelete", "egrremoval", "delet", "stolen", "nomatch")


class TestAppendEquivalence:
    def test_appended_equals_rebuilt(self):
        streaming = StreamingCorpusIndex(POSTS[:2])
        streaming.append(POSTS[2:4])
        streaming.append(POSTS[4:])
        rebuilt = CorpusIndex(POSTS)
        got = streaming.search_many(KEYWORDS)
        want = rebuilt.search_many(KEYWORDS)
        for keyword in KEYWORDS:
            assert [p.post_id for p in got[keyword]] == [
                p.post_id for p in want[keyword]
            ], keyword

    def test_out_of_order_appends_keep_global_sort(self):
        streaming = StreamingCorpusIndex(POSTS[3:])
        streaming.append(POSTS[:3])  # older than the base segment
        assert [p.post_id for p in streaming.posts] == [
            p.post_id for p in CorpusIndex(POSTS).posts
        ]
        assert [p.post_id for p in streaming.matching("delet")] == [
            p.post_id for p in CorpusIndex(POSTS).matching("delet")
        ]

    def test_window_and_limit(self):
        streaming = StreamingCorpusIndex(POSTS[:3])
        streaming.append(POSTS[3:])
        got = streaming.search_many(
            ("dpfdelete",), since=dt.date(2020, 1, 2), limit=1
        )
        assert [p.post_id for p in got["dpfdelete"]] == ["p003"]

    def test_empty_index_answers_empty(self):
        streaming = StreamingCorpusIndex()
        assert len(streaming) == 0
        assert streaming.matching("dpfdelete") == []


class TestMaintenance:
    def test_duplicate_ids_rejected(self):
        streaming = StreamingCorpusIndex(POSTS[:2])
        with pytest.raises(ValueError, match="duplicate post id"):
            streaming.append([POSTS[0]])
        assert "p000" in streaming
        assert "p004" not in streaming

    def test_rejected_append_is_atomic(self):
        streaming = StreamingCorpusIndex(POSTS[:2])
        streaming.matching("dpfdelete")  # build the tail index
        with pytest.raises(ValueError, match="duplicate post id"):
            streaming.append([POSTS[2], POSTS[3], POSTS[0]])
        # nothing from the failed batch leaked in
        assert len(streaming) == 2
        assert "p002" not in streaming
        assert streaming.matching("stolen") == []
        # a corrected retry of the same posts succeeds
        assert streaming.append(POSTS[2:4]) == 2
        assert [p.post_id for p in streaming.matching("stolen")] == ["p002"]

    def test_intra_batch_duplicates_rejected(self):
        streaming = StreamingCorpusIndex()
        with pytest.raises(ValueError, match="duplicate post id"):
            streaming.append([POSTS[0], POSTS[0]])
        assert len(streaming) == 0

    def test_compaction_triggers_at_threshold(self):
        streaming = StreamingCorpusIndex(
            POSTS[:1], compact_threshold=2
        )
        streaming.append(POSTS[1:2])
        assert streaming.segment_stats["compactions"] == 0
        streaming.append(POSTS[2:4])  # tail reaches 3 >= 2 -> compacts
        stats = streaming.segment_stats
        assert stats["compactions"] == 1
        assert stats["tail_posts"] == 0
        assert stats["base_posts"] == 4
        # queries unaffected by segment layout
        assert [p.post_id for p in streaming.matching("delet")] == [
            p.post_id for p in CorpusIndex(POSTS[:4]).matching("delet")
        ]

    def test_as_corpus_index_compacts(self):
        streaming = StreamingCorpusIndex(POSTS[:2])
        streaming.append(POSTS[2:])
        snapshot = streaming.as_corpus_index()
        assert isinstance(snapshot, CorpusIndex)
        assert len(snapshot) == len(POSTS)
        assert streaming.segment_stats["tail_posts"] == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            StreamingCorpusIndex(compact_threshold=0)


class TestRatioCompaction:
    def test_ratio_triggers_before_threshold(self):
        streaming = StreamingCorpusIndex(
            POSTS[:4], compact_threshold=1000, compact_ratio=0.25
        )
        # tail 1 >= 0.25 * base 4 -> compacts despite the huge threshold
        streaming.append(POSTS[4:])
        stats = streaming.segment_stats
        assert stats["compactions"] == 1
        assert stats["tail_posts"] == 0
        assert stats["base_posts"] == len(POSTS)

    def test_small_tail_rides_under_the_ratio(self):
        streaming = StreamingCorpusIndex(
            POSTS[:4], compact_threshold=1000, compact_ratio=0.5
        )
        streaming.append(POSTS[4:])  # tail 1 < 0.5 * base 4
        stats = streaming.segment_stats
        assert stats["compactions"] == 0
        assert stats["tail_posts"] == 1

    def test_empty_base_compacts_immediately_under_ratio(self):
        streaming = StreamingCorpusIndex(
            compact_threshold=1000, compact_ratio=0.5
        )
        streaming.append(POSTS[:1])
        assert streaming.segment_stats["base_posts"] == 1
        assert streaming.segment_stats["tail_posts"] == 0

    def test_ratio_bounds_tail_under_sustained_ingest(self):
        streaming = StreamingCorpusIndex(
            compact_threshold=10_000, compact_ratio=0.5
        )
        for i, post in enumerate(
            _post(100 + i, (i % 27) + 1, f"dpf delete number {i}", month=2)
            for i in range(40)
        ):
            streaming.append([post])
            stats = streaming.segment_stats
            assert stats["tail_posts"] <= max(
                1, 0.5 * stats["base_posts"]
            )

    def test_queries_unaffected_by_ratio_policy(self):
        streaming = StreamingCorpusIndex(compact_ratio=0.34)
        for post in POSTS:
            streaming.append([post])
        rebuilt = CorpusIndex(POSTS)
        got = streaming.search_many(KEYWORDS)
        want = rebuilt.search_many(KEYWORDS)
        for keyword in KEYWORDS:
            assert [p.post_id for p in got[keyword]] == [
                p.post_id for p in want[keyword]
            ]

    def test_stats_expose_both_policies(self):
        stats = StreamingCorpusIndex(
            compact_threshold=77, compact_ratio=0.2
        ).segment_stats
        assert stats["compact_threshold"] == 77
        assert stats["compact_ratio"] == 0.2
        assert StreamingCorpusIndex().segment_stats["compact_ratio"] is None

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            StreamingCorpusIndex(compact_ratio=0.0)
        with pytest.raises(ValueError):
            StreamingCorpusIndex(compact_ratio=-1.5)
