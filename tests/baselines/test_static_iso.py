"""Tests for the static ISO baseline."""

from repro.baselines.static_iso import StaticIsoBaseline
from repro.iso21434.enums import (
    AttackVector,
    CybersecurityProperty,
    FeasibilityRating,
    StrideCategory,
)
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.iso21434.threats import ThreatScenario


def threat(vectors) -> ThreatScenario:
    return ThreatScenario(
        threat_id="ts.x",
        name="x",
        asset_id="ecm.firmware",
        violated_property=CybersecurityProperty.INTEGRITY,
        stride=StrideCategory.TAMPERING,
        attack_vectors=frozenset(vectors),
    )


class TestStaticBaseline:
    def test_picks_highest_rated_vector(self):
        baseline = StaticIsoBaseline()
        rating = baseline.rate(threat({AttackVector.PHYSICAL, AttackVector.NETWORK}))
        assert rating.chosen_vector is AttackVector.NETWORK
        assert rating.feasibility is FeasibilityRating.HIGH

    def test_physical_only_threat_rated_very_low(self):
        # The paper's complaint: an owner-driven physical tampering threat
        # gets the table's bottom rating under the static model.
        baseline = StaticIsoBaseline()
        rating = baseline.rate(threat({AttackVector.PHYSICAL}))
        assert rating.feasibility is FeasibilityRating.VERY_LOW

    def test_rate_all(self):
        baseline = StaticIsoBaseline()
        ratings = baseline.rate_all(
            [threat({AttackVector.LOCAL}), threat({AttackVector.ADJACENT})]
        )
        assert [r.feasibility for r in ratings] == [
            FeasibilityRating.LOW,
            FeasibilityRating.MEDIUM,
        ]

    def test_custom_table_swaps_behaviour(self):
        tuned = standard_table().with_rating(
            AttackVector.PHYSICAL, FeasibilityRating.HIGH, source="psp"
        )
        baseline = StaticIsoBaseline(tuned)
        rating = baseline.rate(threat({AttackVector.PHYSICAL, AttackVector.LOCAL}))
        assert rating.chosen_vector is AttackVector.PHYSICAL
        assert rating.feasibility is FeasibilityRating.HIGH

    def test_tie_broken_by_reach(self):
        flat = standard_table()
        tuned = flat.with_rating(
            AttackVector.PHYSICAL, FeasibilityRating.HIGH, source="t"
        )
        baseline = StaticIsoBaseline(tuned)
        rating = baseline.rate(threat({AttackVector.PHYSICAL, AttackVector.NETWORK}))
        assert rating.chosen_vector is AttackVector.NETWORK
