"""Tests for the HEAVENS-style baseline."""

import pytest

from repro.baselines.heavens import (
    HeavensLevel,
    SecurityLevel,
    ThreatLevelInput,
    assess_heavens,
    impact_level,
    security_level,
    threat_level,
)
from repro.iso21434.enums import ImpactCategory, ImpactRating
from repro.iso21434.impact import ImpactProfile


class TestThreatLevel:
    def test_parameter_range_validated(self):
        with pytest.raises(ValueError):
            ThreatLevelInput(expertise=4, knowledge=0, opportunity=0, equipment=0)

    @pytest.mark.parametrize(
        "total_params,expected",
        [
            ((0, 0, 0, 0), HeavensLevel.NONE),
            ((1, 1, 1, 0), HeavensLevel.LOW),
            ((2, 2, 2, 2), HeavensLevel.MEDIUM),
            ((3, 3, 3, 3), HeavensLevel.HIGH),
        ],
    )
    def test_bands(self, total_params, expected):
        params = ThreatLevelInput(*total_params)
        assert threat_level(params) is expected

    def test_owner_attacker_scores_high(self):
        # The powertrain insider: layman-accessible (3), public knowledge
        # (3), unlimited opportunity (3), standard equipment (2).
        owner = ThreatLevelInput(expertise=3, knowledge=3, opportunity=3, equipment=2)
        assert threat_level(owner) is HeavensLevel.HIGH


class TestImpactLevel:
    def test_safety_double_weighted(self):
        safety_only = ImpactProfile({ImpactCategory.SAFETY: ImpactRating.SEVERE})
        privacy_only = ImpactProfile({ImpactCategory.PRIVACY: ImpactRating.SEVERE})
        assert impact_level(safety_only).level > impact_level(privacy_only).level

    def test_empty_profile_none(self):
        assert impact_level(ImpactProfile()) is HeavensLevel.NONE

    def test_full_severe_profile_high(self):
        profile = ImpactProfile(
            {category: ImpactRating.SEVERE for category in ImpactCategory}
        )
        assert impact_level(profile) is HeavensLevel.HIGH


class TestSecurityLevel:
    def test_extremes(self):
        assert security_level(HeavensLevel.NONE, HeavensLevel.NONE) is SecurityLevel.QM
        assert (
            security_level(HeavensLevel.HIGH, HeavensLevel.HIGH)
            is SecurityLevel.CRITICAL
        )

    def test_matrix_monotone(self):
        levels = sorted(HeavensLevel, key=lambda l: l.level)
        for i, tl in enumerate(levels):
            for j, il in enumerate(levels):
                value = security_level(tl, il).level
                if i + 1 < len(levels):
                    assert security_level(levels[i + 1], il).level >= value
                if j + 1 < len(levels):
                    assert security_level(tl, levels[j + 1]).level >= value


class TestAssessment:
    def test_powertrain_insider_threat_rates_high(self):
        # HEAVENS, which scores attacker capability directly instead of
        # reading a fixed vector table, agrees with PSP that the
        # powertrain owner-attack is a top-priority threat.
        owner = ThreatLevelInput(expertise=3, knowledge=3, opportunity=3, equipment=3)
        profile = ImpactProfile({ImpactCategory.SAFETY: ImpactRating.SEVERE})
        result = assess_heavens("ts.ecm", owner, profile)
        assert result.security.level >= SecurityLevel.HIGH.level

    def test_full_severity_owner_attack_rates_critical(self):
        owner = ThreatLevelInput(expertise=3, knowledge=3, opportunity=3, equipment=3)
        profile = ImpactProfile(
            {
                ImpactCategory.SAFETY: ImpactRating.SEVERE,
                ImpactCategory.FINANCIAL: ImpactRating.SEVERE,
                ImpactCategory.OPERATIONAL: ImpactRating.SEVERE,
            }
        )
        result = assess_heavens("ts.ecm", owner, profile)
        assert result.security is SecurityLevel.CRITICAL

    def test_low_capability_low_impact_qm(self):
        weak = ThreatLevelInput(expertise=0, knowledge=0, opportunity=0, equipment=0)
        result = assess_heavens("ts.x", weak, ImpactProfile())
        assert result.security is SecurityLevel.QM
