"""Tests for the EVITA-style baseline."""

import pytest

from repro.baselines.evita import (
    AttackProbability,
    RiskLevel,
    assess_evita,
    attack_probability,
    risk_level,
    severity_class,
)
from repro.iso21434.enums import ImpactCategory, ImpactRating
from repro.iso21434.feasibility.attack_potential import (
    AttackPotentialInput,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
)
from repro.iso21434.impact import ImpactProfile


def potential(time=ElapsedTime.ONE_WEEK, expertise=Expertise.LAYMAN,
              knowledge=Knowledge.PUBLIC,
              window=WindowOfOpportunity.UNLIMITED,
              equipment=Equipment.STANDARD) -> AttackPotentialInput:
    return AttackPotentialInput(
        elapsed_time=time, expertise=expertise, knowledge=knowledge,
        window=window, equipment=equipment,
    )


class TestAttackProbability:
    def test_trivial_attack_p5(self):
        assert attack_probability(potential()) is AttackProbability.P5

    def test_hardest_attack_p1(self):
        hard = potential(
            time=ElapsedTime.MORE_THAN_THREE_YEARS,
            expertise=Expertise.MULTIPLE_EXPERTS,
            knowledge=Knowledge.STRICTLY_CONFIDENTIAL,
            window=WindowOfOpportunity.DIFFICULT,
            equipment=Equipment.MULTIPLE_BESPOKE,
        )
        assert attack_probability(hard) is AttackProbability.P1

    def test_probability_non_increasing_in_potential(self):
        inputs = [
            potential(),
            potential(time=ElapsedTime.SIX_MONTHS, expertise=Expertise.EXPERT),
            potential(time=ElapsedTime.THREE_YEARS, expertise=Expertise.EXPERT,
                      knowledge=Knowledge.CONFIDENTIAL),
        ]
        probs = [attack_probability(i).level for i in inputs]
        assert probs == sorted(probs, reverse=True)


class TestSeverity:
    def test_safety_severe_promoted_to_class4(self):
        profile = ImpactProfile({ImpactCategory.SAFETY: ImpactRating.SEVERE})
        assert severity_class(profile) == 4

    def test_financial_severe_stays_class3(self):
        profile = ImpactProfile({ImpactCategory.FINANCIAL: ImpactRating.SEVERE})
        assert severity_class(profile) == 3

    def test_empty_profile_class0(self):
        assert severity_class(ImpactProfile()) == 0


class TestRiskGraph:
    def test_zero_severity_always_r0(self):
        for probability in AttackProbability:
            assert risk_level(0, probability) is RiskLevel.R0

    def test_maximum_corner(self):
        assert risk_level(4, AttackProbability.P5) is RiskLevel.R6

    def test_monotone_in_both_axes(self):
        for severity in range(1, 5):
            for probability in AttackProbability:
                value = risk_level(severity, probability).level
                if severity < 4:
                    assert risk_level(severity + 1, probability).level >= value
                if probability.level < 5:
                    next_p = AttackProbability(probability.level + 1)
                    assert risk_level(severity, next_p).level >= value

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            risk_level(5, AttackProbability.P1)


class TestAssessment:
    def test_powertrain_owner_attack_max_risk(self):
        # EVITA agrees with PSP on the powertrain case: an owner with
        # unlimited access attacking a safety-severe function is R6 even
        # though the attack is physical — isolating the G.9 table (not the
        # factor model) as the source of the static mis-rating.
        profile = ImpactProfile({ImpactCategory.SAFETY: ImpactRating.SEVERE})
        result = assess_evita("ts.ecm", potential(), profile)
        assert result.risk is RiskLevel.R6

    def test_negligible_impact_no_risk(self):
        result = assess_evita("ts.x", potential(), ImpactProfile())
        assert result.risk is RiskLevel.R0
