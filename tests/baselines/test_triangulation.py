"""Tests for the compiled-model baseline triangulation."""

import pytest

from repro.baselines import triangulate_model
from repro.baselines.evita import RiskLevel
from repro.baselines.heavens import HeavensLevel
from repro.iso21434.enums import FeasibilityRating
from repro.tara.model import compile_threat_model


@pytest.fixture(scope="module")
def assessments(fig4_network):
    return triangulate_model(compile_threat_model(fig4_network))


class TestCoverage:
    def test_every_compiled_threat_assessed(self, fig4_network, assessments):
        model = compile_threat_model(fig4_network)
        assert len(assessments) == len(model.threats)
        assert [a.threat_id for a in assessments] == [
            t.threat_id for t in model.threats
        ]

    def test_no_model_reidentifies_threats(self, fig4_network, assessments):
        # All three baselines consumed the same compiled enumeration:
        # each threat id appears exactly once across the triangulation.
        ids = [a.threat_id for a in assessments]
        assert len(ids) == len(set(ids))


class TestTriangulationArgument:
    """The paper's §II claim at architecture scale: the capability models
    agree the insider powertrain threats are top-tier; the static table
    does not."""

    def test_insider_threats_rate_high_under_both_capability_models(
        self, assessments
    ):
        insiders = [a for a in assessments if a.owner_approved]
        assert insiders
        for a in insiders:
            assert a.evita.probability.level == 5  # owner access: P5
            assert a.heavens.tl is HeavensLevel.HIGH

    def test_static_underrates_powertrain_insiders(self, fig4_network, assessments):
        model = compile_threat_model(fig4_network)
        by_id = {a.threat_id: a for a in assessments}
        ecm_threats = [
            t for t in model.threats if t.asset_id.startswith("ecm.")
        ]
        assert ecm_threats
        for threat in ecm_threats:
            assessment = by_id[threat.threat_id]
            assert assessment.static_underrates, threat.threat_id
            assert assessment.iso_static.feasibility <= FeasibilityRating.LOW

    def test_outsider_network_threats_not_flagged(self, assessments):
        outsiders = [a for a in assessments if not a.owner_approved]
        assert outsiders
        # The static table's worldview is tuned for outsiders: none of
        # them show the mis-rating signature.
        assert not any(a.static_underrates for a in outsiders)

    def test_safety_severe_insiders_reach_top_evita_risk(self, assessments):
        top = [
            a
            for a in assessments
            if a.owner_approved and a.evita.severity == 4
        ]
        assert top
        assert all(a.evita.risk is RiskLevel.R6 for a in top)
