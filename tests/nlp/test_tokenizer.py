"""Tests for the social-media tokenizer."""

import pytest

from repro.nlp.tokenizer import (
    Token,
    TokenType,
    hashtags,
    prices,
    tokenize,
    words,
)


class TestTokenTypes:
    def test_hashtag(self):
        tokens = tokenize("just did my #dpfdelete today")
        tags = [t for t in tokens if t.type is TokenType.HASHTAG]
        assert [t.text for t in tags] == ["#dpfdelete"]

    def test_mention(self):
        tokens = tokenize("thanks @tuningshop for the install")
        mentions = [t for t in tokens if t.type is TokenType.MENTION]
        assert [t.text for t in mentions] == ["@tuningshop"]

    def test_url(self):
        tokens = tokenize("bought it at https://example.com/kit?x=1 yesterday")
        urls = [t for t in tokens if t.type is TokenType.URL]
        assert len(urls) == 1
        assert urls[0].text.startswith("https://")

    @pytest.mark.parametrize(
        "text",
        ["paid €360 for it", "paid 360€ for it", "paid 360 EUR for it",
         "paid EUR 360 for it", "paid $1,200.50 for it"],
    )
    def test_price_forms(self, text):
        found = prices(text)
        assert len(found) == 1

    def test_plain_number(self):
        tokens = tokenize("my 2019 model")
        numbers = [t for t in tokens if t.type is TokenType.NUMBER]
        assert [t.text for t in numbers] == ["2019"]

    def test_emoticon(self):
        tokens = tokenize("works great :)")
        emoji = [t for t in tokens if t.type is TokenType.EMOJI_SENTIMENT]
        assert [t.text for t in emoji] == [":)"]

    def test_words_preserve_case(self):
        assert words("DPF Delete kit") == ["DPF", "Delete", "kit"]

    def test_hyphenated_word_is_one_token(self):
        assert "best-value" in words("a best-value kit")


class TestTokenStructure:
    def test_positions_are_sequential(self):
        tokens = tokenize("one two three")
        assert [t.position for t in tokens] == [0, 1, 2]

    def test_empty_text_yields_nothing(self):
        assert tokenize("") == []

    def test_token_requires_text(self):
        with pytest.raises(ValueError):
            Token(text="", type=TokenType.WORD, position=0)

    def test_hashtags_helper(self):
        assert hashtags("#a then #b") == ["#a", "#b"]

    def test_price_not_double_counted_as_number(self):
        tokens = tokenize("paid 360 EUR")
        types = [t.type for t in tokens]
        assert TokenType.PRICE in types
        assert TokenType.NUMBER not in types
