"""Tests for the stop-word list."""

from repro.nlp.stopwords import STOPWORDS, is_stopword, remove_stopwords


class TestStopwords:
    def test_common_words_flagged(self):
        for word in ("the", "and", "is", "of"):
            assert is_stopword(word)

    def test_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("AND")

    def test_domain_words_kept(self):
        # "off" matters in "egr off"; "on" in "tune on".
        for word in ("off", "on", "delete", "removal"):
            assert not is_stopword(word)

    def test_content_words_kept(self):
        for word in ("dpf", "excavator", "tuning"):
            assert not is_stopword(word)

    def test_remove_stopwords_preserves_order(self):
        tokens = ["the", "dpf", "is", "off"]
        assert remove_stopwords(tokens) == ["dpf", "off"]

    def test_stopword_list_nonempty(self):
        assert len(STOPWORDS) > 100
