"""Tests for 1-D k-means price clustering."""

import pytest

from repro.nlp.clustering import (
    dominant_cluster,
    kmeans_1d,
    representative_price,
)


class TestKmeans:
    def test_separates_obvious_regimes(self):
        prices = [50, 55, 60, 350, 360, 370, 1200, 1250]
        clusters = kmeans_1d(prices, 3)
        assert len(clusters) == 3
        centers = [c.center for c in clusters]
        assert centers == sorted(centers)
        assert clusters[0].members == (50, 55, 60)
        assert clusters[1].members == (350, 360, 370)
        assert clusters[2].members == (1200, 1250)

    def test_k1_returns_mean(self):
        clusters = kmeans_1d([100, 200, 300], 1)
        assert len(clusters) == 1
        assert clusters[0].center == pytest.approx(200)

    def test_deterministic(self):
        prices = [45, 60, 330, 340, 350, 360, 370, 380, 390, 1250, 1400]
        a = kmeans_1d(prices, 3)
        b = kmeans_1d(prices, 3)
        assert [c.members for c in a] == [c.members for c in b]

    def test_partition_property(self):
        prices = [10.0, 20.0, 200.0, 210.0, 900.0]
        clusters = kmeans_1d(prices, 2)
        members = sorted(m for c in clusters for m in c.members)
        assert members == sorted(prices)

    def test_requires_enough_values(self):
        with pytest.raises(ValueError, match="need >="):
            kmeans_1d([1.0], 2)

    def test_rejects_negative_prices(self):
        with pytest.raises(ValueError, match="non-negative"):
            kmeans_1d([-1.0, 2.0], 1)

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            kmeans_1d([1.0, 2.0], 0)

    def test_identical_values(self):
        clusters = kmeans_1d([360.0] * 5, 2)
        members = [m for c in clusters for m in c.members]
        assert len(members) == 5
        assert all(m == 360.0 for m in members)


class TestDominantCluster:
    def test_largest_wins(self):
        clusters = kmeans_1d([50, 55, 350, 355, 360, 365], 2)
        assert dominant_cluster(clusters).center == pytest.approx(357.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dominant_cluster([])


class TestRepresentativePrice:
    def test_paper_dpf_calibration(self):
        # The default catalogue's retail listings average exactly 360 EUR.
        retail = [330, 340, 350, 360, 370, 380, 390]
        services = [1250, 1400]
        scams = [45, 60]
        price = representative_price(retail + services + scams)
        assert price == pytest.approx(360.0)

    def test_fewer_values_than_default_k(self):
        assert representative_price([100.0, 120.0]) > 0

    def test_single_listing(self):
        assert representative_price([500.0]) == pytest.approx(500.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            representative_price([])

    def test_explicit_k(self):
        price = representative_price([10, 11, 12, 500], k=2)
        assert price == pytest.approx(11.0)
