"""Tests for n-gram phrase mining."""

import pytest

from repro.nlp.ngrams import PhraseCandidate, mine_phrases

TEXTS = [
    "fitted an adblue emulator on the loader",
    "the adblue emulator works great",
    "cheap adblue emulators for sale",
    "speed limiter off done at the shop",
    "got the speed limiter off in an hour",
    "speed limiter off kit arrived",
    "unrelated post about weekend plans",
]


class TestMining:
    def test_frequent_phrases_found(self):
        candidates = mine_phrases(TEXTS, min_count=3)
        keywords = {c.keyword for c in candidates}
        assert "adblueemulator" in keywords
        assert "speedlimiteroff" in keywords or "speedlimiter" in keywords

    def test_inflected_variants_merge(self):
        # "emulator" and "emulators" stem together, so all three adblue
        # posts count for one phrase.
        candidates = mine_phrases(TEXTS, min_count=3)
        by_keyword = {c.keyword: c for c in candidates}
        assert by_keyword["adblueemulator"].count == 3

    def test_min_count_filters(self):
        candidates = mine_phrases(TEXTS, min_count=4)
        assert "adblueemulator" not in {c.keyword for c in candidates}

    def test_known_keywords_excluded(self):
        candidates = mine_phrases(
            TEXTS, min_count=3, known_keywords=["adblue emulator"]
        )
        assert "adblueemulator" not in {c.keyword for c in candidates}

    def test_support_fraction_of_posts(self):
        candidates = mine_phrases(TEXTS, min_count=3)
        by_keyword = {c.keyword: c for c in candidates}
        assert by_keyword["adblueemulator"].support == pytest.approx(3 / 7)

    def test_sorted_by_count(self):
        candidates = mine_phrases(TEXTS, min_count=2)
        counts = [c.count for c in candidates]
        assert counts == sorted(counts, reverse=True)

    def test_max_candidates_caps(self):
        candidates = mine_phrases(TEXTS, min_count=1, max_candidates=2)
        assert len(candidates) == 2

    def test_phrase_counted_once_per_post(self):
        texts = ["adblue emulator adblue emulator adblue emulator"]
        candidates = mine_phrases(texts, min_count=1)
        by_keyword = {c.keyword: c for c in candidates}
        assert by_keyword["adblueemulator"].count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            mine_phrases(TEXTS, min_count=0)
        with pytest.raises(ValueError):
            mine_phrases(TEXTS, sizes=(1,))
        with pytest.raises(ValueError):
            PhraseCandidate(phrase="x", keyword="x", count=0, support=0.0)

    def test_empty_corpus(self):
        assert mine_phrases([], min_count=1) == []
