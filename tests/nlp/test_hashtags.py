"""Tests for hashtag extraction and co-occurrence mining."""

from repro.nlp.hashtags import (
    cooccurring_hashtags,
    extract_hashtags,
    hashtag_frequencies,
    top_hashtags,
)


class TestExtraction:
    def test_canonical_forms(self):
        assert extract_hashtags("did my #DPF_delete") == ["dpfdelete"]

    def test_multiple_tags(self):
        tags = extract_hashtags("#egroff and #dpfdelete done")
        assert tags == ["egroff", "dpfdelete"]

    def test_duplicates_preserved(self):
        assert extract_hashtags("#a #a #b") == ["a", "a", "b"]

    def test_no_tags(self):
        assert extract_hashtags("no tags here") == []


class TestCooccurrence:
    TEXTS = [
        "did my #dpfdelete with #stage1",
        "#dpfdelete and #stage1 combo",
        "#dpfdelete went fine #dynorun",
        "unrelated post about #cats",
        "#stage1 on its own",
    ]

    def test_discovers_companions(self):
        results = cooccurring_hashtags(self.TEXTS, ["dpfdelete"])
        keywords = [r.keyword for r in results]
        assert "stage1" in keywords
        assert "dynorun" in keywords

    def test_known_keywords_excluded(self):
        results = cooccurring_hashtags(self.TEXTS, ["dpfdelete", "stage1"])
        keywords = [r.keyword for r in results]
        assert "stage1" not in keywords

    def test_unmatched_tags_not_proposed(self):
        results = cooccurring_hashtags(self.TEXTS, ["dpfdelete"])
        assert "cats" not in [r.keyword for r in results]

    def test_support_computed_over_matching_posts(self):
        results = cooccurring_hashtags(self.TEXTS, ["dpfdelete"])
        by_kw = {r.keyword: r for r in results}
        # stage1 co-occurs in 2 of 3 dpfdelete posts
        assert by_kw["stage1"].support == 2 / 3

    def test_min_support_filters(self):
        results = cooccurring_hashtags(
            self.TEXTS, ["dpfdelete"], min_support=0.5
        )
        keywords = [r.keyword for r in results]
        assert "stage1" in keywords
        assert "dynorun" not in keywords

    def test_max_candidates_caps(self):
        results = cooccurring_hashtags(
            self.TEXTS, ["dpfdelete"], max_candidates=1
        )
        assert len(results) == 1
        assert results[0].keyword == "stage1"  # highest count first

    def test_no_matching_posts(self):
        assert cooccurring_hashtags(["#cats only"], ["dpfdelete"]) == []

    def test_sorted_by_count_then_name(self):
        results = cooccurring_hashtags(self.TEXTS, ["dpfdelete"])
        counts = [r.count for r in results]
        assert counts == sorted(counts, reverse=True)


class TestFrequencies:
    def test_frequencies(self):
        freqs = hashtag_frequencies(["#a #b", "#a"])
        assert freqs == {"a": 2, "b": 1}

    def test_top_hashtags(self):
        top = top_hashtags(["#a #b", "#a", "#a #c"], n=2)
        assert top[0] == ("a", 3)
        assert len(top) == 2
