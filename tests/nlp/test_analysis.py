"""Tests for the shared per-post text analysis sidecar."""

from repro.nlp.analysis import analyze_text
from repro.nlp.hashtags import extract_hashtags
from repro.nlp.normalize import (
    canonical_keyword,
    keyword_in_text,
    normalize_text,
    stem,
)
from repro.nlp.sentiment import SentimentAnalyzer
from repro.nlp.tokenizer import tokenize


class TestAnalyzeText:
    def test_views_match_primitives(self):
        text = "Just did my #DPF_delete — deleting smoke, great gains!"
        analysis = analyze_text(text)
        normalized = normalize_text(text)
        assert analysis.normalized == normalized
        assert analysis.squashed == normalized.replace(" ", "")
        assert analysis.words == tuple(normalized.split())
        assert analysis.stems == tuple(stem(w) for w in analysis.words)
        assert analysis.stemmed_joined == "".join(analysis.stems)
        assert analysis.hashtags == tuple(extract_hashtags(text))
        assert analysis.tokens == tuple(tokenize(text))
        assert analysis.word_set == frozenset(analysis.words)

    def test_shared_object_per_distinct_text(self):
        assert analyze_text("same #dpfdelete text") is analyze_text(
            "same #dpfdelete text"
        )

    def test_matches_keyword_equals_keyword_in_text(self):
        texts = (
            "my dpf-delete kit",
            "#dpfdelete rocks",
            "superdpfdeletekit pro",
            "deleting the filter",
            "nothing relevant",
        )
        keywords = ("dpf delete", "dpfdelete", "deleting", "delet", "missing")
        for text in texts:
            analysis = analyze_text(text)
            for keyword in keywords:
                folded = canonical_keyword(keyword)
                assert analysis.matches_keyword(folded) == keyword_in_text(
                    keyword, text
                ), (keyword, text)

    def test_empty_canonical_never_matches(self):
        assert not analyze_text("some text").matches_keyword("")


class _CountingAnalyzer(SentimentAnalyzer):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.raw_calls = 0

    def _raw_score(self, tokens):
        self.raw_calls += 1
        return super()._raw_score(tokens)


class TestSentimentMemo:
    def test_scored_once_per_text_per_fingerprint(self):
        analyzer = _CountingAnalyzer()
        analysis = analyze_text("love the power gains, works great")
        first = analyzer.score_analysis(analysis)
        second = analyzer.score_analysis(analysis)
        assert first is second
        assert analyzer.raw_calls == 1
        assert first.score == analyzer.score(analysis.text).score

    def test_memo_shared_across_equal_analyzers(self):
        analysis = analyze_text("terrible fail, fined and caught")
        a = _CountingAnalyzer()
        b = _CountingAnalyzer()
        assert a.fingerprint == b.fingerprint
        a.score_analysis(analysis)
        b.score_analysis(analysis)
        assert (a.raw_calls, b.raw_calls) == (1, 0)

    def test_extend_lexicon_invalidates_memo(self):
        analyzer = _CountingAnalyzer()
        analysis = analyze_text("the mightyboost worked")
        before = analyzer.score_analysis(analysis)
        analyzer.extend_lexicon({"mightyboost": 2.5})
        after = analyzer.score_analysis(analysis)
        assert analyzer.raw_calls == 2
        assert after.score > before.score
