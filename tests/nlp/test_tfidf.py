"""Tests for the TF-IDF vectorizer."""

import pytest

from repro.nlp.tfidf import TfIdfVectorizer, cosine_similarity


CORPUS = [
    "dpf delete kit for excavator",
    "egr delete harness for excavator",
    "chip tuning remap for tractor",
    "dpf delete service with dyno run",
]


class TestFit:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer().fit([])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            TfIdfVectorizer().transform(["x"])

    def test_vocabulary_sorted(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        vocab = vectorizer.vocabulary
        assert list(vocab) == sorted(vocab)
        assert "dpf" in vocab

    def test_stopwords_excluded(self):
        vectorizer = TfIdfVectorizer().fit(["the kit for the car"])
        assert "the" not in vectorizer.vocabulary


class TestTransform:
    def test_distinctive_terms_outweigh_common(self):
        docs = TfIdfVectorizer().fit_transform(CORPUS)
        weights = docs[2].weights  # the tractor doc
        assert weights["tractor"] > weights.get("for", 0.0)

    def test_l2_normalised(self):
        docs = TfIdfVectorizer().fit_transform(CORPUS)
        for doc in docs:
            if doc.weights:
                norm = sum(w * w for w in doc.weights.values())
                assert norm == pytest.approx(1.0)

    def test_empty_document_zero_vector(self):
        docs = TfIdfVectorizer().fit(CORPUS).transform([""])
        assert docs[0].weights == {}

    def test_top_terms(self):
        docs = TfIdfVectorizer().fit_transform(CORPUS)
        top = docs[2].top_terms(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_unseen_terms_get_max_idf(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        docs = vectorizer.transform(["completely novel zeppelin"])
        assert docs[0].weights


class TestCosine:
    def test_similar_docs_higher(self):
        docs = TfIdfVectorizer().fit_transform(CORPUS)
        dpf_pair = cosine_similarity(docs[0], docs[3])
        cross = cosine_similarity(docs[0], docs[2])
        assert dpf_pair > cross

    def test_self_similarity_one(self):
        docs = TfIdfVectorizer().fit_transform(CORPUS)
        assert cosine_similarity(docs[0], docs[0]) == pytest.approx(1.0)

    def test_disjoint_docs_zero(self):
        docs = TfIdfVectorizer().fit_transform(
            ["alpha beta", "gamma delta"]
        )
        assert cosine_similarity(docs[0], docs[1]) == 0.0
