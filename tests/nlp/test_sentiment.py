"""Tests for the lexicon sentiment scorer."""

import pytest

from repro.nlp.sentiment import (
    SentimentAnalyzer,
    SentimentLabel,
)


@pytest.fixture()
def analyzer() -> SentimentAnalyzer:
    return SentimentAnalyzer()


class TestBasicPolarity:
    def test_enthusiastic_post_positive(self, analyzer):
        result = analyzer.score("Best money I ever spent, works perfect, so happy")
        assert result.label is SentimentLabel.POSITIVE
        assert result.score > 0.3

    def test_deterrence_post_negative(self, analyzer):
        result = analyzer.score("Got fined, engine broke, worst decision, regret it")
        assert result.label is SentimentLabel.NEGATIVE
        assert result.score < -0.3

    def test_informational_post_neutral(self, analyzer):
        result = analyzer.score("Anyone have experience with this on a 2019 model?")
        assert result.label is SentimentLabel.NEUTRAL

    def test_empty_text_neutral(self, analyzer):
        result = analyzer.score("")
        assert result.score == 0.0
        assert result.hits == 0


class TestModifiers:
    def test_negation_flips_sign(self, analyzer):
        positive = analyzer.score("this kit is good")
        negated = analyzer.score("this kit is not good")
        assert positive.score > 0
        assert negated.score < 0

    def test_booster_amplifies(self, analyzer):
        plain = analyzer.score("the result is good")
        boosted = analyzer.score("the result is really good")
        assert boosted.score > plain.score

    def test_dampener_reduces(self, analyzer):
        plain = analyzer.score("the result is good")
        damped = analyzer.score("the result is slightly good")
        assert 0 < damped.score < plain.score

    def test_emoticon_contributes(self, analyzer):
        with_emoji = analyzer.score("installed the kit :)")
        without = analyzer.score("installed the kit")
        assert with_emoji.score > without.score


class TestBounds:
    def test_scores_always_in_unit_interval(self, analyzer):
        texts = [
            "amazing awesome great perfect excellent " * 20,
            "terrible awful worst scam regret " * 20,
            "",
            "neutral words only here",
        ]
        for text in texts:
            assert -1.0 <= analyzer.score(text).score <= 1.0

    def test_mean_score_empty_list(self, analyzer):
        assert analyzer.mean_score([]) == 0.0

    def test_mean_score_averages(self, analyzer):
        texts = ["great kit", "terrible kit"]
        mean = analyzer.mean_score(texts)
        individual = [analyzer.score(t).score for t in texts]
        assert mean == pytest.approx(sum(individual) / 2)

    def test_score_many_length(self, analyzer):
        assert len(analyzer.score_many(["a", "b", "c"])) == 3


class TestConfiguration:
    def test_custom_neutral_band(self):
        narrow = SentimentAnalyzer(neutral_band=0.0)
        result = narrow.score("good")
        assert result.label is SentimentLabel.POSITIVE

    def test_invalid_neutral_band(self):
        with pytest.raises(ValueError):
            SentimentAnalyzer(neutral_band=1.5)

    def test_extend_lexicon(self, analyzer):
        before = analyzer.score("the flibber was great").score
        analyzer.extend_lexicon({"flibber": 3.0})
        after = analyzer.score("the flibber was great").score
        assert after > before

    def test_stemmed_lexicon_matches_inflections(self, analyzer):
        # "improv" is in the lexicon; "improved" should stem onto it.
        assert analyzer.score("throttle response improved").score > 0

    def test_custom_lexicon_replaces_default(self):
        custom = SentimentAnalyzer(lexicon={"zonk": -2.0})
        assert custom.score("great awesome perfect").hits == 0
        assert custom.score("total zonk").score < 0
