"""Tests for keyword normalization and folding."""

import pytest

from repro.nlp.normalize import (
    canonical_keyword,
    keyword_in_text,
    normalize_text,
    stem,
    stem_all,
)


class TestCanonicalKeyword:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("#DPF_Delete", "dpfdelete"),
            ("dpf delete", "dpfdelete"),
            ("DPF-delete", "dpfdelete"),
            ("dpf.delete", "dpfdelete"),
            ("#egroff", "egroff"),
            ("@handle", "handle"),
            ("  spaced  out  ", "spacedout"),
        ],
    )
    def test_folding(self, raw, expected):
        assert canonical_keyword(raw) == expected

    def test_surface_forms_collide(self):
        forms = ["#dpfdelete", "DPF delete", "dpf_delete", "dpf-DELETE"]
        assert len({canonical_keyword(f) for f in forms}) == 1

    def test_punctuation_stripped(self):
        assert canonical_keyword("dpf!delete?") == "dpfdelete"


class TestNormalizeText:
    def test_lowercases_and_folds_separators(self):
        assert normalize_text("DPF-Delete  Kit") == "dpf delete kit"

    def test_strips_punctuation(self):
        assert normalize_text("great kit!!!") == "great kit"


class TestStem:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("deleting", "delet"),
            ("deletes", "delet"),
            ("tuners", "tun"),
            ("bodies", "body"),
            ("delete", "delet"),
            ("dpf", "dpf"),
            ("off", "off"),
        ],
    )
    def test_suffixes(self, word, expected):
        assert stem(word) == expected

    def test_short_words_untouched(self):
        assert stem("cars") == "cars"

    def test_stem_all_preserves_order(self):
        assert stem_all(["deleting", "dpf"]) == ["delet", "dpf"]

    def test_inflections_collide(self):
        assert stem("deleting") == stem("deletes") == stem("deleted") == "delet"


class TestKeywordInText:
    def test_hashtag_occurrence(self):
        assert keyword_in_text("dpfdelete", "Just did my #dpfdelete!")

    def test_free_text_phrase(self):
        assert keyword_in_text("dpf delete", "my dpf delete kit arrived")

    def test_separated_forms_match(self):
        assert keyword_in_text("dpfdelete", "the dpf-delete went fine")

    def test_unrelated_text_does_not_match(self):
        assert not keyword_in_text("dpfdelete", "lovely weather today")

    def test_empty_keyword_never_matches(self):
        assert not keyword_in_text("", "anything")

    def test_inflected_occurrence(self):
        assert keyword_in_text("chiptuning", "best chip tuning ever")
