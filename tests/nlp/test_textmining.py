"""Tests for price/count text mining."""

import pytest

from repro.nlp.textmining import (
    CountObservation,
    PriceObservation,
    extract_counts,
    extract_prices,
    extract_prices_many,
    find_count,
    sum_counts,
)


class TestPriceExtraction:
    @pytest.mark.parametrize(
        "text,amount,currency",
        [
            ("costs €360 shipped", 360.0, "EUR"),
            ("costs 360€ shipped", 360.0, "EUR"),
            ("costs 360 EUR shipped", 360.0, "EUR"),
            ("costs $1,200.50 shipped", 1200.50, "USD"),
            ("costs £99 shipped", 99.0, "GBP"),
        ],
    )
    def test_forms(self, text, amount, currency):
        observations = extract_prices(text)
        assert len(observations) == 1
        assert observations[0].amount == amount
        assert observations[0].currency == currency

    def test_multiple_prices(self):
        observations = extract_prices("device €360, install €150")
        assert [o.amount for o in observations] == [360.0, 150.0]

    def test_no_prices(self):
        assert extract_prices("no money mentioned") == []

    def test_extract_many_with_currency_filter(self):
        texts = ["kit 360 EUR", "kit $400", "kit 350 EUR"]
        assert extract_prices_many(texts, currency="EUR") == [360.0, 350.0]

    def test_extract_many_unfiltered(self):
        texts = ["kit 360 EUR", "kit $400"]
        assert len(extract_prices_many(texts)) == 2

    def test_negative_amount_impossible(self):
        with pytest.raises(ValueError):
            PriceObservation(amount=-1.0, currency="EUR")


class TestCountExtraction:
    PAPER_PROSE = (
        "Our field telemetry identified 1,406 potential attackers among "
        "owners. The market is served by 3 competing sellers of defeat "
        "devices. We recorded 412 incidents this period."
    )

    def test_paper_quantities(self):
        counts = {o.label: o.value for o in extract_counts(self.PAPER_PROSE)}
        assert counts["potential attackers"] == 1406
        assert counts["competing sellers"] == 3
        assert counts["incidents"] == 412

    def test_find_count_partial_label(self):
        assert find_count([self.PAPER_PROSE], "attackers") == 1406
        assert find_count([self.PAPER_PROSE], "competing") == 3

    def test_find_count_missing(self):
        assert find_count(["no numbers here"], "attackers") is None

    def test_find_count_first_match_wins(self):
        texts = ["5 incidents", "9 incidents"]
        assert find_count(texts, "incidents") == 5

    def test_sum_counts(self):
        texts = ["5 incidents in spring", "9 incidents in autumn"]
        assert sum_counts(texts, "incidents") == 14

    def test_thousands_separator(self):
        counts = extract_counts("we sold 12,500 vehicles this year")
        assert counts[0].value == 12500

    def test_negative_count_impossible(self):
        with pytest.raises(ValueError):
            CountObservation(value=-1, label="x")
