"""Tests for the CVSS-based feasibility model."""

import pytest

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.cvss import (
    AttackComplexity,
    CvssModel,
    CvssVector,
    PrivilegesRequired,
    UserInteraction,
    rating_from_exploitability,
)


def easiest() -> CvssVector:
    return CvssVector(attack_vector=AttackVector.NETWORK)


def hardest() -> CvssVector:
    return CvssVector(
        attack_vector=AttackVector.PHYSICAL,
        attack_complexity=AttackComplexity.HIGH,
        privileges_required=PrivilegesRequired.HIGH,
        user_interaction=UserInteraction.REQUIRED,
    )


class TestExploitability:
    def test_maximum_score(self):
        # 8.22 x 0.85 x 0.77 x 0.85 x 0.85 = 3.887...
        assert easiest().exploitability == pytest.approx(3.887, abs=0.01)

    def test_minimum_score(self):
        # 8.22 x 0.20 x 0.44 x 0.27 x 0.62 = 0.121...
        assert hardest().exploitability == pytest.approx(0.121, abs=0.01)

    def test_physical_below_local_all_else_equal(self):
        physical = CvssVector(attack_vector=AttackVector.PHYSICAL)
        local = CvssVector(attack_vector=AttackVector.LOCAL)
        assert physical.exploitability < local.exploitability

    def test_vector_ordering_matches_cvss_coefficients(self):
        scores = {
            v: CvssVector(attack_vector=v).exploitability for v in AttackVector
        }
        assert (
            scores[AttackVector.NETWORK]
            > scores[AttackVector.ADJACENT]
            > scores[AttackVector.LOCAL]
            > scores[AttackVector.PHYSICAL]
        )


class TestRatingMapping:
    @pytest.mark.parametrize(
        "score,expected",
        [
            (0.0, FeasibilityRating.VERY_LOW),
            (0.99, FeasibilityRating.VERY_LOW),
            (1.0, FeasibilityRating.LOW),
            (1.99, FeasibilityRating.LOW),
            (2.0, FeasibilityRating.MEDIUM),
            (2.95, FeasibilityRating.MEDIUM),
            (2.96, FeasibilityRating.HIGH),
            (3.89, FeasibilityRating.HIGH),
        ],
    )
    def test_band_boundaries(self, score, expected):
        assert rating_from_exploitability(score) is expected

    def test_negative_score_rejected(self):
        with pytest.raises(ValueError):
            rating_from_exploitability(-0.1)

    def test_bands_monotone(self):
        scores = [i / 100 for i in range(0, 400)]
        ratings = [rating_from_exploitability(s) for s in scores]
        for earlier, later in zip(ratings, ratings[1:]):
            assert later >= earlier


class TestModel:
    def test_network_default_rates_high(self):
        assert CvssModel().rate(easiest()) is FeasibilityRating.HIGH

    def test_hardened_physical_rates_very_low(self):
        assert CvssModel().rate(hardest()) is FeasibilityRating.VERY_LOW

    def test_agrees_with_g9_on_canonical_extremes(self):
        # The CVSS model and the attack-vector table agree on the corner
        # cases (network/easy = High, physical/hard = Very Low); the PSP
        # paper's complaint concerns the middle of the table.
        assert CvssModel().rate(easiest()) is FeasibilityRating.HIGH
        assert CvssModel().rate(hardest()) is FeasibilityRating.VERY_LOW

    def test_rejects_wrong_input_type(self):
        with pytest.raises(TypeError):
            CvssModel().rate(AttackVector.NETWORK)

    def test_exploitability_accessor(self):
        model = CvssModel()
        vector = easiest()
        assert model.exploitability(vector) == vector.exploitability
