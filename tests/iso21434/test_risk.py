"""Tests for risk-value determination (Clause 15.9)."""

import pytest

from repro.iso21434.enums import FeasibilityRating, ImpactRating
from repro.iso21434.risk import (
    DEFAULT_RISK_MATRIX,
    MAX_RISK_VALUE,
    MIN_RISK_VALUE,
    RiskMatrix,
    default_matrix,
    risk_value,
)


class TestDefaultMatrix:
    def test_severe_high_is_maximum(self):
        assert risk_value(ImpactRating.SEVERE, FeasibilityRating.HIGH) == 5

    def test_negligible_is_always_minimum(self):
        for feasibility in FeasibilityRating:
            assert risk_value(ImpactRating.NEGLIGIBLE, feasibility) == 1

    def test_severe_very_low_still_above_minimum(self):
        assert risk_value(ImpactRating.SEVERE, FeasibilityRating.VERY_LOW) == 2

    def test_complete(self):
        assert len(DEFAULT_RISK_MATRIX) == len(list(ImpactRating)) * len(
            list(FeasibilityRating)
        )

    def test_monotone_in_feasibility(self):
        ordered = sorted(FeasibilityRating, key=lambda r: r.level)
        for impact in ImpactRating:
            values = [risk_value(impact, f) for f in ordered]
            assert values == sorted(values)

    def test_monotone_in_impact(self):
        ordered = sorted(ImpactRating, key=lambda r: r.level)
        for feasibility in FeasibilityRating:
            values = [risk_value(i, feasibility) for i in ordered]
            assert values == sorted(values)

    def test_values_in_range(self):
        for value in DEFAULT_RISK_MATRIX.values():
            assert MIN_RISK_VALUE <= value <= MAX_RISK_VALUE

    def test_psp_feasibility_raise_never_lowers_risk(self):
        # The mechanism of the paper: PSP can only raise feasibility for
        # insider threats, and the matrix guarantees risk follows.
        for impact in ImpactRating:
            static = risk_value(impact, FeasibilityRating.VERY_LOW)
            tuned = risk_value(impact, FeasibilityRating.HIGH)
            assert tuned >= static


class TestCustomMatrix:
    def test_missing_cell_rejected(self):
        cells = dict(DEFAULT_RISK_MATRIX)
        del cells[(ImpactRating.SEVERE, FeasibilityRating.HIGH)]
        with pytest.raises(ValueError, match="missing"):
            RiskMatrix(cells)

    def test_out_of_range_value_rejected(self):
        cells = dict(DEFAULT_RISK_MATRIX)
        cells[(ImpactRating.SEVERE, FeasibilityRating.HIGH)] = 6
        with pytest.raises(ValueError, match="out of range"):
            RiskMatrix(cells)

    def test_non_monotone_in_feasibility_rejected(self):
        cells = dict(DEFAULT_RISK_MATRIX)
        cells[(ImpactRating.SEVERE, FeasibilityRating.HIGH)] = 2
        with pytest.raises(ValueError, match="monotone"):
            RiskMatrix(cells)

    def test_non_monotone_in_impact_rejected(self):
        cells = dict(DEFAULT_RISK_MATRIX)
        cells[(ImpactRating.SEVERE, FeasibilityRating.VERY_LOW)] = 1
        cells[(ImpactRating.MAJOR, FeasibilityRating.VERY_LOW)] = 2
        with pytest.raises(ValueError, match="monotone"):
            RiskMatrix(cells)

    def test_default_matrix_singleton(self):
        assert default_matrix() is default_matrix()

    def test_explicit_matrix_used(self):
        cells = {
            (i, f): 1 for i in ImpactRating for f in FeasibilityRating
        }
        flat = RiskMatrix(cells)
        assert risk_value(ImpactRating.SEVERE, FeasibilityRating.HIGH, flat) == 1
