"""Tests for cybersecurity controls and residual risk."""

import pytest

from repro.iso21434.controls import (
    Control,
    ControlCatalog,
    apply_controls,
    default_catalog,
    residual_risk,
    select_controls_for_target,
)
from repro.iso21434.enums import AttackVector, FeasibilityRating, ImpactRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table


def psp_table() -> WeightTable:
    return WeightTable(
        {
            AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
            AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
            AttackVector.LOCAL: FeasibilityRating.MEDIUM,
            AttackVector.PHYSICAL: FeasibilityRating.HIGH,
        },
        source="psp",
    )


class TestControl:
    def test_requires_vectors(self):
        with pytest.raises(ValueError):
            Control("c", "C", frozenset())

    def test_strength_range(self):
        with pytest.raises(ValueError):
            Control("c", "C", frozenset({AttackVector.LOCAL}), strength=0)
        with pytest.raises(ValueError):
            Control("c", "C", frozenset({AttackVector.LOCAL}), strength=4)

    def test_hardens(self):
        control = Control("c", "C", frozenset({AttackVector.LOCAL}))
        assert control.hardens(AttackVector.LOCAL)
        assert not control.hardens(AttackVector.NETWORK)


class TestCatalog:
    def test_default_catalog_contents(self):
        catalog = default_catalog()
        assert "ctl.secure_boot" in catalog
        assert "ctl.obd_auth" in catalog
        assert len(catalog) == 6

    def test_duplicate_rejected(self):
        catalog = default_catalog()
        with pytest.raises(ValueError, match="duplicate"):
            catalog.add(catalog.get("ctl.secure_boot"))

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            default_catalog().get("ctl.nope")

    def test_for_vector(self):
        catalog = default_catalog()
        local = catalog.for_vector(AttackVector.LOCAL)
        assert any(c.control_id == "ctl.obd_auth" for c in local)
        assert all(c.hardens(AttackVector.LOCAL) for c in local)


class TestApplyControls:
    def test_hardened_vector_lowered(self):
        catalog = default_catalog()
        hardened = apply_controls(psp_table(), [catalog.get("ctl.tamper_evidence")])
        assert hardened.rating(AttackVector.PHYSICAL) is FeasibilityRating.MEDIUM

    def test_unhardened_vectors_untouched(self):
        catalog = default_catalog()
        hardened = apply_controls(psp_table(), [catalog.get("ctl.tamper_evidence")])
        assert hardened.rating(AttackVector.LOCAL) is FeasibilityRating.MEDIUM

    def test_strengths_accumulate(self):
        catalog = default_catalog()
        controls = [
            catalog.get("ctl.secure_boot"),       # local -1
            catalog.get("ctl.obd_auth"),          # local -2
        ]
        hardened = apply_controls(psp_table(), controls)
        assert hardened.rating(AttackVector.LOCAL) is FeasibilityRating.VERY_LOW

    def test_saturates_at_very_low(self):
        catalog = default_catalog()
        hardened = apply_controls(standard_table(), list(catalog))
        for vector in AttackVector:
            assert hardened.rating(vector) >= FeasibilityRating.VERY_LOW

    def test_never_raises_feasibility(self):
        catalog = default_catalog()
        base = psp_table()
        hardened = apply_controls(base, list(catalog))
        for vector in AttackVector:
            assert hardened.rating(vector) <= base.rating(vector)

    def test_no_controls_identity_ratings(self):
        hardened = apply_controls(psp_table(), [])
        assert hardened.ratings == psp_table().ratings

    def test_provenance_recorded(self):
        catalog = default_catalog()
        hardened = apply_controls(psp_table(), [catalog.get("ctl.secure_boot")])
        assert hardened.source == "psp+controls"
        assert "Secure Boot" in hardened.note


class TestResidualRisk:
    def test_reduction_computed(self):
        catalog = default_catalog()
        record = residual_risk(
            AttackVector.PHYSICAL,
            ImpactRating.SEVERE,
            psp_table(),
            [catalog.get("ctl.tamper_evidence"), catalog.get("ctl.secure_boot")],
        )
        assert record.initial_risk == 5     # severe x high
        assert record.residual_risk < record.initial_risk
        assert record.risk_reduction == record.initial_risk - record.residual_risk

    def test_no_controls_no_reduction(self):
        record = residual_risk(
            AttackVector.PHYSICAL, ImpactRating.SEVERE, psp_table(), []
        )
        assert record.risk_reduction == 0


class TestControlSelection:
    def test_reaches_target(self):
        selected = select_controls_for_target(
            AttackVector.PHYSICAL,
            ImpactRating.SEVERE,
            psp_table(),
            default_catalog(),
            target_risk=3,
        )
        assert selected is not None
        record = residual_risk(
            AttackVector.PHYSICAL, ImpactRating.SEVERE, psp_table(), selected
        )
        assert record.residual_risk <= 3

    def test_selects_nothing_when_already_at_target(self):
        selected = select_controls_for_target(
            AttackVector.NETWORK,
            ImpactRating.SEVERE,
            psp_table(),   # network already Very Low -> risk 2
            default_catalog(),
            target_risk=2,
        )
        assert selected == []

    def test_unreachable_target_returns_none(self):
        # Severe impact floors at risk 2 in the default matrix; risk 1 is
        # unreachable by feasibility reduction alone.
        selected = select_controls_for_target(
            AttackVector.PHYSICAL,
            ImpactRating.SEVERE,
            psp_table(),
            default_catalog(),
            target_risk=1,
        )
        assert selected is None

    def test_target_validated(self):
        with pytest.raises(ValueError):
            select_controls_for_target(
                AttackVector.PHYSICAL,
                ImpactRating.SEVERE,
                psp_table(),
                default_catalog(),
                target_risk=0,
            )
