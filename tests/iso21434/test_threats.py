"""Tests for threat-scenario identification (Clause 15.4)."""

import pytest

from repro.iso21434.assets import AssetKind, make_asset
from repro.iso21434.enums import (
    AttackerProfile,
    AttackVector,
    CybersecurityProperty,
    StrideCategory,
)
from repro.iso21434.threats import (
    ThreatRegistry,
    ThreatScenario,
    enumerate_stride_threats,
)


def ecm_reprogramming() -> ThreatScenario:
    return ThreatScenario(
        threat_id="ts.ecm.reprogramming",
        name="ECM reprogramming",
        asset_id="ecm.firmware",
        violated_property=CybersecurityProperty.INTEGRITY,
        stride=StrideCategory.TAMPERING,
        attack_vectors=frozenset({AttackVector.PHYSICAL, AttackVector.LOCAL}),
        attacker_profiles=frozenset(
            {AttackerProfile.RATIONAL, AttackerProfile.LOCAL}
        ),
        keywords=("ecmreprogramming", "chiptuning"),
    )


class TestThreatScenario:
    def test_requires_vectors(self):
        with pytest.raises(ValueError, match="attack vector"):
            ThreatScenario(
                threat_id="t",
                name="x",
                asset_id="a",
                violated_property=CybersecurityProperty.INTEGRITY,
                stride=StrideCategory.TAMPERING,
                attack_vectors=frozenset(),
            )

    def test_requires_id(self):
        with pytest.raises(ValueError):
            ThreatScenario(
                threat_id="",
                name="x",
                asset_id="a",
                violated_property=CybersecurityProperty.INTEGRITY,
                stride=StrideCategory.TAMPERING,
                attack_vectors=frozenset({AttackVector.LOCAL}),
            )

    def test_owner_approved_from_profiles(self):
        assert ecm_reprogramming().is_owner_approved

    def test_outsider_only_not_owner_approved(self):
        threat = ThreatScenario(
            threat_id="ts.theft",
            name="Vehicle theft",
            asset_id="dcu.bus_messages",
            violated_property=CybersecurityProperty.INTEGRITY,
            stride=StrideCategory.SPOOFING,
            attack_vectors=frozenset({AttackVector.ADJACENT}),
            attacker_profiles=frozenset({AttackerProfile.MALICIOUS}),
        )
        assert not threat.is_owner_approved

    def test_no_profiles_defaults_to_outsider(self):
        threat = ThreatScenario(
            threat_id="ts.unknown",
            name="Unknown",
            asset_id="a",
            violated_property=CybersecurityProperty.INTEGRITY,
            stride=StrideCategory.TAMPERING,
            attack_vectors=frozenset({AttackVector.LOCAL}),
        )
        assert not threat.is_owner_approved


class TestStrideEnumeration:
    def test_integrity_asset_yields_three_threats(self):
        asset = make_asset(
            "ecm.firmware", "ECM Firmware", AssetKind.FIRMWARE,
            [CybersecurityProperty.INTEGRITY],
        )
        threats = enumerate_stride_threats(
            asset, attack_vectors=[AttackVector.PHYSICAL]
        )
        strides = {t.stride for t in threats}
        assert strides == {
            StrideCategory.SPOOFING,
            StrideCategory.TAMPERING,
            StrideCategory.ELEVATION_OF_PRIVILEGE,
        }

    def test_availability_asset_yields_dos(self):
        asset = make_asset(
            "ecm.runtime", "Runtime", AssetKind.ACTUATION,
            [CybersecurityProperty.AVAILABILITY],
        )
        threats = enumerate_stride_threats(
            asset, attack_vectors=[AttackVector.PHYSICAL]
        )
        assert [t.stride for t in threats] == [StrideCategory.DENIAL_OF_SERVICE]

    def test_ids_are_unique_and_prefixed(self):
        asset = make_asset(
            "ecm.firmware", "FW", AssetKind.FIRMWARE,
            [CybersecurityProperty.INTEGRITY, CybersecurityProperty.AVAILABILITY],
        )
        threats = enumerate_stride_threats(
            asset, attack_vectors=[AttackVector.LOCAL]
        )
        ids = [t.threat_id for t in threats]
        assert len(ids) == len(set(ids))
        assert all(i.startswith("ts.ecm.firmware.") for i in ids)

    def test_vectors_and_profiles_propagate(self):
        asset = make_asset(
            "a", "A", AssetKind.FIRMWARE, [CybersecurityProperty.INTEGRITY]
        )
        threats = enumerate_stride_threats(
            asset,
            attack_vectors=[AttackVector.LOCAL],
            attacker_profiles=[AttackerProfile.INSIDER],
        )
        for threat in threats:
            assert threat.attack_vectors == frozenset({AttackVector.LOCAL})
            assert threat.is_owner_approved


class TestThreatRegistry:
    def test_register_get_contains(self):
        registry = ThreatRegistry()
        threat = registry.register(ecm_reprogramming())
        assert registry.get(threat.threat_id) is threat
        assert threat.threat_id in registry

    def test_duplicate_rejected(self):
        registry = ThreatRegistry()
        registry.register(ecm_reprogramming())
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(ecm_reprogramming())

    def test_unknown_lookup(self):
        with pytest.raises(KeyError, match="unknown threat"):
            ThreatRegistry().get("nope")

    def test_queries(self):
        registry = ThreatRegistry()
        registry.register(ecm_reprogramming())
        assert len(registry.for_asset("ecm.firmware")) == 1
        assert len(registry.owner_approved()) == 1
        assert len(registry.with_vector(AttackVector.PHYSICAL)) == 1
        assert len(registry.with_vector(AttackVector.NETWORK)) == 0
