"""Tests for the shared rating vocabulary."""

import pytest

from repro.iso21434.enums import (
    CAL,
    AttackerProfile,
    AttackVector,
    CybersecurityProperty,
    FeasibilityRating,
    ImpactRating,
    StrideCategory,
)


class TestFeasibilityRating:
    def test_total_order(self):
        assert FeasibilityRating.VERY_LOW < FeasibilityRating.LOW
        assert FeasibilityRating.LOW < FeasibilityRating.MEDIUM
        assert FeasibilityRating.MEDIUM < FeasibilityRating.HIGH

    def test_levels_are_distinct_and_increasing(self):
        levels = [r.level for r in FeasibilityRating]
        assert levels == sorted(levels)
        assert len(set(levels)) == len(levels)

    def test_from_level_round_trip(self):
        for rating in FeasibilityRating:
            assert FeasibilityRating.from_level(rating.level) is rating

    def test_from_level_rejects_unknown(self):
        with pytest.raises(ValueError):
            FeasibilityRating.from_level(99)

    def test_clamp_saturates_both_ends(self):
        assert FeasibilityRating.clamp(-5) is FeasibilityRating.VERY_LOW
        assert FeasibilityRating.clamp(42) is FeasibilityRating.HIGH
        assert FeasibilityRating.clamp(2) is FeasibilityRating.MEDIUM

    def test_labels(self):
        assert FeasibilityRating.VERY_LOW.label() == "Very Low"
        assert FeasibilityRating.HIGH.label() == "High"

    def test_comparison_with_other_type_raises(self):
        with pytest.raises(TypeError):
            FeasibilityRating.LOW < ImpactRating.MODERATE


class TestImpactRating:
    def test_total_order(self):
        assert ImpactRating.NEGLIGIBLE < ImpactRating.MODERATE
        assert ImpactRating.MODERATE < ImpactRating.MAJOR
        assert ImpactRating.MAJOR < ImpactRating.SEVERE

    def test_labels(self):
        assert ImpactRating.SEVERE.label() == "Severe"
        assert ImpactRating.NEGLIGIBLE.label() == "Negligible"


class TestAttackVector:
    def test_reach_ordering(self):
        assert AttackVector.NETWORK.reach > AttackVector.ADJACENT.reach
        assert AttackVector.ADJACENT.reach > AttackVector.LOCAL.reach
        assert AttackVector.LOCAL.reach > AttackVector.PHYSICAL.reach

    def test_four_vectors(self):
        assert len(list(AttackVector)) == 4


class TestCAL:
    def test_order(self):
        assert CAL.NONE < CAL.CAL1 < CAL.CAL2 < CAL.CAL3 < CAL.CAL4

    def test_labels(self):
        assert CAL.CAL3.label() == "CAL3"
        assert CAL.NONE.label() == "-"


class TestStride:
    def test_every_category_violates_a_property(self):
        for category in StrideCategory:
            assert isinstance(category.violated_property, CybersecurityProperty)

    def test_dos_violates_availability(self):
        assert (
            StrideCategory.DENIAL_OF_SERVICE.violated_property
            is CybersecurityProperty.AVAILABILITY
        )

    def test_disclosure_violates_confidentiality(self):
        assert (
            StrideCategory.INFORMATION_DISCLOSURE.violated_property
            is CybersecurityProperty.CONFIDENTIALITY
        )


class TestAttackerProfile:
    def test_owner_approved_profiles(self):
        assert AttackerProfile.INSIDER.is_owner_approved
        assert AttackerProfile.RATIONAL.is_owner_approved
        assert AttackerProfile.LOCAL.is_owner_approved

    def test_outsider_profiles_not_owner_approved(self):
        assert not AttackerProfile.OUTSIDER.is_owner_approved
        assert not AttackerProfile.MALICIOUS.is_owner_approved
        assert not AttackerProfile.ACTIVE.is_owner_approved
        assert not AttackerProfile.PASSIVE.is_owner_approved
