"""Tests for cybersecurity goals and claims (Clause 9.4)."""

import pytest

from repro.iso21434.enums import CAL, CybersecurityProperty
from repro.iso21434.goals import (
    CybersecurityClaim,
    CybersecurityGoal,
    GoalRegistry,
    goal_from_threat,
)
from repro.iso21434.treatment import TreatmentOption


class TestGoal:
    def test_goal_from_threat_template(self):
        goal = goal_from_threat(
            "ts.ecm.tampering",
            "ECM reprogramming",
            CybersecurityProperty.INTEGRITY,
            CAL.CAL3,
        )
        assert goal.goal_id == "cg.ts.ecm.tampering"
        assert "integrity" in goal.statement
        assert "ECM reprogramming" in goal.statement
        assert goal.cal is CAL.CAL3

    def test_requires_statement(self):
        with pytest.raises(ValueError):
            CybersecurityGoal(
                goal_id="g", threat_id="t", statement="",
                protected_property=CybersecurityProperty.INTEGRITY,
                cal=CAL.CAL1,
            )


class TestClaim:
    def test_claims_only_for_retain_or_share(self):
        claim = CybersecurityClaim(
            claim_id="c1", threat_id="t", rationale="low residual risk",
            treatment=TreatmentOption.RETAIN,
        )
        assert claim.treatment is TreatmentOption.RETAIN

    @pytest.mark.parametrize(
        "treatment", [TreatmentOption.REDUCE, TreatmentOption.AVOID]
    )
    def test_reduce_and_avoid_rejected(self, treatment):
        with pytest.raises(ValueError, match="retained or shared"):
            CybersecurityClaim(
                claim_id="c1", threat_id="t", rationale="x",
                treatment=treatment,
            )


class TestRegistry:
    def _goal(self, suffix: str, cal: CAL) -> CybersecurityGoal:
        return goal_from_threat(
            f"ts.{suffix}", suffix, CybersecurityProperty.INTEGRITY, cal
        )

    def test_add_and_query(self):
        registry = GoalRegistry()
        registry.add_goal(self._goal("a", CAL.CAL2))
        registry.add_goal(self._goal("b", CAL.CAL4))
        assert len(registry.goals) == 2
        assert len(registry.goals_for_threat("ts.a")) == 1

    def test_duplicate_goal_rejected(self):
        registry = GoalRegistry()
        registry.add_goal(self._goal("a", CAL.CAL2))
        with pytest.raises(ValueError, match="duplicate"):
            registry.add_goal(self._goal("a", CAL.CAL2))

    def test_duplicate_claim_rejected(self):
        registry = GoalRegistry()
        claim = CybersecurityClaim(
            claim_id="c", threat_id="t", rationale="r",
            treatment=TreatmentOption.SHARE,
        )
        registry.add_claim(claim)
        with pytest.raises(ValueError, match="duplicate"):
            registry.add_claim(claim)

    def test_highest_cal(self):
        registry = GoalRegistry()
        assert registry.highest_cal() is CAL.NONE
        registry.add_goal(self._goal("a", CAL.CAL2))
        registry.add_goal(self._goal("b", CAL.CAL4))
        assert registry.highest_cal() is CAL.CAL4
