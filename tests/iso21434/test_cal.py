"""Tests for CAL determination (paper Fig. 6)."""

import pytest

from repro.iso21434.cal import (
    DEFAULT_CAL_TABLE,
    PHYSICAL_CAL_CEILING,
    CalTable,
    default_table,
    determine_cal,
    physical_ceiling,
)
from repro.iso21434.enums import CAL, AttackVector, ImpactRating


class TestDefaultTable:
    def test_severe_network_is_cal4(self):
        assert determine_cal(ImpactRating.SEVERE, AttackVector.NETWORK) is CAL.CAL4

    def test_severe_physical_capped_at_cal2(self):
        # The structural limitation the paper §II highlights.
        assert determine_cal(ImpactRating.SEVERE, AttackVector.PHYSICAL) is CAL.CAL2

    def test_negligible_impact_no_cal(self):
        for vector in AttackVector:
            assert determine_cal(ImpactRating.NEGLIGIBLE, vector) is CAL.NONE

    def test_complete(self):
        assert len(DEFAULT_CAL_TABLE) == len(list(ImpactRating)) * len(
            list(AttackVector)
        )

    def test_monotone_in_impact_per_vector(self):
        ordered = sorted(ImpactRating, key=lambda r: r.level)
        for vector in AttackVector:
            cals = [determine_cal(i, vector).level for i in ordered]
            assert cals == sorted(cals)

    def test_monotone_in_reach_per_impact(self):
        vectors = sorted(AttackVector, key=lambda v: v.reach)
        for impact in ImpactRating:
            cals = [determine_cal(impact, v).level for v in vectors]
            assert cals == sorted(cals)


class TestPhysicalCeiling:
    def test_ceiling_is_cal2(self):
        assert physical_ceiling() is CAL.CAL2
        assert PHYSICAL_CAL_CEILING is CAL.CAL2

    def test_powertrain_dos_never_exceeds_cal2(self):
        # A safety-severe DoS on a powertrain ECU realised physically
        # demands at most CAL2 under the static standard — the paper's
        # "medium-low level of security emphasis" complaint.
        cal = determine_cal(ImpactRating.SEVERE, AttackVector.PHYSICAL)
        assert cal <= CAL.CAL2

    def test_same_impact_via_network_demands_cal4(self):
        physical = determine_cal(ImpactRating.SEVERE, AttackVector.PHYSICAL)
        network = determine_cal(ImpactRating.SEVERE, AttackVector.NETWORK)
        assert network.level - physical.level == 2


class TestCustomTable:
    def test_missing_cell_rejected(self):
        cells = dict(DEFAULT_CAL_TABLE)
        del cells[(ImpactRating.SEVERE, AttackVector.NETWORK)]
        with pytest.raises(ValueError, match="missing"):
            CalTable(cells)

    def test_custom_table_used_by_determine(self):
        cells = {
            (i, v): CAL.CAL4 for i in ImpactRating for v in AttackVector
        }
        table = CalTable(cells)
        assert determine_cal(
            ImpactRating.NEGLIGIBLE, AttackVector.PHYSICAL, table
        ) is CAL.CAL4

    def test_custom_ceiling(self):
        cells = {
            (i, v): CAL.CAL4 for i in ImpactRating for v in AttackVector
        }
        assert physical_ceiling(CalTable(cells)) is CAL.CAL4

    def test_default_table_singleton(self):
        assert default_table() is default_table()
