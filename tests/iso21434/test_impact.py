"""Tests for impact rating (ISO/SAE-21434 Clause 15.5)."""

import pytest

from repro.iso21434.enums import ImpactCategory, ImpactRating
from repro.iso21434.impact import (
    ImpactProfile,
    impact_from_severity_class,
    safety_impact,
)


class TestImpactProfile:
    def test_unrated_categories_default_negligible(self):
        profile = ImpactProfile({ImpactCategory.SAFETY: ImpactRating.MAJOR})
        assert profile.rating(ImpactCategory.PRIVACY) is ImpactRating.NEGLIGIBLE

    def test_overall_is_maximum(self):
        profile = ImpactProfile(
            {
                ImpactCategory.SAFETY: ImpactRating.MODERATE,
                ImpactCategory.FINANCIAL: ImpactRating.SEVERE,
            }
        )
        assert profile.overall is ImpactRating.SEVERE

    def test_empty_profile_overall_negligible(self):
        assert ImpactProfile().overall is ImpactRating.NEGLIGIBLE

    def test_dominant_category(self):
        profile = ImpactProfile(
            {
                ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
                ImpactCategory.PRIVACY: ImpactRating.MODERATE,
            }
        )
        assert profile.dominant_category is ImpactCategory.OPERATIONAL

    def test_dominant_category_safety_wins_ties(self):
        profile = ImpactProfile(
            {
                ImpactCategory.PRIVACY: ImpactRating.MAJOR,
                ImpactCategory.SAFETY: ImpactRating.MAJOR,
            }
        )
        assert profile.dominant_category is ImpactCategory.SAFETY

    def test_dominant_category_empty_is_none(self):
        assert ImpactProfile().dominant_category is None

    def test_merged_takes_categorywise_maximum(self):
        a = ImpactProfile({ImpactCategory.SAFETY: ImpactRating.MODERATE})
        b = ImpactProfile(
            {
                ImpactCategory.SAFETY: ImpactRating.SEVERE,
                ImpactCategory.FINANCIAL: ImpactRating.MODERATE,
            }
        )
        merged = a.merged_with(b)
        assert merged.rating(ImpactCategory.SAFETY) is ImpactRating.SEVERE
        assert merged.rating(ImpactCategory.FINANCIAL) is ImpactRating.MODERATE

    def test_merged_at_least_each_input(self):
        a = ImpactProfile(
            {
                ImpactCategory.SAFETY: ImpactRating.MAJOR,
                ImpactCategory.PRIVACY: ImpactRating.MODERATE,
            }
        )
        b = ImpactProfile({ImpactCategory.OPERATIONAL: ImpactRating.SEVERE})
        merged = a.merged_with(b)
        for category in ImpactCategory:
            assert merged.rating(category) >= a.rating(category)
            assert merged.rating(category) >= b.rating(category)

    def test_as_rows_covers_all_categories(self):
        rows = ImpactProfile().as_rows()
        assert len(rows) == len(list(ImpactCategory))

    def test_immutable_against_source_mutation(self):
        source = {ImpactCategory.SAFETY: ImpactRating.MAJOR}
        profile = ImpactProfile(source)
        source[ImpactCategory.SAFETY] = ImpactRating.NEGLIGIBLE
        assert profile.rating(ImpactCategory.SAFETY) is ImpactRating.MAJOR


class TestHelpers:
    def test_safety_impact_shorthand(self):
        profile = safety_impact(ImpactRating.SEVERE)
        assert profile.rating(ImpactCategory.SAFETY) is ImpactRating.SEVERE
        assert profile.dominant_category is ImpactCategory.SAFETY

    @pytest.mark.parametrize(
        "severity,expected",
        [
            (0, ImpactRating.NEGLIGIBLE),
            (1, ImpactRating.MODERATE),
            (2, ImpactRating.MAJOR),
            (3, ImpactRating.SEVERE),
        ],
    )
    def test_severity_class_mapping(self, severity, expected):
        assert impact_from_severity_class(severity) is expected

    def test_severity_class_out_of_range(self):
        with pytest.raises(ValueError):
            impact_from_severity_class(4)
