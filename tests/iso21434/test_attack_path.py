"""Tests for attack-path analysis (Clause 15.6/15.7)."""

import pytest

from repro.iso21434.attack_path import (
    AttackPath,
    AttackPathRegistry,
    AttackStep,
    threat_feasibility,
)
from repro.iso21434.enums import AttackVector, FeasibilityRating


def step(desc: str, rating: FeasibilityRating, vector=None) -> AttackStep:
    return AttackStep(description=desc, feasibility=rating, vector=vector)


def obd_path(path_id: str = "ap.1") -> AttackPath:
    return AttackPath(
        path_id=path_id,
        threat_id="ts.ecm.reprogramming",
        steps=(
            step("connect to OBD", FeasibilityRating.LOW, AttackVector.LOCAL),
            step("flash ECM", FeasibilityRating.MEDIUM),
        ),
    )


class TestAttackStep:
    def test_requires_description(self):
        with pytest.raises(ValueError):
            AttackStep(description="", feasibility=FeasibilityRating.LOW)


class TestAttackPath:
    def test_requires_steps(self):
        with pytest.raises(ValueError, match="step"):
            AttackPath(path_id="p", threat_id="t", steps=())

    def test_feasibility_is_minimum_over_steps(self):
        assert obd_path().feasibility is FeasibilityRating.LOW

    def test_single_step_path(self):
        path = AttackPath(
            path_id="p",
            threat_id="t",
            steps=(step("bench access", FeasibilityRating.VERY_LOW,
                        AttackVector.PHYSICAL),),
        )
        assert path.feasibility is FeasibilityRating.VERY_LOW
        assert path.entry_vector is AttackVector.PHYSICAL

    def test_entry_vector_is_first_step(self):
        assert obd_path().entry_vector is AttackVector.LOCAL

    def test_length(self):
        assert obd_path().length == 2

    def test_describe_mentions_feasibility(self):
        assert "Low" in obd_path().describe()

    def test_hardest_step_gates_path(self):
        path = AttackPath(
            path_id="p",
            threat_id="t",
            steps=(
                step("easy entry", FeasibilityRating.HIGH),
                step("hard pivot", FeasibilityRating.VERY_LOW),
                step("easy finish", FeasibilityRating.HIGH),
            ),
        )
        assert path.feasibility is FeasibilityRating.VERY_LOW


class TestThreatFeasibility:
    def test_none_for_no_paths(self):
        assert threat_feasibility([]) is None

    def test_maximum_over_paths(self):
        easy = AttackPath(
            path_id="easy", threat_id="t",
            steps=(step("obd", FeasibilityRating.MEDIUM),),
        )
        hard = AttackPath(
            path_id="hard", threat_id="t",
            steps=(step("bench", FeasibilityRating.VERY_LOW),),
        )
        assert threat_feasibility([easy, hard]) is FeasibilityRating.MEDIUM

    def test_attacker_picks_easiest_path(self):
        paths = [
            AttackPath(
                path_id=f"p{i}", threat_id="t",
                steps=(step("s", rating),),
            )
            for i, rating in enumerate(FeasibilityRating)
        ]
        assert threat_feasibility(paths) is FeasibilityRating.HIGH


class TestRegistry:
    def test_register_and_query(self):
        registry = AttackPathRegistry()
        path = registry.register(obd_path())
        assert registry.get("ap.1") is path
        assert "ap.1" in registry
        assert len(registry.for_threat("ts.ecm.reprogramming")) == 1

    def test_duplicate_rejected(self):
        registry = AttackPathRegistry()
        registry.register(obd_path())
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(obd_path())

    def test_unknown_lookup(self):
        with pytest.raises(KeyError, match="unknown attack path"):
            AttackPathRegistry().get("nope")

    def test_feasibility_for_threat(self):
        registry = AttackPathRegistry()
        registry.register(obd_path("a"))
        registry.register(
            AttackPath(
                path_id="b", threat_id="ts.ecm.reprogramming",
                steps=(step("bench", FeasibilityRating.HIGH),),
            )
        )
        assert (
            registry.feasibility_for_threat("ts.ecm.reprogramming")
            is FeasibilityRating.HIGH
        )
        assert registry.feasibility_for_threat("ts.other") is None
