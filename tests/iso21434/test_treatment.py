"""Tests for risk-treatment decisions (Clause 15.10)."""

import pytest

from repro.iso21434.enums import ImpactCategory, ImpactRating
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.treatment import (
    TreatmentOption,
    TreatmentPolicy,
    decide_treatment,
)


class TestDefaultPolicy:
    @pytest.mark.parametrize(
        "risk,expected",
        [
            (1, TreatmentOption.RETAIN),
            (2, TreatmentOption.RETAIN),
            (3, TreatmentOption.REDUCE),
            (4, TreatmentOption.REDUCE),
            (5, TreatmentOption.AVOID),
        ],
    )
    def test_thresholds(self, risk, expected):
        assert decide_treatment(risk) is expected

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            decide_treatment(0)
        with pytest.raises(ValueError):
            decide_treatment(6)

    def test_financially_dominated_medium_risk_shared(self):
        financial = ImpactProfile(
            {ImpactCategory.FINANCIAL: ImpactRating.MAJOR}
        )
        assert decide_treatment(3, financial) is TreatmentOption.SHARE

    def test_safety_dominated_medium_risk_reduced(self):
        safety = ImpactProfile(
            {
                ImpactCategory.SAFETY: ImpactRating.MAJOR,
                ImpactCategory.FINANCIAL: ImpactRating.MAJOR,
            }
        )
        # safety wins the dominance tie, so no sharing
        assert decide_treatment(3, safety) is TreatmentOption.REDUCE

    def test_financial_share_not_applied_to_avoid(self):
        financial = ImpactProfile(
            {ImpactCategory.FINANCIAL: ImpactRating.SEVERE}
        )
        assert decide_treatment(5, financial) is TreatmentOption.AVOID


class TestCustomPolicy:
    def test_sharing_can_be_disabled(self):
        policy = TreatmentPolicy(share_financial=False)
        financial = ImpactProfile(
            {ImpactCategory.FINANCIAL: ImpactRating.MAJOR}
        )
        assert policy.decide(3, financial) is TreatmentOption.REDUCE

    def test_aggressive_policy_avoids_earlier(self):
        policy = TreatmentPolicy(retain_max=1, reduce_max=2)
        assert policy.decide(3) is TreatmentOption.AVOID

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            TreatmentPolicy(retain_max=0)
        with pytest.raises(ValueError):
            TreatmentPolicy(retain_max=4, reduce_max=3)
