"""Tests for asset identification (Clause 15.3)."""

import pytest

from repro.iso21434.assets import (
    Asset,
    AssetKind,
    AssetRegistry,
    DEFAULT_PROPERTIES,
    make_asset,
    standard_ecu_assets,
)
from repro.iso21434.enums import CybersecurityProperty


def firmware_asset(asset_id: str = "ecm.firmware") -> Asset:
    return make_asset(
        asset_id,
        "ECM Firmware",
        AssetKind.FIRMWARE,
        [CybersecurityProperty.INTEGRITY],
        ecu_id="ecm",
    )


class TestAsset:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            Asset("", "X", AssetKind.FIRMWARE,
                  frozenset({CybersecurityProperty.INTEGRITY}))

    def test_requires_properties(self):
        with pytest.raises(ValueError, match="property"):
            Asset("a", "X", AssetKind.FIRMWARE, frozenset())

    def test_protects(self):
        asset = firmware_asset()
        assert asset.protects(CybersecurityProperty.INTEGRITY)
        assert not asset.protects(CybersecurityProperty.CONFIDENTIALITY)

    def test_make_asset_accepts_any_iterable(self):
        asset = make_asset(
            "x", "X", AssetKind.SENSOR_DATA,
            iter([CybersecurityProperty.INTEGRITY]),
        )
        assert asset.protects(CybersecurityProperty.INTEGRITY)

    def test_hashable(self):
        assert firmware_asset() in {firmware_asset()}


class TestStandardEcuAssets:
    def test_four_assets_per_ecu(self):
        assets = standard_ecu_assets("ecm", "Engine Control Module")
        assert len(assets) == 4

    def test_ids_prefixed_by_ecu(self):
        assets = standard_ecu_assets("ecm", "ECM")
        assert all(a.asset_id.startswith("ecm.") for a in assets)
        assert all(a.ecu_id == "ecm" for a in assets)

    def test_covers_expected_kinds(self):
        kinds = {a.kind for a in standard_ecu_assets("ecm", "ECM")}
        assert kinds == {
            AssetKind.FIRMWARE,
            AssetKind.CALIBRATION_DATA,
            AssetKind.COMMUNICATION,
            AssetKind.DIAGNOSTIC_INTERFACE,
        }

    def test_default_properties_applied(self):
        assets = {a.kind: a for a in standard_ecu_assets("ecm", "ECM")}
        for kind, asset in assets.items():
            assert asset.properties == DEFAULT_PROPERTIES[kind]

    def test_every_kind_has_default_properties(self):
        for kind in AssetKind:
            assert DEFAULT_PROPERTIES[kind]


class TestAssetRegistry:
    def test_register_and_get(self):
        registry = AssetRegistry()
        asset = registry.register(firmware_asset())
        assert registry.get("ecm.firmware") is asset
        assert "ecm.firmware" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = AssetRegistry()
        registry.register(firmware_asset())
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(firmware_asset())

    def test_unknown_lookup(self):
        with pytest.raises(KeyError, match="unknown asset"):
            AssetRegistry().get("nope")

    def test_by_ecu_and_kind(self):
        registry = AssetRegistry()
        registry.register_all(standard_ecu_assets("ecm", "ECM"))
        registry.register_all(standard_ecu_assets("tcm", "TCM"))
        assert len(registry.by_ecu("ecm")) == 4
        assert len(registry.by_kind(AssetKind.FIRMWARE)) == 2

    def test_iteration(self):
        registry = AssetRegistry()
        registry.register_all(standard_ecu_assets("ecm", "ECM"))
        assert {a.asset_id for a in registry} == {
            "ecm.firmware", "ecm.calibration", "ecm.bus_messages", "ecm.diagnostics",
        }
