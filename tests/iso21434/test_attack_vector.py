"""Tests for the attack-vector-based model and WeightTable (paper Fig. 5)."""

import pytest

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import (
    STANDARD_G9_TABLE,
    AttackVectorModel,
    WeightTable,
    standard_table,
)


class TestStandardTable:
    def test_matches_paper_fig5(self):
        table = standard_table()
        assert table.rating(AttackVector.NETWORK) is FeasibilityRating.HIGH
        assert table.rating(AttackVector.ADJACENT) is FeasibilityRating.MEDIUM
        assert table.rating(AttackVector.LOCAL) is FeasibilityRating.LOW
        assert table.rating(AttackVector.PHYSICAL) is FeasibilityRating.VERY_LOW

    def test_source_is_standard(self):
        assert standard_table().source == "iso21434-g9"

    def test_fresh_copies_are_equal_but_independent(self):
        a, b = standard_table(), standard_table()
        assert a.ratings == b.ratings
        assert a is not b

    def test_ranked_vectors_remote_first(self):
        assert standard_table().ranked_vectors() == (
            AttackVector.NETWORK,
            AttackVector.ADJACENT,
            AttackVector.LOCAL,
            AttackVector.PHYSICAL,
        )


class TestWeightTable:
    def test_missing_vector_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            WeightTable({AttackVector.NETWORK: FeasibilityRating.HIGH})

    def test_with_rating_returns_new_table(self):
        base = standard_table()
        tuned = base.with_rating(
            AttackVector.PHYSICAL, FeasibilityRating.HIGH, source="psp"
        )
        assert base.rating(AttackVector.PHYSICAL) is FeasibilityRating.VERY_LOW
        assert tuned.rating(AttackVector.PHYSICAL) is FeasibilityRating.HIGH
        assert tuned.source == "psp"

    def test_differs_from_lists_changed_vectors(self):
        base = standard_table()
        tuned = base.with_rating(
            AttackVector.PHYSICAL, FeasibilityRating.HIGH, source="psp"
        )
        assert base.differs_from(tuned) == (AttackVector.PHYSICAL,)
        assert base.differs_from(base) == ()

    def test_items_in_standard_order(self):
        vectors = [v for v, _ in standard_table().items()]
        assert vectors == [
            AttackVector.NETWORK,
            AttackVector.ADJACENT,
            AttackVector.LOCAL,
            AttackVector.PHYSICAL,
        ]

    def test_as_rows_renders_labels(self):
        rows = standard_table().as_rows()
        assert ("Network", "High") in rows
        assert ("Physical", "Very Low") in rows

    def test_ranked_vectors_ties_broken_by_reach(self):
        flat = WeightTable(
            {v: FeasibilityRating.MEDIUM for v in AttackVector}, source="test"
        )
        assert flat.ranked_vectors()[0] is AttackVector.NETWORK


class TestAttackVectorModel:
    def test_default_uses_standard_table(self):
        model = AttackVectorModel()
        assert model.rate(AttackVector.NETWORK) is FeasibilityRating.HIGH
        assert model.rate(AttackVector.PHYSICAL) is FeasibilityRating.VERY_LOW

    def test_rejects_wrong_input_type(self):
        with pytest.raises(TypeError):
            AttackVectorModel().rate("network")

    def test_retune_swaps_table_and_returns_previous(self):
        model = AttackVectorModel()
        tuned = standard_table().with_rating(
            AttackVector.PHYSICAL, FeasibilityRating.HIGH, source="psp"
        )
        previous = model.retune(tuned)
        assert previous.source == "iso21434-g9"
        assert model.rate(AttackVector.PHYSICAL) is FeasibilityRating.HIGH

    def test_standard_constant_is_complete(self):
        assert set(STANDARD_G9_TABLE) == set(AttackVector)
