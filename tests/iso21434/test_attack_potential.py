"""Tests for the attack-potential-based feasibility model (paper Fig. 3)."""

import pytest

from repro.iso21434.enums import FeasibilityRating
from repro.iso21434.feasibility.attack_potential import (
    AttackPotentialInput,
    AttackPotentialModel,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
    rating_from_potential,
)


def easiest() -> AttackPotentialInput:
    return AttackPotentialInput(
        elapsed_time=ElapsedTime.ONE_WEEK,
        expertise=Expertise.LAYMAN,
        knowledge=Knowledge.PUBLIC,
        window=WindowOfOpportunity.UNLIMITED,
        equipment=Equipment.STANDARD,
    )


def hardest() -> AttackPotentialInput:
    return AttackPotentialInput(
        elapsed_time=ElapsedTime.MORE_THAN_THREE_YEARS,
        expertise=Expertise.MULTIPLE_EXPERTS,
        knowledge=Knowledge.STRICTLY_CONFIDENTIAL,
        window=WindowOfOpportunity.DIFFICULT,
        equipment=Equipment.MULTIPLE_BESPOKE,
    )


class TestFactorWeights:
    def test_elapsed_time_weights(self):
        assert [lvl.weight for lvl in ElapsedTime] == [0, 1, 4, 10, 19]

    def test_expertise_weights(self):
        assert [lvl.weight for lvl in Expertise] == [0, 3, 6, 8]

    def test_knowledge_weights(self):
        assert [lvl.weight for lvl in Knowledge] == [0, 3, 7, 11]

    def test_window_weights(self):
        assert [lvl.weight for lvl in WindowOfOpportunity] == [0, 1, 4, 10]

    def test_equipment_weights(self):
        assert [lvl.weight for lvl in Equipment] == [0, 4, 7, 9]


class TestPotentialValue:
    def test_easiest_attack_sums_to_zero(self):
        assert easiest().potential_value == 0

    def test_hardest_attack_sums_to_57(self):
        assert hardest().potential_value == 19 + 8 + 11 + 10 + 9

    def test_mixed_sum(self):
        attack = AttackPotentialInput(
            elapsed_time=ElapsedTime.ONE_MONTH,
            expertise=Expertise.PROFICIENT,
            knowledge=Knowledge.RESTRICTED,
            window=WindowOfOpportunity.EASY,
            equipment=Equipment.SPECIALIZED,
        )
        assert attack.potential_value == 1 + 3 + 3 + 1 + 4


class TestRatingMapping:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, FeasibilityRating.HIGH),
            (13, FeasibilityRating.HIGH),
            (14, FeasibilityRating.MEDIUM),
            (19, FeasibilityRating.MEDIUM),
            (20, FeasibilityRating.LOW),
            (24, FeasibilityRating.LOW),
            (25, FeasibilityRating.VERY_LOW),
            (100, FeasibilityRating.VERY_LOW),
        ],
    )
    def test_band_boundaries(self, value, expected):
        assert rating_from_potential(value) is expected

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            rating_from_potential(-1)

    def test_rating_non_increasing_in_potential(self):
        ratings = [rating_from_potential(v) for v in range(0, 60)]
        for earlier, later in zip(ratings, ratings[1:]):
            assert later <= earlier


class TestModel:
    def test_rates_easiest_high(self):
        assert AttackPotentialModel().rate(easiest()) is FeasibilityRating.HIGH

    def test_rates_hardest_very_low(self):
        assert AttackPotentialModel().rate(hardest()) is FeasibilityRating.VERY_LOW

    def test_rejects_wrong_input_type(self):
        with pytest.raises(TypeError):
            AttackPotentialModel().rate("physical")

    def test_exposes_potential_value(self):
        model = AttackPotentialModel()
        assert model.potential_value(hardest()) == hardest().potential_value

    def test_obd_reprogramming_scenario_is_feasible(self):
        # The paper's powertrain argument: an owner with unlimited access,
        # proficient skills and a standard OBD flasher is a HIGH-feasibility
        # attacker even though the G.9 table calls physical "Very Low".
        attack = AttackPotentialInput(
            elapsed_time=ElapsedTime.ONE_WEEK,
            expertise=Expertise.PROFICIENT,
            knowledge=Knowledge.PUBLIC,
            window=WindowOfOpportunity.UNLIMITED,
            equipment=Equipment.SPECIALIZED,
        )
        assert AttackPotentialModel().rate(attack) is FeasibilityRating.HIGH
