"""Shape-pinning tests for the unified health views and legacy aliases.

``repro.obs.views`` promises two things this file pins:

* the **deprecated** ``stream_stats`` aliases keep exactly the pre-obs
  flat dict shapes, key for key, for both runtime flavours — old
  dashboards and bench baselines must not notice the refactor;
* the registry's ``psp_*_total`` counters and the health document's
  counter block stay equal — the "one source" contract.
"""

from repro.core.config import TargetApplication
from repro.obs.registry import MetricsRegistry
from repro.obs.views import (
    HEALTH_SCHEMA_VERSION,
    describe_stages,
    runtime_health,
    stage_latencies,
    stream_stats,
)
from repro.social import ecm_reprogramming_corpus
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime
from repro.stream.sharding import ShardedStreamRuntime, shard_feeds
from tests.conftest import build_ecm_database

ECM_TARGET = TargetApplication("car", "europe", "passenger")

#: The exact pre-obs ``StreamRuntime.stream_stats`` key order.
SINGLE_KEYS = [
    "ticks",
    "cursor",
    "posts_ingested",
    "posts_rejected",
    "retunes",
    "forced_retunes",
    "tara_rescores",
    "alerts",
    "learned_keywords",
    "index",
]

#: The exact pre-obs ``ShardedStreamRuntime.stream_stats`` key order.
SHARDED_KEYS = [
    "ticks",
    "shards",
    "executor",
    "cursors",
    "posts_ingested",
    "posts_rejected",
    "retunes",
    "forced_retunes",
    "tara_rescores",
    "alerts",
    "learned_keywords",
    "shard_stats",
]


def _single(**kwargs):
    return StreamRuntime(
        SyntheticFeed.from_corpus(ecm_reprogramming_corpus()),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
        batch_size=300,
        **kwargs,
    )


def _sharded(**kwargs):
    return ShardedStreamRuntime(
        shard_feeds(list(ecm_reprogramming_corpus().posts), 2),
        build_ecm_database(),
        target=ECM_TARGET,
        since_year=2015,
        batch_size=300,
        **kwargs,
    )


class TestLegacyShapes:
    def test_single_runtime_shape_is_pinned(self):
        runtime = _single()
        runtime.run()
        assert list(runtime.stream_stats) == SINGLE_KEYS

    def test_sharded_runtime_shape_is_pinned(self):
        runtime = _sharded()
        runtime.run()
        assert list(runtime.stream_stats) == SHARDED_KEYS

    def test_instrumentation_does_not_change_the_legacy_dict(self):
        plain = _single()
        plain.run()
        instrumented = _single(metrics=MetricsRegistry())
        instrumented.run()
        assert instrumented.stream_stats == plain.stream_stats

    def test_alias_matches_module_function(self):
        runtime = _single()
        runtime.run()
        assert runtime.stream_stats == stream_stats(runtime)


class TestOneSourceContract:
    COUNTER_TO_LEGACY = {
        "psp_ticks_total": "ticks",
        "psp_posts_ingested_total": "posts_ingested",
        "psp_posts_rejected_total": "posts_rejected",
        "psp_retunes_total": "retunes",
        "psp_forced_retunes_total": "forced_retunes",
        "psp_tara_rescores_total": "tara_rescores",
        "psp_alerts_total": "alerts",
    }

    def _assert_counters_agree(self, runtime):
        stats = runtime.stream_stats
        collected = runtime.metrics.collect()
        for metric, legacy in self.COUNTER_TO_LEGACY.items():
            assert collected[metric].value() == stats[legacy], metric
        assert collected["psp_keywords_learned_total"].value() == len(
            stats["learned_keywords"]
        )

    def test_single_runtime_registry_equals_legacy(self):
        runtime = _single(metrics=MetricsRegistry())
        runtime.run()
        self._assert_counters_agree(runtime)

    def test_sharded_runtime_registry_equals_legacy(self):
        runtime = _sharded(metrics=MetricsRegistry())
        runtime.run()
        self._assert_counters_agree(runtime)


class TestHealthDocument:
    def test_single_runtime_health(self):
        runtime = _single(metrics=MetricsRegistry())
        runtime.run()
        health = runtime_health(runtime)
        assert health["health_schema"] == HEALTH_SCHEMA_VERSION
        assert health["runtime"] == "stream"
        assert health["counters"]["ticks"] == len(runtime.ticks)
        assert health["cursor"] == runtime.cursor
        assert "index" in health
        assert health["stages"]["tick"]["count"] == len(runtime.ticks)

    def test_sharded_runtime_health(self):
        runtime = _sharded(metrics=MetricsRegistry())
        runtime.run()
        health = runtime_health(runtime)
        assert health["runtime"] == "sharded"
        assert health["shards"] == 2
        assert len(health["shard_stats"]) == 2
        for row in health["shard_stats"]:
            assert set(row) == {"shard", "cursor", "posts", "index"}

    def test_null_registry_yields_empty_stages(self):
        runtime = _single()
        runtime.run()
        assert runtime_health(runtime)["stages"] == {}


class TestStageLatencies:
    def test_stages_cover_the_tick_pipeline(self):
        runtime = _single(metrics=MetricsRegistry())
        runtime.run()
        stages = stage_latencies(runtime.metrics)
        for expected in ("filter", "append", "delta_ingest", "sai", "tick"):
            assert expected in stages, expected
            row = stages[expected]
            assert row["count"] > 0
            assert row["total_seconds"] >= 0
            assert row["mean_ms"] >= 0

    def test_empty_registry_is_empty(self):
        assert stage_latencies(MetricsRegistry()) == {}


class TestDescribeStages:
    def test_renders_canonical_order(self):
        stages = {
            "sai": {"count": 2, "total_seconds": 0.2, "mean_ms": 100.0},
            "filter": {"count": 2, "total_seconds": 0.1, "mean_ms": 50.0},
            "tick": {"count": 2, "total_seconds": 0.5, "mean_ms": 250.0},
        }
        text = describe_stages(stages)
        lines = [line.split()[0] for line in text.splitlines()]
        assert lines == ["filter", "sai", "tick"]
        assert "mean" in text and "total" in text

    def test_empty_input_is_none(self):
        assert describe_stages({}) is None
