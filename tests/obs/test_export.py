"""Unit tests for the Prometheus/JSON/table exporters and the lint."""

import json

from repro.obs.export import (
    lint_prometheus,
    prometheus_text,
    stats_table,
    write_snapshot,
)
from repro.obs.registry import MetricsRegistry


def _populated():
    r = MetricsRegistry()
    r.counter("psp_ticks_total", "Stream ticks processed").inc(3)
    r.counter("events_total", "By platform", labelnames=("platform",)).inc(
        2, platform="forum"
    )
    r.gauge("index_posts", "Posts indexed").set(11)
    h = r.histogram("psp_tick_seconds", "Tick latency", buckets=(0.01, 0.1))
    h.observe(0.005)
    h.observe(0.05)
    h.observe(5.0)
    r.histogram("batch_posts", "Batch sizes", buckets=(10.0, 100.0)).observe(40)
    return r


class TestPrometheusText:
    def test_headers_and_scalar_samples(self):
        text = prometheus_text(_populated())
        assert "# HELP psp_ticks_total Stream ticks processed" in text
        assert "# TYPE psp_ticks_total counter" in text
        assert "psp_ticks_total 3" in text
        assert "# TYPE index_posts gauge" in text
        assert 'events_total{platform="forum"} 2' in text

    def test_histogram_expansion_is_cumulative(self):
        text = prometheus_text(_populated())
        assert 'psp_tick_seconds_bucket{le="0.01"} 1' in text
        assert 'psp_tick_seconds_bucket{le="0.1"} 2' in text
        assert 'psp_tick_seconds_bucket{le="+Inf"} 3' in text
        assert "psp_tick_seconds_count 3" in text
        assert "psp_tick_seconds_sum" in text

    def test_empty_registry_exports_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_are_escaped(self):
        r = MetricsRegistry()
        r.counter("events_total", labelnames=("platform",)).inc(
            platform='we"ird\\name'
        )
        text = prometheus_text(r)
        assert r'we\"ird\\name' in text
        assert lint_prometheus(text) == []


class TestLint:
    def test_clean_exposition_has_no_problems(self):
        assert lint_prometheus(prometheus_text(_populated())) == []

    def test_malformed_sample_is_flagged(self):
        problems = lint_prometheus("this is not a sample line\n")
        assert any("malformed sample" in p for p in problems)

    def test_untyped_sample_is_flagged(self):
        problems = lint_prometheus("orphan_metric 1\n")
        assert any("untyped sample" in p for p in problems)
        problems = lint_prometheus("orphan_metric_sum 1\n")
        assert any("no TYPE" in p for p in problems)

    def test_non_cumulative_buckets_are_flagged(self):
        text = (
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.01"} 5\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 1.0\n"
            "lat_seconds_count 3\n"
        )
        problems = lint_prometheus(text)
        assert any("not cumulative" in p for p in problems)

    def test_missing_inf_bucket_is_flagged(self):
        text = (
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.01"} 5\n'
            "lat_seconds_sum 1.0\n"
            "lat_seconds_count 5\n"
        )
        problems = lint_prometheus(text)
        assert any("+Inf" in p for p in problems)

    def test_inf_bucket_count_mismatch_is_flagged(self):
        text = (
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="+Inf"} 4\n'
            "lat_seconds_sum 1.0\n"
            "lat_seconds_count 5\n"
        )
        problems = lint_prometheus(text)
        assert any("_count" in p for p in problems)

    def test_unknown_type_is_flagged(self):
        problems = lint_prometheus("# TYPE x widget\n")
        assert any("unknown type" in p for p in problems)


class TestSnapshotFile:
    def test_write_snapshot_round_trips(self, tmp_path):
        registry = _populated()
        path = write_snapshot(registry, tmp_path / "metrics" / "snap.json")
        payload = json.loads(path.read_text())
        restored = MetricsRegistry()
        restored.restore(payload)
        assert restored.snapshot() == registry.snapshot()
        assert lint_prometheus(prometheus_text(restored)) == []


class TestStatsTable:
    def test_sections_and_units(self):
        table = stats_table(_populated())
        assert "psp_ticks_total" in table
        assert "counter" in table and "gauge" in table
        assert 'events_total{platform=forum}' in table
        # Latency histograms read in ms/s; size histograms stay plain.
        tick_row = next(
            line for line in table.splitlines() if "psp_tick_seconds" in line
        )
        assert "ms" in tick_row and " s" in tick_row
        batch_row = next(
            line for line in table.splitlines() if "batch_posts" in line
        )
        assert "ms" not in batch_row
        assert "40.0" in batch_row

    def test_empty_registry_renders_empty_table(self):
        assert stats_table(MetricsRegistry()) == ""
