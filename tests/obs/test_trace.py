"""Unit tests for tick-span tracing."""

from repro.obs.registry import MetricsRegistry, NullRegistry
from repro.obs.trace import KEEP_TICKS, NULL_TRACE, TickTrace, trace_for


def _tick_with_stages(trace, stages=("filter", "append")):
    with trace.tick():
        for name in stages:
            with trace.span(name):
                pass


class TestSpanTree:
    def test_stages_nest_under_the_tick_root(self):
        registry = MetricsRegistry()
        trace = TickTrace(registry)
        _tick_with_stages(trace, ("filter", "append", "sai"))
        root = trace.last_tick()
        assert root.name == "tick"
        assert [c.name for c in root.children] == ["filter", "append", "sai"]
        assert all(c.seconds >= 0 for c in root.children)
        assert root.seconds >= sum(c.seconds for c in root.children)

    def test_spans_nest_recursively(self):
        trace = TickTrace(MetricsRegistry())
        with trace.tick():
            with trace.span("sai"):
                with trace.span("rescore"):
                    pass
        root = trace.last_tick()
        assert root.children[0].name == "sai"
        assert root.children[0].children[0].name == "rescore"

    def test_as_dict_and_render(self):
        trace = TickTrace(MetricsRegistry())
        _tick_with_stages(trace, ("filter",))
        doc = trace.last_tick().as_dict()
        assert doc["name"] == "tick"
        assert doc["children"][0]["name"] == "filter"
        rendered = trace.last_tick().render()
        assert "tick" in rendered and "filter" in rendered and "ms" in rendered

    def test_orphan_stage_outside_a_tick_is_kept(self):
        trace = TickTrace(MetricsRegistry())
        with trace.span("audit"):
            pass
        assert trace.last_tick().name == "audit"


class TestHistogramRouting:
    def test_tick_and_stage_histograms_fill(self):
        registry = MetricsRegistry()
        trace = TickTrace(registry)
        _tick_with_stages(trace, ("filter", "append"))
        _tick_with_stages(trace, ("filter",))
        collected = registry.collect()
        tick_hist = collected["psp_tick_seconds"]
        assert tick_hist.series().count == 2
        stage_hist = collected["psp_tick_stage_seconds"]
        assert stage_hist.series(stage="filter").count == 2
        assert stage_hist.series(stage="append").count == 1


class TestRetention:
    def test_only_keep_ticks_trees_are_retained(self):
        trace = TickTrace(MetricsRegistry(), keep_ticks=3)
        for _ in range(5):
            _tick_with_stages(trace, ())
        assert len(trace.ticks) == 3

    def test_default_retention_is_keep_ticks(self):
        trace = TickTrace(MetricsRegistry())
        for _ in range(KEEP_TICKS + 5):
            _tick_with_stages(trace, ())
        assert len(trace.ticks) == KEEP_TICKS


class TestNullTrace:
    def test_trace_for_null_registry_is_the_shared_null_trace(self):
        assert trace_for(NullRegistry()) is NULL_TRACE
        assert trace_for(None) is NULL_TRACE

    def test_trace_for_real_registry_is_live(self):
        trace = trace_for(MetricsRegistry())
        assert isinstance(trace, TickTrace)
        assert trace.enabled is True

    def test_null_trace_contexts_do_nothing(self):
        with NULL_TRACE.tick():
            with NULL_TRACE.span("filter"):
                pass
        assert NULL_TRACE.last_tick() is None
        assert NULL_TRACE.ticks == []
        assert NULL_TRACE.enabled is False

    def test_null_contexts_are_prebuilt(self):
        # The no-op path allocates nothing per tick.
        assert NULL_TRACE.tick() is NULL_TRACE.span("anything")
