"""Unit tests for instruments, the registry, and snapshot/restore."""

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    OBS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    ensure_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("posts_total")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labelled_series_are_independent(self):
        c = Counter("events_total", labelnames=("platform",))
        c.inc(2, platform="forum")
        c.inc(platform="twitter")
        assert c.value(platform="forum") == 2
        assert c.value(platform="twitter") == 1
        assert c.samples() == {("forum",): 2, ("twitter",): 1}

    def test_negative_inc_rejected(self):
        c = Counter("posts_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_set_must_match_exactly(self):
        c = Counter("events_total", labelnames=("platform",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(platform="forum", extra="x")
        with pytest.raises(ValueError):
            c.inc(wrong="forum")

    def test_unread_series_defaults_to_zero(self):
        c = Counter("events_total", labelnames=("platform",))
        assert c.value(platform="never") == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("index_posts")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_gauge_may_go_negative(self):
        g = Gauge("drift")
        g.dec(2)
        assert g.value() == -2


class TestHistogram:
    def test_le_bound_is_inclusive(self):
        h = Histogram("lat_seconds", buckets=(0.005, 0.01))
        h.observe(0.005)
        series = h.series()
        # Exactly-at-bound lands in that bucket, not the next.
        assert series.counts == [1, 0, 0]

    def test_above_every_bound_goes_to_inf_slot(self):
        h = Histogram("lat_seconds", buckets=(0.005, 0.01))
        h.observe(99.0)
        assert h.series().counts == [0, 0, 1]

    def test_cumulative_is_running_sum(self):
        h = Histogram("lat_seconds", buckets=(1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 2.5, 9.0):
            h.observe(v)
        assert h.series().cumulative() == [1, 2, 3, 4]
        assert h.series().count == 4
        assert h.series().sum == pytest.approx(13.5)

    def test_buckets_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())

    def test_default_bucket_sets_are_valid(self):
        Histogram("lat_seconds", buckets=DEFAULT_LATENCY_BUCKETS)
        Histogram("batch_posts", buckets=DEFAULT_SIZE_BUCKETS)
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(DEFAULT_SIZE_BUCKETS)


class TestNameValidation:
    def test_bad_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("1bad")
        with pytest.raises(ValueError):
            Counter("has space")

    def test_bad_label_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("ok_total", labelnames=("le gal",))

    def test_duplicate_label_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("ok_total", labelnames=("a", "a"))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a_total") is r.counter("a_total")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a_total")
        with pytest.raises(ValueError):
            r.gauge("a_total")

    def test_labelnames_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a_total", labelnames=("x",))
        with pytest.raises(ValueError):
            r.counter("a_total", labelnames=("y",))

    def test_collect_sums_children(self):
        parent = MetricsRegistry()
        parent.counter("ticks_total").inc(1)
        for _ in range(2):
            parent.child().counter("ticks_total").inc(2)
        assert parent.collect()["ticks_total"].value() == 5

    def test_collect_returns_fresh_instruments(self):
        r = MetricsRegistry()
        r.counter("ticks_total").inc()
        r.collect()["ticks_total"].inc(100)
        assert r.collect()["ticks_total"].value() == 1

    def test_gauges_merge_by_summation(self):
        parent = MetricsRegistry()
        parent.child().gauge("index_posts").set(10)
        parent.child().gauge("index_posts").set(7)
        # Per-shard sizes sum to the fleet total.
        assert parent.collect()["index_posts"].value() == 17

    def test_histogram_bucket_mismatch_on_merge_raises(self):
        a = MetricsRegistry()
        a.histogram("lat_seconds", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat_seconds", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            MetricsRegistry.merged([a, b])

    def test_collectors_run_at_collect_time(self):
        r = MetricsRegistry()
        gauge = r.gauge("index_posts")
        backing = {"n": 0}
        r.add_collector(lambda: gauge.set(backing["n"]))
        backing["n"] = 42
        assert r.collect()["index_posts"].value() == 42
        backing["n"] = 7
        assert r.collect()["index_posts"].value() == 7

    def test_merged_static_sums_independent_registries(self):
        regs = []
        for amount in (1, 2, 3):
            r = MetricsRegistry()
            r.counter("ticks_total").inc(amount)
            regs.append(r)
        assert MetricsRegistry.merged(regs).counter("ticks_total").value() == 6


class TestSnapshotRestore:
    def _populated(self):
        r = MetricsRegistry()
        r.counter("ticks_total", "Ticks").inc(3)
        r.counter("events_total", labelnames=("platform",)).inc(2, platform="forum")
        r.gauge("index_posts").set(11)
        h = r.histogram("lat_seconds", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.5)
        return r

    def test_round_trip_is_exact(self):
        original = self._populated()
        restored = MetricsRegistry()
        restored.restore(original.snapshot())
        assert restored.snapshot() == original.snapshot()

    def test_snapshot_is_schema_versioned(self):
        snap = self._populated().snapshot()
        assert snap["obs_schema"] == OBS_SCHEMA_VERSION
        assert snap["metrics"]["ticks_total"]["kind"] == "counter"

    def test_restore_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            MetricsRegistry().restore({"obs_schema": 999, "metrics": {}})

    def test_restore_is_a_summation_merge(self):
        r = MetricsRegistry()
        r.counter("ticks_total").inc(5)
        snap = r.snapshot()
        r.restore(snap)  # restoring on top adds, by design
        assert r.collect()["ticks_total"].value() == 10

    def test_snapshot_includes_children(self):
        parent = MetricsRegistry()
        parent.child().counter("ticks_total").inc(4)
        snap = parent.snapshot()
        assert snap["metrics"]["ticks_total"]["series"] == [
            {"labels": [], "value": 4}
        ]


class TestNullRegistry:
    def test_every_instrument_call_is_a_noop(self):
        null = NullRegistry()
        null.counter("a_total").inc(5)
        null.gauge("g").set(3)
        null.histogram("h_seconds").observe(0.1)
        assert null.counter("a_total").value() == 0
        assert null.collect() == {}
        assert null.snapshot() == {
            "obs_schema": OBS_SCHEMA_VERSION,
            "metrics": {},
        }

    def test_child_is_self_and_disabled(self):
        null = NullRegistry()
        assert null.child() is null
        assert null.enabled is False
        assert null.children == ()

    def test_restore_is_a_noop(self):
        null = NullRegistry()
        null.restore({"obs_schema": OBS_SCHEMA_VERSION, "metrics": {}})
        assert null.collect() == {}


class TestEnsureRegistry:
    def test_none_becomes_null(self):
        assert isinstance(ensure_registry(None), NullRegistry)

    def test_real_registry_passes_through(self):
        r = MetricsRegistry()
        assert ensure_registry(r) is r
