"""Unit tests for the ``repro.obs`` telemetry layer."""
