"""Property tests: shard-delta merge == unsharded tracking.

The contracts behind :class:`repro.stream.sharding.ShardedStreamRuntime`:

* :func:`repro.stream.deltas.compute_signal_delta` (the arena-sweep
  batch kernel) folds to exactly the same aggregates as observing the
  posts one by one;
* :meth:`SignalDelta.merge` is commutative and associative — integer
  fields exactly, the float sentiment sum up to summation order;
* the pure-sum merge of per-shard :class:`DeltaTracker`\\ s equals one
  unsharded tracker fed the concatenated feed, for *any* partition of
  the posts — including partitions that scatter timestamps out of order
  across shards (year buckets are keyed by date, not arrival order).
"""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import AttackVector
from repro.social.post import Engagement, Post
from repro.stream.deltas import (
    DeltaTracker,
    SignalDelta,
    compute_signal_delta,
)
from repro.stream.sharding import merge_signals

#: Vocabulary with insider/outsider voice markers, stem collisions and
#: phrase halves, so matching, voting and sentiment all get exercised.
WORDS = (
    "dpf", "delete", "deleting", "egr", "removal", "kit", "install",
    "my", "the", "mechanic", "dealer", "stolen", "warranty", "love",
    "hate", "#dpfdelete", "#egr_removal", "superdpfdeletekit",
)

KEYWORDS = ("dpfdelete", "egrremoval", "delet", "kit", "nomatchxyz")

REGIONS = ("europe", "americas")


def _database():
    database = KeywordDatabase()
    for keyword in KEYWORDS:
        database.add(
            AttackKeyword(keyword=keyword, vector=AttackVector.LOCAL)
        )
    return database


@st.composite
def _posts(draw, min_size=0, max_size=40):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    posts = []
    for index in range(count):
        words = draw(
            st.lists(st.sampled_from(WORDS), min_size=1, max_size=8)
        )
        posts.append(
            Post(
                post_id=f"p{index:03d}",
                text=" ".join(words),
                author=draw(st.sampled_from(("a", "b", "c"))),
                created_at=dt.date(
                    draw(st.integers(min_value=2015, max_value=2023)),
                    draw(st.integers(min_value=1, max_value=12)),
                    draw(st.integers(min_value=1, max_value=28)),
                ),
                region=draw(st.sampled_from(REGIONS)),
                engagement=Engagement(
                    views=draw(st.integers(min_value=0, max_value=500)),
                    likes=draw(st.integers(min_value=0, max_value=50)),
                    reposts=draw(st.integers(min_value=0, max_value=20)),
                    replies=draw(st.integers(min_value=0, max_value=20)),
                ),
            )
        )
    return posts


@st.composite
def _sharded_posts(draw):
    """Posts plus a random shard assignment (timestamps land anywhere)."""
    posts = draw(_posts(min_size=1))
    shards = draw(st.integers(min_value=1, max_value=4))
    assignment = [
        draw(st.integers(min_value=0, max_value=shards - 1)) for _ in posts
    ]
    partitions = [[] for _ in range(shards)]
    for post, shard in zip(posts, assignment):
        partitions[shard].append(post)
    return posts, partitions


def _assert_states_equal(left, right):
    """Tracker states equal: ints exactly, sentiment sums approximately."""
    assert left["votes"] == right["votes"]
    assert left["observed"] == right["observed"]
    assert set(left["buckets"]) == set(right["buckets"])
    for keyword, years in left["buckets"].items():
        other_years = right["buckets"][keyword]
        assert set(years) == set(other_years)
        for year, values in years.items():
            other = other_years[year]
            assert values[:5] == other[:5]
            assert values[5] == pytest.approx(other[5], abs=1e-9)


def _tracker(posts, region="europe"):
    tracker = DeltaTracker(_database(), region=region)
    tracker.observe_batch(posts)
    return tracker


@given(_posts())
@settings(max_examples=40, deadline=None)
def test_batch_kernel_equals_per_post_observe(posts):
    probe = DeltaTracker(_database(), region="europe")
    probe.observe_batch(posts)
    swept = DeltaTracker(_database(), region="europe")
    swept.ingest_batch(posts)
    # Bit-for-bit: the sweep folds post-major in keyword order, exactly
    # like the per-post probe loop, so even float sums agree.
    assert probe.state_dict() == swept.state_dict()


@given(_sharded_posts())
@settings(max_examples=40, deadline=None)
def test_merged_shards_equal_unsharded_tracker(posts_and_partitions):
    posts, partitions = posts_and_partitions
    unsharded = _tracker(posts)
    shard_trackers = [_tracker(part) for part in partitions]
    merged = DeltaTracker.merged(shard_trackers)
    _assert_states_equal(merged.state_dict(), unsharded.state_dict())

    merged_view = merge_signals(shard_trackers)
    want = unsharded.signals()
    assert set(merged_view) == set(want)
    for keyword, signals in want.items():
        got = merged_view[keyword]
        assert got.post_count == signals.post_count
        assert got.engagement == signals.engagement
        assert got.mean_sentiment == pytest.approx(signals.mean_sentiment)


@given(_sharded_posts())
@settings(max_examples=40, deadline=None)
def test_tracker_merge_is_order_independent(posts_and_partitions):
    posts, partitions = posts_and_partitions
    forward = DeltaTracker.merged([_tracker(part) for part in partitions])
    backward = DeltaTracker.merged(
        [_tracker(part) for part in reversed(partitions)]
    )
    _assert_states_equal(forward.state_dict(), backward.state_dict())


@given(_sharded_posts())
@settings(max_examples=40, deadline=None)
def test_signal_delta_merge_commutes_and_associates(posts_and_partitions):
    _, partitions = posts_and_partitions
    deltas = [
        compute_signal_delta(KEYWORDS, part, region="europe")
        for part in partitions
    ]
    flat = SignalDelta.merge(deltas)
    reversed_merge = SignalDelta.merge(list(reversed(deltas)))
    nested = deltas[0]
    for delta in deltas[1:]:
        nested = SignalDelta.merge([nested, delta])

    for other in (reversed_merge, nested):
        assert other.votes == flat.votes
        assert other.dirty == flat.dirty
        assert other.observed == flat.observed
        assert set(other.buckets) == set(flat.buckets)
        for keyword, years in flat.buckets.items():
            for year, values in years.items():
                got = other.buckets[keyword][year]
                assert got[:5] == values[:5]
                assert got[5] == pytest.approx(values[5], abs=1e-9)


@given(_posts(min_size=1))
@settings(max_examples=20, deadline=None)
def test_out_of_order_arrival_within_a_shard_is_harmless(posts):
    in_order = _tracker(
        sorted(posts, key=lambda p: (p.created_at, p.post_id))
    )
    shuffled = _tracker(list(reversed(posts)))
    _assert_states_equal(in_order.state_dict(), shuffled.state_dict())
