"""Property tests: the batch TARA scorer equals the seed monolith.

The contract of :class:`repro.tara.scoring.BatchTaraScorer` (and of the
``TaraEngine`` facade on top of it) is that scoring a weight table over
a compiled threat model returns **record-for-record identical** output
to a fresh seed-era engine run: same threats in the same order, same
impact, feasibility, entry vector, risk value, CAL, treatment, and the
same rated attack paths step for step.  These tests drive both paths
over randomized architectures (segmented and open buses, multi-entry
topologies, unreachable ECUs, bench-access entry points wired straight
to ECUs), randomized extra threats, impact overrides and weight tables,
and require equality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.benchkit import legacy_tara_run
from repro.iso21434.enums import (
    AttackerProfile,
    AttackVector,
    CybersecurityProperty,
    FeasibilityRating,
    ImpactCategory,
    ImpactRating,
    StrideCategory,
)
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.threats import ThreatScenario
from repro.tara.engine import TaraEngine
from repro.tara.model import compile_threat_model
from repro.tara.scoring import BatchTaraScorer, TableSpec
from repro.vehicle.bus import Bus, BusKind
from repro.vehicle.domains import VehicleDomain
from repro.vehicle.ecu import Ecu
from repro.vehicle.network import EntryPoint, VehicleNetwork

_DOMAINS = (
    VehicleDomain.POWERTRAIN,
    VehicleDomain.CHASSIS,
    VehicleDomain.BODY,
    VehicleDomain.INFOTAINMENT,
    VehicleDomain.COMMUNICATION,
    VehicleDomain.DIAGNOSTIC,
)
_VECTORS = tuple(AttackVector)


@st.composite
def _tables(draw):
    ratings = {
        vector: FeasibilityRating.from_level(draw(st.integers(0, 3)))
        for vector in _VECTORS
    }
    return WeightTable(ratings, source="prop")


@st.composite
def _networks(draw):
    net = VehicleNetwork(name="prop")
    gateway = net.add_ecu(Ecu("gw", "Gateway", VehicleDomain.GATEWAY))

    n_buses = draw(st.integers(min_value=1, max_value=3))
    ecu_ids = ["gw"]
    for b in range(n_buses):
        bus = net.add_bus(
            Bus(
                f"bus{b}",
                f"Bus {b}",
                draw(st.sampled_from((BusKind.CAN, BusKind.ETHERNET))),
                draw(st.sampled_from(_DOMAINS)),
                segmented=draw(st.booleans()),
            )
        )
        net.attach(gateway.ecu_id, bus.bus_id)
        for e in range(draw(st.integers(min_value=1, max_value=3))):
            ecu = net.add_ecu(
                Ecu(
                    f"ecu{b}_{e}",
                    f"ECU {b}.{e}",
                    draw(st.sampled_from(_DOMAINS)),
                    safety_critical=draw(st.booleans()),
                    fota_capable=draw(st.booleans()),
                )
            )
            net.attach(ecu.ecu_id, bus.bus_id)
            ecu_ids.append(ecu.ecu_id)

    # Sometimes an isolated ECU: unreachable, exercising the
    # no-path / best-direct-vector fallback.
    if draw(st.booleans()):
        net.add_ecu(Ecu("island", "Isolated ECU", draw(st.sampled_from(_DOMAINS))))
        ecu_ids.append("island")

    for i in range(draw(st.integers(min_value=1, max_value=3))):
        entry = net.add_entry_point(
            EntryPoint(f"entry{i}", f"Entry {i}", draw(st.sampled_from(_VECTORS)))
        )
        # Entry points usually land on a bus; sometimes straight on an
        # ECU (bench access), which the path rater treats differently.
        if draw(st.booleans()):
            net.attach(entry.entry_id, f"bus{draw(st.integers(0, n_buses - 1))}")
        else:
            net.attach(entry.entry_id, draw(st.sampled_from(ecu_ids)))
    return net


def _extra_threats(draw, net):
    threats = []
    for i in range(draw(st.integers(min_value=0, max_value=2))):
        ecu = draw(st.sampled_from([e.ecu_id for e in net.ecus]))
        vectors = draw(
            st.frozensets(st.sampled_from(_VECTORS), min_size=1, max_size=4)
        )
        profiles = draw(
            st.frozensets(
                st.sampled_from(tuple(AttackerProfile)), min_size=0, max_size=3
            )
        )
        threats.append(
            ThreatScenario(
                threat_id=f"ts.{ecu}.extra{i}",
                name=f"Extra threat {i}",
                asset_id=f"{ecu}.extra{i}",
                violated_property=CybersecurityProperty.INTEGRITY,
                stride=StrideCategory.TAMPERING,
                attack_vectors=vectors,
                attacker_profiles=profiles,
            )
        )
    return tuple(threats)


def _overrides(draw, net):
    if not draw(st.booleans()):
        return None
    ecu = draw(st.sampled_from([e.ecu_id for e in net.ecus]))
    rating = ImpactRating.from_level(draw(st.integers(0, 3)))
    return {ecu: ImpactProfile({ImpactCategory.OPERATIONAL: rating})}


@st.composite
def _cases(draw):
    net = draw(_networks())
    return (
        net,
        _extra_threats(draw, net),
        _overrides(draw, net),
        draw(st.lists(_tables(), min_size=1, max_size=3)),
    )


def _assert_reports_equal(batch, legacy, context):
    assert batch.table_source == legacy.table_source, context
    assert len(batch.records) == len(legacy.records), context
    for got, expected in zip(batch.records, legacy.records):
        assert got == expected, (context, expected.threat.threat_id)


class TestBatchScorerEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(case=_cases())
    def test_score_many_equals_fresh_monolith_runs(self, case):
        net, extras, overrides, tables = case
        model = compile_threat_model(
            net, impact_overrides=overrides, extra_threats=extras
        )
        scorer = BatchTaraScorer(model)
        specs = [TableSpec(label="static")]
        specs.extend(
            TableSpec(label=f"tuned:{i}", insider_table=table)
            for i, table in enumerate(tables)
        )
        reports = scorer.score_many(specs)

        legacy_static = legacy_tara_run(
            net, impact_overrides=overrides, extra_threats=extras
        )
        _assert_reports_equal(reports["static"], legacy_static, "static")
        for i, table in enumerate(tables):
            legacy = legacy_tara_run(
                net,
                insider_table=table,
                impact_overrides=overrides,
                extra_threats=extras,
            )
            _assert_reports_equal(reports[f"tuned:{i}"], legacy, f"tuned:{i}")

    @settings(max_examples=15, deadline=None)
    @given(case=_cases())
    def test_engine_facade_equals_monolith(self, case):
        net, extras, overrides, tables = case
        engine = TaraEngine(
            net, insider_table=tables[0], impact_overrides=overrides
        )
        facade = engine.run(extra_threats=extras)
        legacy = legacy_tara_run(
            net,
            insider_table=tables[0],
            impact_overrides=overrides,
            extra_threats=extras,
        )
        _assert_reports_equal(facade, legacy, "facade")

    @settings(max_examples=15, deadline=None)
    @given(case=_cases(), outsider=_tables())
    def test_outsider_table_also_swappable(self, case, outsider):
        net, extras, overrides, tables = case
        model = compile_threat_model(
            net, impact_overrides=overrides, extra_threats=extras
        )
        report = BatchTaraScorer(model).score(
            table=outsider, insider_table=tables[0]
        )
        legacy = legacy_tara_run(
            net,
            table=outsider,
            insider_table=tables[0],
            impact_overrides=overrides,
            extra_threats=extras,
        )
        _assert_reports_equal(report, legacy, "outsider-swap")
