"""Property tests: the indexed engine equals the naive per-keyword scan.

The contract of :class:`repro.social.index.CorpusIndex` is that
``search_many`` returns post-for-post identical results to the seed-era
per-keyword path: the lazy hashtag-index union plus a linear
:func:`~repro.nlp.normalize.keyword_in_text` scan, sorted oldest first.
These tests drive both paths over randomized corpora and over the known
tricky shapes (multi-word phrases spanning separators, hashtag-only
posts, mid-token occurrences, stem collisions, empty windows, region
filters) and require equality.
"""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.normalize import canonical_keyword, keyword_in_text
from repro.social.api import BatchQuery, InMemoryClient, SearchQuery
from repro.social.corpus import Corpus
from repro.social.post import Post

#: Vocabulary exercising the matcher's edge shapes: inflections that
#: stem-collide ("deleting"/"deletes" -> "delet"), a mid-token
#: occurrence carrier ("superdpfdeletekit"), phrase halves ("dpf",
#: "delete") and boundary-straddle bait ("dp", "fdelete").
WORDS = (
    "dpf", "delete", "deleting", "deletes", "deleted", "egr", "removal",
    "tuning", "tuner", "tuners", "remap", "chip", "stage", "kit",
    "install", "installed", "superdpfdeletekit", "adblue", "off", "my",
    "the", "police", "dp", "fdelete",
)
HASHTAGS = (
    "#dpfdelete", "#DPF_delete", "#egr_removal", "#stage2",
    "#AdBlue_off", "#tuning",
)
SEPARATORS = (" ", " - ", "_", " / ", ". ", "  ")

#: Keywords covering every tricky case named in the contract.
KEYWORDS = (
    "dpf delete",      # multi-word phrase spanning separators
    "#dpfdelete",      # hashtag surface form
    "egr removal",
    "delete",          # stem collision bait vs "deleting"/"deletes"
    "deleting",
    "deletes",
    "stage2",
    "tuner",
    "adblueoff",
    "kit",
    "nomatchxyz",      # matches nothing
)

WINDOWS = (
    (None, None),
    (dt.date(2018, 1, 1), dt.date(2021, 12, 31)),
    (dt.date(2023, 6, 1), None),
    (None, dt.date(2017, 3, 31)),
    (dt.date(2030, 1, 1), dt.date(2030, 12, 31)),  # empty window
)


def naive_matching(posts, keyword, *, since=None, until=None, region=None):
    """The seed-era path: hashtag-index union + linear folded-text scan."""
    scoped = [
        p
        for p in posts
        if (region is None or p.region.lower() == region.strip().lower())
        and (since is None or p.created_at >= since)
        and (until is None or p.created_at <= until)
    ]
    canonical = canonical_keyword(keyword)
    index = {}
    for post in scoped:
        for tag in set(post.hashtags):
            index.setdefault(tag, []).append(post)
    matched = list(index.get(canonical, ()))
    tagged_ids = {p.post_id for p in matched}
    for post in scoped:
        if post.post_id in tagged_ids:
            continue
        if keyword_in_text(keyword, post.text):
            matched.append(post)
    matched.sort(key=lambda p: (p.created_at, p.post_id))
    return matched


@st.composite
def _post_lists(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    posts = []
    for i in range(n):
        tokens = draw(
            st.lists(
                st.sampled_from(WORDS + HASHTAGS), min_size=1, max_size=7
            )
        )
        seps = draw(
            st.lists(
                st.sampled_from(SEPARATORS),
                min_size=len(tokens),
                max_size=len(tokens),
            )
        )
        text = "".join(t + s for t, s in zip(tokens, seps)).strip() or tokens[0]
        posts.append(
            Post(
                post_id=f"p{i}",
                text=text,
                author=f"user{i % 5}",
                created_at=draw(
                    st.dates(
                        min_value=dt.date(2016, 1, 1),
                        max_value=dt.date(2023, 12, 31),
                    )
                ),
                region=draw(st.sampled_from(["europe", "america"])),
            )
        )
    return posts


class TestIndexedSearchEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(posts=_post_lists())
    def test_search_many_equals_naive_scan(self, posts):
        corpus = Corpus(posts)
        for since, until in WINDOWS:
            indexed = corpus.search_many(KEYWORDS, since=since, until=until)
            for keyword in KEYWORDS:
                expected = naive_matching(
                    posts, keyword, since=since, until=until
                )
                got = indexed[keyword]
                assert [p.post_id for p in got] == [
                    p.post_id for p in expected
                ], (keyword, since, until)

    @settings(max_examples=25, deadline=None)
    @given(posts=_post_lists())
    def test_client_search_equals_naive_scan_with_regions(self, posts):
        client = InMemoryClient(Corpus(posts))
        since, until = dt.date(2017, 1, 1), dt.date(2022, 12, 31)
        for region in (None, "europe", "AMERICA"):
            for keyword in ("dpf delete", "deleting", "#dpfdelete", "kit"):
                got = client.search(
                    SearchQuery(
                        keyword=keyword, since=since, until=until, region=region
                    )
                )
                expected = naive_matching(
                    posts, keyword, since=since, until=until, region=region
                )
                assert [p.post_id for p in got] == [
                    p.post_id for p in expected
                ], (keyword, region)

    @settings(max_examples=25, deadline=None)
    @given(posts=_post_lists(), limit=st.integers(min_value=1, max_value=5))
    def test_limit_truncates_oldest_first(self, posts, limit):
        client = InMemoryClient(Corpus(posts))
        batch = client.search_many(
            BatchQuery(keywords=KEYWORDS, limit=limit)
        )
        for keyword in KEYWORDS:
            expected = naive_matching(posts, keyword)[:limit]
            assert [p.post_id for p in batch.posts(keyword)] == [
                p.post_id for p in expected
            ]


class TestTrickyShapes:
    def _corpus(self):
        mk = lambda i, text, day: Post(
            post_id=f"t{i}",
            text=text,
            author="a",
            created_at=dt.date(2020, 1, day),
        )
        return [
            mk(0, "my dpf-delete kit arrived", 1),      # phrase over separator
            mk(1, "#dpfdelete rocks", 2),               # hashtag-only surface
            mk(2, "the superdpfdeletekit pro", 3),      # mid-token occurrence
            mk(3, "deleting the filter today", 4),      # gerund, stems to delet
            mk(4, "he deletes maps daily", 5),          # plural, stems to delet
            mk(5, "dp fdelete weird split", 6),         # cross-boundary squash
            mk(6, "nothing relevant here", 7),
            mk(7, "egr_removal done", 8),               # separator-joined phrase
        ]

    def test_tricky_cases_match_naive(self):
        posts = self._corpus()
        corpus = Corpus(posts)
        for keyword in KEYWORDS + ("dpfdelete", "egrremoval", "fdelete"):
            expected = naive_matching(posts, keyword)
            got = corpus.matching(keyword)
            assert [p.post_id for p in got] == [p.post_id for p in expected], keyword

    def test_phrase_and_hashtag_and_midtoken_all_match(self):
        corpus = Corpus(self._corpus())
        ids = {p.post_id for p in corpus.matching("dpf delete")}
        # Phrase, hashtag, mid-token and accidental-squash posts all fold
        # onto "dpfdelete".
        assert {"t0", "t1", "t2", "t5"} <= ids
        assert "t6" not in ids

    def test_stem_collisions(self):
        corpus = Corpus(self._corpus())
        # "deleting" and "deletes" both stem to "delet"; the keyword
        # "deleting" canonicalises to "deleting", present only in t3's
        # squashed text — the stemmed haystack holds "delet", not
        # "deleting".  The naive matcher agrees (asserted above); here we
        # pin the concrete outcome so a matcher change is visible.
        assert [p.post_id for p in corpus.matching("deleting")] == ["t3"]
        assert [p.post_id for p in corpus.matching("deletes")] == ["t4"]
        # "delet" hits both inflections via the stem index.
        assert {"t3", "t4"} <= {p.post_id for p in corpus.matching("delet")}

    def test_empty_window_returns_nothing(self):
        corpus = Corpus(self._corpus())
        result = corpus.search_many(
            KEYWORDS, since=dt.date(2031, 1, 1), until=dt.date(2031, 12, 31)
        )
        assert all(result[k] == [] for k in KEYWORDS)
