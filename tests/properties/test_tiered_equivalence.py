"""Property tests: tiered index == single-tier rebuild, sidecar == observe.

The contracts behind :class:`repro.stream.tiers.TieredCorpusIndex`:

* after any append sequence — out-of-order arrivals, random retention
  knobs, seal boundaries crossing mid-batch — ``posts`` and
  ``search_many`` answer post-for-post identically to a from-scratch
  :class:`repro.social.index.CorpusIndex` over the union of everything
  appended;
* a sealed segment's :class:`repro.stream.deltas.SegmentSidecar` holds
  exactly the aggregates a :class:`DeltaTracker` reaches by observing
  the segment's posts one at a time — window counts and votes
  bit-for-bit, the float sentiment sum included (one segment is one
  columnar sweep, which is the per-post fold);
* ``state_dict``/``load_state`` roundtrips the full tier layout.
"""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import AttackVector
from repro.social.columnar import ColumnarCorpus
from repro.social.index import CorpusIndex
from repro.social.post import Engagement, Post
from repro.stream.deltas import DeltaTracker, SegmentSidecar
from repro.stream.tiers import TieredCorpusIndex

WORDS = (
    "dpf", "delete", "deleting", "egr", "removal", "kit", "install",
    "my", "the", "mechanic", "dealer", "stolen", "warranty", "love",
    "hate", "#dpfdelete", "#egr_removal", "superdpfdeletekit",
)

KEYWORDS = ("dpf delete", "egr removal", "delete", "kit", "nomatchxyz")

REGIONS = ("europe", "americas")

WINDOWS = (
    (None, None),
    (dt.date(2018, 1, 1), dt.date(2021, 12, 31)),
    (dt.date(2022, 6, 1), None),
    (dt.date(2030, 1, 1), dt.date(2030, 12, 31)),  # empty window
)


def _database():
    database = KeywordDatabase()
    for keyword in KEYWORDS:
        database.add(
            AttackKeyword(keyword=keyword, vector=AttackVector.LOCAL)
        )
    return database


@st.composite
def _stream(draw):
    """Posts in a jittered near-chronological arrival order, batched.

    Real feeds are mostly ordered with bounded disorder; fully random
    shuffles are legal but degenerate (every straggler lands in an
    already-cold span and seals a one-post segment), so the jitter is
    bounded to keep the generated layouts representative.
    """
    count = draw(st.integers(min_value=0, max_value=45))
    start = dt.date(2019, 1, 1).toordinal()
    posts = []
    for index in range(count):
        words = draw(st.lists(st.sampled_from(WORDS), min_size=1, max_size=6))
        jitter = draw(st.integers(min_value=-20, max_value=20))
        ordinal = start + index * draw(st.integers(min_value=0, max_value=25))
        posts.append(
            Post(
                post_id=f"p{index:03d}",
                text=" ".join(words),
                author=draw(st.sampled_from(("a", "b", "c"))),
                created_at=dt.date.fromordinal(max(start, ordinal + jitter)),
                region=draw(st.sampled_from(REGIONS)),
                engagement=Engagement(
                    views=draw(st.integers(min_value=0, max_value=500)),
                    likes=draw(st.integers(min_value=0, max_value=50)),
                    reposts=draw(st.integers(min_value=0, max_value=20)),
                    replies=draw(st.integers(min_value=0, max_value=20)),
                ),
            )
        )
    batches = []
    remaining = list(posts)
    while remaining:
        size = draw(st.integers(min_value=1, max_value=len(remaining)))
        batches.append(remaining[:size])
        remaining = remaining[size:]
    knobs = dict(
        compact_threshold=draw(st.integers(min_value=2, max_value=30)),
        warm_span_days=draw(st.integers(min_value=7, max_value=120)),
        cold_age_days=draw(st.integers(min_value=30, max_value=500)),
    )
    return posts, batches, knobs


class TestTieredEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=_stream())
    def test_tiered_equals_rebuilt_over_union(self, data):
        posts, batches, knobs = data
        tiered = TieredCorpusIndex(**knobs)
        for batch in batches:
            tiered.append(batch)
        rebuilt = CorpusIndex(posts)

        assert len(tiered) == len(rebuilt)
        assert [p.post_id for p in tiered.posts] == [
            p.post_id for p in rebuilt.posts
        ]
        for since, until in WINDOWS:
            routed = tiered.search_many(KEYWORDS, since=since, until=until)
            expected = rebuilt.search_many(KEYWORDS, since=since, until=until)
            for keyword in KEYWORDS:
                assert [p.post_id for p in routed[keyword]] == [
                    p.post_id for p in expected[keyword]
                ], (keyword, since, until)

    @settings(max_examples=25, deadline=None)
    @given(data=_stream())
    def test_state_roundtrip_preserves_layout_and_queries(self, data):
        posts, batches, knobs = data
        tiered = TieredCorpusIndex(**knobs)
        for batch in batches:
            tiered.append(batch)
        restored = TieredCorpusIndex(**knobs)
        restored.load_state(tiered.state_dict())

        assert restored.segment_stats == tiered.segment_stats
        original = tiered.search_many(KEYWORDS)
        roundtripped = restored.search_many(KEYWORDS)
        for keyword in KEYWORDS:
            assert [p.post_id for p in roundtripped[keyword]] == [
                p.post_id for p in original[keyword]
            ]

    @settings(max_examples=30, deadline=None)
    @given(data=_stream(), region=st.sampled_from((None,) + REGIONS))
    def test_sidecar_matches_per_post_observe(self, data, region):
        posts, _, _ = data
        database = _database()
        observed = DeltaTracker(database, region=region)
        for post in posts:
            observed.observe(post)

        columns = ColumnarCorpus.from_posts(posts)
        sidecar = SegmentSidecar.build(
            observed.keywords, columns, region=region
        )
        from_sidecar = DeltaTracker(database, region=region)
        from_sidecar.apply_delta(sidecar.as_delta())

        # Integer aggregates — window counts, engagement sums, votes —
        # are exact regardless of arrival order.
        assert sidecar.posts == len(posts)
        assert from_sidecar.observed_posts == observed.observed_posts
        for keyword in observed.keywords:
            assert from_sidecar.votes(keyword) == observed.votes(keyword)
            assert from_sidecar.window_count(keyword) == observed.window_count(
                keyword
            )
        assert from_sidecar.window_total() == observed.window_total()
        arrival = observed.state_dict()
        pooled = from_sidecar.state_dict()
        assert pooled["votes"] == arrival["votes"]
        for keyword, years in arrival["buckets"].items():
            for year, values in years.items():
                got = pooled["buckets"][keyword][year]
                assert got[:5] == values[:5]
                # The float sentiment sum agrees up to summation order
                # (the segment sweeps in (date, id) order, the tracker
                # in arrival order).
                assert got[5] == pytest.approx(values[5], rel=1e-9, abs=1e-12)

        # Observed in the segment's own (date, id) order the fold is
        # the same float sequence, so the sums agree bit-for-bit.
        in_order = DeltaTracker(database, region=region)
        for post in sorted(posts, key=lambda p: (p.created_at, p.post_id)):
            in_order.observe(post)
        assert pooled["buckets"] == in_order.state_dict()["buckets"]
