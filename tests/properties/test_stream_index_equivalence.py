"""Property tests: streamed index == from-scratch rebuild.

The contract of :class:`repro.stream.index.StreamingCorpusIndex`: after
any sequence of appends — random micro-batch sizes, arbitrary arrival
order, any compaction cadence — ``search_many`` answers post-for-post
identically to a :class:`repro.social.index.CorpusIndex` built from
scratch over the union of everything appended.
"""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.social.index import CorpusIndex
from repro.social.post import Post
from repro.stream.index import StreamingCorpusIndex

#: Same edge-shape vocabulary as the batch index property tests:
#: stem collisions, mid-token carriers, phrase halves, boundary bait.
WORDS = (
    "dpf", "delete", "deleting", "deletes", "egr", "removal", "tuning",
    "kit", "install", "superdpfdeletekit", "adblue", "off", "my", "the",
    "police", "dp", "fdelete",
)
HASHTAGS = ("#dpfdelete", "#DPF_delete", "#egr_removal", "#AdBlue_off")
SEPARATORS = (" ", " - ", "_", " / ", ". ")

KEYWORDS = (
    "dpf delete",
    "#dpfdelete",
    "egr removal",
    "delete",
    "deleting",
    "adblueoff",
    "kit",
    "nomatchxyz",
)

WINDOWS = (
    (None, None),
    (dt.date(2018, 1, 1), dt.date(2021, 12, 31)),
    (dt.date(2023, 6, 1), None),
    (dt.date(2030, 1, 1), dt.date(2030, 12, 31)),  # empty window
)


@st.composite
def _posts_and_batches(draw):
    """A random post list plus a random micro-batch partition of it."""
    n = draw(st.integers(min_value=0, max_value=30))
    posts = []
    for i in range(n):
        tokens = draw(
            st.lists(st.sampled_from(WORDS + HASHTAGS), min_size=1, max_size=6)
        )
        seps = draw(
            st.lists(
                st.sampled_from(SEPARATORS),
                min_size=len(tokens),
                max_size=len(tokens),
            )
        )
        text = "".join(t + s for t, s in zip(tokens, seps)).strip() or tokens[0]
        posts.append(
            Post(
                post_id=f"p{i}",
                text=text,
                author=f"user{i % 4}",
                created_at=draw(
                    st.dates(
                        min_value=dt.date(2016, 1, 1),
                        max_value=dt.date(2023, 12, 31),
                    )
                ),
            )
        )
    # random partition into micro-batches (order of arrival random too)
    shuffled = draw(st.permutations(posts))
    batches = []
    remaining = list(shuffled)
    while remaining:
        size = draw(st.integers(min_value=1, max_value=len(remaining)))
        batches.append(remaining[:size])
        remaining = remaining[size:]
    threshold = draw(st.integers(min_value=1, max_value=40))
    return posts, batches, threshold


class TestStreamedIndexEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=_posts_and_batches())
    def test_streamed_equals_rebuilt_over_union(self, data):
        posts, batches, threshold = data
        streaming = StreamingCorpusIndex(compact_threshold=threshold)
        for batch in batches:
            streaming.append(batch)
        rebuilt = CorpusIndex(posts)

        assert len(streaming) == len(rebuilt)
        assert [p.post_id for p in streaming.posts] == [
            p.post_id for p in rebuilt.posts
        ]
        for since, until in WINDOWS:
            streamed = streaming.search_many(
                KEYWORDS, since=since, until=until
            )
            expected = rebuilt.search_many(KEYWORDS, since=since, until=until)
            for keyword in KEYWORDS:
                assert [p.post_id for p in streamed[keyword]] == [
                    p.post_id for p in expected[keyword]
                ], (keyword, since, until)

    @settings(max_examples=25, deadline=None)
    @given(data=_posts_and_batches(), limit=st.integers(min_value=1, max_value=4))
    def test_limit_matches_rebuilt(self, data, limit):
        posts, batches, threshold = data
        streaming = StreamingCorpusIndex(compact_threshold=threshold)
        for batch in batches:
            streaming.append(batch)
        rebuilt = CorpusIndex(posts)
        streamed = streaming.search_many(KEYWORDS, limit=limit)
        expected = rebuilt.search_many(KEYWORDS, limit=limit)
        for keyword in KEYWORDS:
            assert [p.post_id for p in streamed[keyword]] == [
                p.post_id for p in expected[keyword]
            ]

    @settings(max_examples=20, deadline=None)
    @given(data=_posts_and_batches())
    def test_mid_stream_queries_match_prefix_rebuild(self, data):
        _, batches, threshold = data
        streaming = StreamingCorpusIndex(compact_threshold=threshold)
        seen = []
        for batch in batches:
            streaming.append(batch)
            seen.extend(batch)
            prefix = CorpusIndex(seen)
            streamed = streaming.search_many(KEYWORDS)
            expected = prefix.search_many(KEYWORDS)
            for keyword in KEYWORDS:
                assert [p.post_id for p in streamed[keyword]] == [
                    p.post_id for p in expected[keyword]
                ]
