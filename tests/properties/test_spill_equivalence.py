"""Property tests: a spilled tiered index == resident tiered == flat.

The contracts behind :class:`repro.stream.store.SegmentStore` and the
spill wiring in :class:`repro.stream.tiers.TieredCorpusIndex`:

* spilling cold segments to disk is *pure representation change* —
  after any append sequence (out-of-order arrivals, random retention
  knobs, seal boundaries crossing mid-batch) a spilled index answers
  ``posts`` and ``search_many`` post-for-post identically to a
  resident tiered index and to a from-scratch
  :class:`~repro.social.index.CorpusIndex` over the same posts;
* hydrate/evict churn is invisible: with ``max_resident_cold=1`` a
  query loop that forces every cold segment through the LRU repeatedly
  keeps returning the same answers;
* the on-disk codec round-trips column state exactly — rebuilding the
  layout from ``state_dict`` against the same store reproduces the
  queries and the tier layout;
* the batch prong: an :class:`~repro.core.sai.SAIComputer` over a
  :class:`~repro.core.cache.CachedClient` with
  :class:`~repro.core.cache.SidecarAggregates` attached scores the
  same SAI list as a plain post-scan over an
  :class:`~repro.social.api.InMemoryClient`, with per-year counts
  exact — served from cold sidecars, without hydrating columns.
"""

import datetime as dt
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CachedClient, SidecarAggregates
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer
from repro.iso21434.enums import AttackVector
from repro.social.api import InMemoryClient, SearchQuery
from repro.social.corpus import Corpus
from repro.social.index import CorpusIndex
from repro.social.post import Engagement, Post
from repro.stream.tiers import TieredCorpusIndex, build_stream_index

WORDS = (
    "dpf", "delete", "deleting", "egr", "removal", "kit", "install",
    "my", "the", "mechanic", "dealer", "stolen", "warranty", "love",
    "hate", "#dpfdelete", "#egr_removal", "superdpfdeletekit",
)

KEYWORDS = ("dpf delete", "egr removal", "delete", "kit", "nomatchxyz")

REGIONS = ("europe", "americas")

WINDOWS = (
    (None, None),
    (dt.date(2018, 1, 1), dt.date(2021, 12, 31)),
    (dt.date(2022, 6, 1), None),
    (dt.date(2030, 1, 1), dt.date(2030, 12, 31)),  # empty window
)


def _database():
    database = KeywordDatabase()
    for keyword in KEYWORDS:
        database.add(
            AttackKeyword(keyword=keyword, vector=AttackVector.LOCAL)
        )
    return database


def _layout(stats):
    """``segment_stats`` minus the representation-only fields.

    The store block (absent on a resident index, counter-bearing on a
    spilled one) and the cold tier's spilled count describe *where*
    segments live, not the tier layout itself.
    """
    stats = dict(stats)
    stats.pop("store", None)
    tiers = {tier: dict(values) for tier, values in stats["tiers"].items()}
    tiers["cold"].pop("spilled", None)
    stats["tiers"] = tiers
    return stats


@st.composite
def _stream(draw):
    """Posts in a jittered near-chronological arrival order, batched.

    Mirrors the tiered-equivalence strategy; retention knobs are drawn
    tight (short warm span, low cold age) so most examples actually
    seal — and therefore spill — cold segments.
    """
    count = draw(st.integers(min_value=0, max_value=40))
    start = dt.date(2019, 1, 1).toordinal()
    posts = []
    for index in range(count):
        words = draw(st.lists(st.sampled_from(WORDS), min_size=1, max_size=6))
        jitter = draw(st.integers(min_value=-20, max_value=20))
        ordinal = start + index * draw(st.integers(min_value=0, max_value=25))
        posts.append(
            Post(
                post_id=f"p{index:03d}",
                text=" ".join(words),
                author=draw(st.sampled_from(("a", "b", "c"))),
                created_at=dt.date.fromordinal(max(start, ordinal + jitter)),
                region=draw(st.sampled_from(REGIONS)),
                engagement=Engagement(
                    views=draw(st.integers(min_value=0, max_value=500)),
                    likes=draw(st.integers(min_value=0, max_value=50)),
                    reposts=draw(st.integers(min_value=0, max_value=20)),
                    replies=draw(st.integers(min_value=0, max_value=20)),
                ),
            )
        )
    batches = []
    remaining = list(posts)
    while remaining:
        size = draw(st.integers(min_value=1, max_value=len(remaining)))
        batches.append(remaining[:size])
        remaining = remaining[size:]
    knobs = dict(
        compact_threshold=draw(st.integers(min_value=2, max_value=20)),
        warm_span_days=draw(st.integers(min_value=7, max_value=60)),
        cold_age_days=draw(st.integers(min_value=30, max_value=200)),
    )
    return posts, batches, knobs


def _spilled(batches, knobs, directory, *, max_resident_cold=2, **extra):
    index = build_stream_index(
        spill_dir=Path(directory) / "store",
        max_resident_cold=max_resident_cold,
        **knobs,
        **extra,
    )
    for batch in batches:
        index.append(batch)
    return index


def _assert_queries_match(left, right, context=""):
    assert len(left) == len(right), context
    assert [p.post_id for p in left.posts] == [
        p.post_id for p in right.posts
    ], context
    for since, until in WINDOWS:
        got = left.search_many(KEYWORDS, since=since, until=until)
        expected = right.search_many(KEYWORDS, since=since, until=until)
        for keyword in KEYWORDS:
            assert [p.post_id for p in got[keyword]] == [
                p.post_id for p in expected[keyword]
            ], (context, keyword, since, until)


class TestSpillEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(data=_stream())
    def test_spilled_equals_resident_equals_flat(self, data):
        posts, batches, knobs = data
        resident = TieredCorpusIndex(**knobs)
        for batch in batches:
            resident.append(batch)
        with tempfile.TemporaryDirectory(prefix="spill-prop-") as tmp:
            spilled = _spilled(batches, knobs, tmp)
            _assert_queries_match(spilled, resident, "spilled-vs-resident")
            _assert_queries_match(spilled, CorpusIndex(posts), "spilled-vs-flat")
            # Spilling changed the representation, not the layout.
            tiers = spilled.segment_stats["tiers"]
            assert tiers["cold"]["spilled"] == tiers["cold"]["segments"]
            assert _layout(spilled.segment_stats) == _layout(
                resident.segment_stats
            )

    @settings(max_examples=15, deadline=None)
    @given(data=_stream())
    def test_hydrate_evict_churn_is_invisible(self, data):
        posts, batches, knobs = data
        with tempfile.TemporaryDirectory(prefix="spill-prop-") as tmp:
            spilled = _spilled(batches, knobs, tmp, max_resident_cold=1)
            flat = CorpusIndex(posts)
            expected = {
                keyword: [p.post_id for p in flat.search_many(KEYWORDS)[keyword]]
                for keyword in KEYWORDS
            }
            # Every pass forces all spilled segments through the 1-slot
            # LRU; answers must never drift.
            for _ in range(3):
                routed = spilled.search_many(KEYWORDS)
                for keyword in KEYWORDS:
                    assert [
                        p.post_id for p in routed[keyword]
                    ] == expected[keyword], keyword
                assert [p.post_id for p in spilled.posts] == [
                    p.post_id for p in flat.posts
                ]

    @settings(max_examples=15, deadline=None)
    @given(data=_stream())
    def test_state_roundtrip_through_store_is_exact(self, data):
        _, batches, knobs = data
        with tempfile.TemporaryDirectory(prefix="spill-prop-") as tmp:
            spilled = _spilled(batches, knobs, tmp)
            restored = build_stream_index(
                spill_dir=Path(tmp) / "store", max_resident_cold=2, **knobs
            )
            restored.load_state(spilled.state_dict())
            assert _layout(restored.segment_stats) == _layout(
                spilled.segment_stats
            )
            tiers = restored.segment_stats["tiers"]
            assert tiers["cold"]["spilled"] == tiers["cold"]["segments"]
            _assert_queries_match(restored, spilled, "restored-vs-original")


class TestBatchProngEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(data=_stream())
    def test_sidecar_served_sai_matches_post_scan(self, data):
        posts, batches, knobs = data
        database = _database()
        plain = SAIComputer(InMemoryClient(Corpus(posts)))
        reference = plain.compute(database, region="europe")
        with tempfile.TemporaryDirectory(prefix="spill-prop-") as tmp:
            # The runtime wires sidecar_keywords from database.keywords —
            # already canonical, so sidecar coverage matches the
            # aggregates' canonical requests and nothing rehydrates.
            spilled = _spilled(
                batches,
                knobs,
                tmp,
                sidecar_keywords=database.keywords,
                sidecar_region="europe",
            )
            store = spilled.store
            hydrations_before = store.hydrations
            aggregates = SidecarAggregates(spilled)
            cached = CachedClient(
                InMemoryClient(Corpus(posts)), aggregates=aggregates
            )
            served = SAIComputer(cached).compute(database, region="europe")

            assert aggregates.served_signals > 0
            # Cold aggregates came from sidecars, not rehydrated columns.
            assert store.hydrations == hydrations_before
            assert len(served.entries) == len(reference.entries)
            for got, expected in zip(served.entries, reference.entries):
                assert got.keyword == expected.keyword
                assert got.post_count == expected.post_count
                # Scores fold the same per-post values in a different
                # association (per-year partial sums vs one running sum).
                assert got.score == pytest.approx(
                    expected.score, rel=1e-9, abs=1e-12
                )
                assert got.probability == pytest.approx(
                    expected.probability, rel=1e-9, abs=1e-12
                )

    @settings(max_examples=15, deadline=None)
    @given(data=_stream())
    def test_sidecar_served_counts_are_exact(self, data):
        posts, batches, knobs = data
        inner = InMemoryClient(Corpus(posts))
        with tempfile.TemporaryDirectory(prefix="spill-prop-") as tmp:
            spilled = _spilled(
                batches,
                knobs,
                tmp,
                sidecar_keywords=_database().keywords,
                sidecar_region="europe",
            )
            aggregates = SidecarAggregates(spilled)
            cached = CachedClient(inner, aggregates=aggregates)
            for keyword in KEYWORDS:
                for since, until in (
                    (None, None),
                    (dt.date(2019, 1, 1), dt.date(2021, 12, 31)),
                ):
                    query = SearchQuery(
                        keyword=keyword,
                        region="europe",
                        since=since,
                        until=until,
                    )
                    assert cached.count_by_year(query) == inner.count_by_year(
                        query
                    ), (keyword, since, until)
            assert aggregates.served_counts > 0
