"""Hypothesis property tests for the extension modules.

Covers the invariants of the controls, poisoning, trend and multi-platform
layers added on top of the paper's proof of concept.
"""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.poisoning import FilterConfig, PostAuthenticityFilter
from repro.iso21434.controls import Control, apply_controls
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.market.trends import fit_trend
from repro.social.post import Engagement, Post

vectors = st.sampled_from(list(AttackVector))
feasibilities = st.sampled_from(list(FeasibilityRating))


def tables():
    return st.builds(
        lambda n, a, l, p: WeightTable(
            {
                AttackVector.NETWORK: n,
                AttackVector.ADJACENT: a,
                AttackVector.LOCAL: l,
                AttackVector.PHYSICAL: p,
            },
            source="test",
        ),
        feasibilities, feasibilities, feasibilities, feasibilities,
    )


def controls():
    return st.builds(
        Control,
        control_id=st.uuids().map(lambda u: f"ctl.{u.hex[:8]}"),
        name=st.just("Control"),
        hardened_vectors=st.frozensets(vectors, min_size=1, max_size=4),
        strength=st.integers(min_value=1, max_value=3),
    )


class TestControlInvariants:
    @given(table=tables(), control_set=st.lists(controls(), max_size=5))
    @settings(max_examples=80)
    def test_controls_never_raise_feasibility(self, table, control_set):
        hardened = apply_controls(table, control_set)
        for vector in AttackVector:
            assert hardened.rating(vector) <= table.rating(vector)

    @given(table=tables(), control_set=st.lists(controls(), max_size=5))
    @settings(max_examples=80)
    def test_hardened_table_stays_in_scale(self, table, control_set):
        hardened = apply_controls(table, control_set)
        for vector in AttackVector:
            assert hardened.rating(vector) in FeasibilityRating

    @given(table=tables())
    def test_empty_control_set_is_identity(self, table):
        assert apply_controls(table, []).ratings == table.ratings

    @given(
        table=tables(),
        a=st.lists(controls(), max_size=3),
        b=st.lists(controls(), max_size=3),
    )
    @settings(max_examples=60)
    def test_more_controls_never_weaker(self, table, a, b):
        fewer = apply_controls(table, a)
        more = apply_controls(table, a + b)
        for vector in AttackVector:
            assert more.rating(vector) <= fewer.rating(vector)


def _posts():
    texts = st.sampled_from(
        ["my #kw kit arrived", "anyone tried the #kw?",
         "#kw went fine today", "the #kw was a mistake",
         "buy the #kw now"]
    )
    return st.lists(
        st.tuples(
            texts,
            st.text(alphabet="abcd", min_size=1, max_size=4),  # author
            st.integers(min_value=0, max_value=100000),        # views
        ),
        min_size=0,
        max_size=40,
    )


class TestPoisoningFilterInvariants:
    @given(raw=_posts())
    @settings(max_examples=60)
    def test_filter_partitions_input(self, raw):
        posts = [
            Post(
                post_id=f"p{i}", text=text, author=author,
                created_at=dt.date(2022, 1, 1),
                engagement=Engagement(views=views),
            )
            for i, (text, author, views) in enumerate(raw)
        ]
        report = PostAuthenticityFilter().filter(posts)
        accepted_ids = {p.post_id for p in report.accepted}
        rejected_ids = {r.post.post_id for r in report.rejected}
        assert accepted_ids | rejected_ids == {p.post_id for p in posts}
        assert not accepted_ids & rejected_ids

    @given(raw=_posts())
    @settings(max_examples=60)
    def test_rejection_rate_bounded(self, raw):
        posts = [
            Post(
                post_id=f"p{i}", text=text, author=author,
                created_at=dt.date(2022, 1, 1),
                engagement=Engagement(views=views),
            )
            for i, (text, author, views) in enumerate(raw)
        ]
        report = PostAuthenticityFilter().filter(posts)
        assert 0.0 <= report.rejection_rate <= 1.0

    @given(raw=_posts())
    @settings(max_examples=40)
    def test_filter_deterministic(self, raw):
        posts = [
            Post(
                post_id=f"p{i}", text=text, author=author,
                created_at=dt.date(2022, 1, 1),
                engagement=Engagement(views=views),
            )
            for i, (text, author, views) in enumerate(raw)
        ]
        first = PostAuthenticityFilter().filter(posts)
        second = PostAuthenticityFilter().filter(posts)
        assert [p.post_id for p in first.accepted] == [
            p.post_id for p in second.accepted
        ]


class TestTrendFitInvariants:
    series = st.lists(
        st.tuples(
            st.integers(min_value=2000, max_value=2030),
            st.integers(min_value=0, max_value=10**6),
        ),
        min_size=2,
        max_size=12,
    )

    @given(data=series)
    @settings(max_examples=80)
    def test_residuals_sum_to_zero(self, data):
        years = {year for year, _ in data}
        if len(years) < 2:
            return
        trend = fit_trend(data)
        raw_residuals = [
            units - (trend.slope * year + trend.intercept)
            for year, units in data
        ]
        assert abs(sum(raw_residuals)) < 1e-3

    @given(data=series, year=st.integers(min_value=2000, max_value=2040))
    @settings(max_examples=80)
    def test_prediction_non_negative(self, data, year):
        years = {y for y, _ in data}
        if len(years) < 2:
            return
        assert fit_trend(data).predict(year) >= 0.0
