"""Hypothesis property tests for the DESIGN.md invariants."""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classification import InsiderOutsiderClassifier
from repro.core.config import TuningThresholds
from repro.core.financial import break_even_point, fixed_cost_from_bep
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer
from repro.core.weights import WeightTuner, rating_from_share
from repro.iso21434.attack_path import AttackPath, AttackStep, threat_feasibility
from repro.iso21434.enums import AttackVector, FeasibilityRating, ImpactRating
from repro.iso21434.feasibility.attack_potential import rating_from_potential
from repro.iso21434.risk import risk_value
from repro.nlp.clustering import kmeans_1d
from repro.nlp.normalize import canonical_keyword
from repro.nlp.sentiment import SentimentAnalyzer
from repro.social.api import InMemoryClient
from repro.social.corpus import Corpus
from repro.social.post import Engagement, Post

feasibilities = st.sampled_from(list(FeasibilityRating))
impacts = st.sampled_from(list(ImpactRating))
vectors = st.sampled_from(list(AttackVector))


class TestRiskMatrixProperties:
    @given(impact=impacts, low=feasibilities, high=feasibilities)
    def test_monotone_in_feasibility(self, impact, low, high):
        if low > high:
            low, high = high, low
        assert risk_value(impact, low) <= risk_value(impact, high)

    @given(feasibility=feasibilities, low=impacts, high=impacts)
    def test_monotone_in_impact(self, feasibility, low, high):
        if low > high:
            low, high = high, low
        assert risk_value(low, feasibility) <= risk_value(high, feasibility)

    @given(impact=impacts, feasibility=feasibilities)
    def test_range(self, impact, feasibility):
        assert 1 <= risk_value(impact, feasibility) <= 5


class TestBreakEvenAlgebra:
    @given(
        fc=st.floats(min_value=0, max_value=1e9),
        margin=st.floats(min_value=0.01, max_value=1e6),
        vcu=st.floats(min_value=0, max_value=1e6),
        n=st.integers(min_value=1, max_value=100),
    )
    def test_eq3_eq5_inverse(self, fc, margin, vcu, n):
        ppia = vcu + margin
        bep = break_even_point(fc, ppia, vcu, n)
        recovered = fixed_cost_from_bep(bep, ppia, vcu, n)
        assert abs(recovered - fc) <= max(1e-6, abs(fc) * 1e-9)

    @given(
        fc=st.floats(min_value=0.01, max_value=1e9),
        margin=st.floats(min_value=0.01, max_value=1e6),
        n=st.integers(min_value=1, max_value=100),
    )
    def test_bep_scales_linearly_with_n(self, fc, margin, n):
        single = break_even_point(fc, margin, 0.0, 1)
        shared = break_even_point(fc, margin, 0.0, n)
        assert abs(shared - n * single) <= abs(shared) * 1e-9


class TestRatingMappings:
    @given(share=st.floats(min_value=0.0, max_value=1.0))
    def test_share_rating_in_scale(self, share):
        assert rating_from_share(share) in FeasibilityRating

    @given(
        a=st.floats(min_value=0.0, max_value=1.0),
        b=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_share_rating_monotone(self, a, b):
        if a > b:
            a, b = b, a
        assert rating_from_share(a) <= rating_from_share(b)

    @given(value=st.integers(min_value=0, max_value=200))
    def test_potential_rating_in_scale(self, value):
        assert rating_from_potential(value) in FeasibilityRating

    @given(
        a=st.integers(min_value=0, max_value=200),
        b=st.integers(min_value=0, max_value=200),
    )
    def test_potential_rating_antitone(self, a, b):
        if a > b:
            a, b = b, a
        assert rating_from_potential(a) >= rating_from_potential(b)


class TestAttackPathProperties:
    step_lists = st.lists(feasibilities, min_size=1, max_size=6)

    @given(ratings=step_lists)
    def test_path_feasibility_is_min(self, ratings):
        path = AttackPath(
            path_id="p", threat_id="t",
            steps=tuple(
                AttackStep(description=f"s{i}", feasibility=r)
                for i, r in enumerate(ratings)
            ),
        )
        assert path.feasibility is min(ratings, key=lambda r: r.level)

    @given(paths=st.lists(step_lists, min_size=1, max_size=5))
    def test_threat_feasibility_is_max_of_path_mins(self, paths):
        objects = [
            AttackPath(
                path_id=f"p{i}", threat_id="t",
                steps=tuple(
                    AttackStep(description=f"s{j}", feasibility=r)
                    for j, r in enumerate(ratings)
                ),
            )
            for i, ratings in enumerate(paths)
        ]
        expected = max(
            (min(ratings, key=lambda r: r.level) for ratings in paths),
            key=lambda r: r.level,
        )
        assert threat_feasibility(objects) is expected


class TestSentimentProperties:
    @given(text=st.text(max_size=300))
    @settings(max_examples=50)
    def test_score_bounded(self, text):
        result = SentimentAnalyzer().score(text)
        assert -1.0 <= result.score <= 1.0
        assert result.hits >= 0


class TestClusteringProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=40
        ),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50)
    def test_clusters_partition_input(self, values, k):
        if len(values) < k:
            return
        clusters = kmeans_1d(values, k)
        members = sorted(m for c in clusters for m in c.members)
        assert members == sorted(values)
        assert 1 <= len(clusters) <= k


class TestCanonicalKeywordProperties:
    @given(raw=st.text(max_size=60))
    @settings(max_examples=100)
    def test_idempotent(self, raw):
        once = canonical_keyword(raw)
        assert canonical_keyword(once) == once

    @given(raw=st.text(alphabet="abcdefg #-_", min_size=1, max_size=30))
    def test_hashtag_and_plain_collide(self, raw):
        assert canonical_keyword(raw) == canonical_keyword("#" + raw.strip())


def _corpus_strategy():
    post_texts = st.sampled_from(
        ["love my #kwa", "#kwa is fine", "#kwb broke", "did the #kwb today"]
    )
    engagements = st.builds(
        Engagement,
        views=st.integers(min_value=0, max_value=10000),
        likes=st.integers(min_value=0, max_value=500),
        reposts=st.integers(min_value=0, max_value=100),
        replies=st.integers(min_value=0, max_value=100),
    )
    return st.lists(
        st.tuples(post_texts, engagements), min_size=1, max_size=20
    )


class TestSAIProperties:
    @given(raw_posts=_corpus_strategy())
    @settings(max_examples=40, deadline=None)
    def test_probabilities_form_distribution(self, raw_posts):
        posts = [
            Post(
                post_id=f"p{i}", text=text, author="u",
                created_at=dt.date(2022, 1, 1), engagement=engagement,
            )
            for i, (text, engagement) in enumerate(raw_posts)
        ]
        db = KeywordDatabase(
            [
                AttackKeyword(keyword="kwa", vector=AttackVector.PHYSICAL,
                              owner_approved=True),
                AttackKeyword(keyword="kwb", vector=AttackVector.LOCAL,
                              owner_approved=True),
            ]
        )
        sai = SAIComputer(InMemoryClient(Corpus(posts))).compute(db)
        total = sum(e.probability for e in sai)
        assert abs(total - 1.0) < 1e-9 or total == 0.0
        assert all(e.score >= 0 for e in sai)

    @given(raw_posts=_corpus_strategy())
    @settings(max_examples=40, deadline=None)
    def test_split_is_partition(self, raw_posts):
        posts = [
            Post(
                post_id=f"p{i}", text=text, author="u",
                created_at=dt.date(2022, 1, 1), engagement=engagement,
            )
            for i, (text, engagement) in enumerate(raw_posts)
        ]
        db = KeywordDatabase(
            [
                AttackKeyword(keyword="kwa", owner_approved=True),
                AttackKeyword(keyword="kwb", owner_approved=False),
            ]
        )
        client = InMemoryClient(Corpus(posts))
        sai = SAIComputer(client).compute(db)
        split = InsiderOutsiderClassifier(client).split(sai)
        assert sorted(split.all_keywords()) == sorted(e.keyword for e in sai)


class TestWeightTunerProperties:
    shares_strategy = st.dictionaries(
        vectors,
        st.floats(min_value=0.0, max_value=1.0),
        min_size=0,
        max_size=4,
    )

    @given(shares=shares_strategy)
    def test_tuned_table_complete_and_in_scale(self, shares):
        table = WeightTuner().tune_from_shares(shares)
        for vector in AttackVector:
            assert table.rating(vector) in FeasibilityRating
        assert table.source == "psp"

    @given(shares=shares_strategy)
    def test_unobserved_vectors_never_above_low(self, shares):
        table = WeightTuner().tune_from_shares(shares)
        for vector in AttackVector:
            if vector not in shares:
                assert table.rating(vector) <= FeasibilityRating.LOW

    @given(
        high=st.floats(min_value=0.31, max_value=1.0),
        medium=st.floats(min_value=0.11, max_value=0.3),
        low=st.floats(min_value=0.01, max_value=0.1),
        share=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_custom_thresholds_respected(self, high, medium, low, share):
        thresholds = TuningThresholds(high=high, medium=medium, low=low)
        rating = rating_from_share(share, thresholds)
        if share >= high:
            assert rating is FeasibilityRating.HIGH
        elif share < low:
            assert rating is FeasibilityRating.VERY_LOW
