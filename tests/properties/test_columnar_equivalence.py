"""Property tests: columnar arenas equal the per-object reference paths.

The contract of :class:`repro.social.columnar.ColumnarCorpus` is strict
equivalence with the pre-columnar per-object implementations:

* the arena-sweep matcher (`search_positions`) returns exactly the
  positions the reference per-post probe — postings-confirm union
  haystack substring test, empty canonicals hashtag/token-confirmed
  only — would return;
* window aggregates (`engagement_slice`, `sentiment_slice`,
  :func:`~repro.stream.deltas.compute_signal_delta_columnar`) are
  **bit-for-bit** equal to folding the same posts through
  :class:`~repro.stream.deltas.DeltaTracker.observe`, float sums
  included;
* lazily materialized `Post` objects equal the originals by value;
* the equivalences survive out-of-order streaming appends, compaction
  (array concatenation and the gather-merge fallback) and a
  ``state_dict``/``load_state`` round-trip.
"""

import datetime as dt
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.analysis import analyze_text
from repro.nlp.normalize import canonical_keyword
from repro.social.columnar import (
    ColumnarCorpus,
    TextInterner,
    columns_to_posts,
    posts_to_columns,
)
from repro.social.index import CorpusIndex
from repro.social.post import Engagement, Post
from repro.stream.deltas import DeltaTracker, compute_signal_delta_columnar
from repro.stream.index import StreamingCorpusIndex

WORDS = (
    "dpf", "delete", "deleting", "deletes", "egr", "removal", "tuning",
    "remap", "chip", "stage", "kit", "install", "superdpfdeletekit",
    "adblue", "off", "my", "the", "police", "dp", "fdelete", "great",
    "terrible",
)
HASHTAGS = ("#dpfdelete", "#DPF_delete", "#egr_removal", "#stage2")
SEPARATORS = (" ", " - ", "_", " / ", ". ")

KEYWORDS = (
    "dpf delete",
    "#dpfdelete",
    "egr removal",
    "delete",
    "deleting",
    "stage2",
    "adblueoff",
    "kit",
    "nomatchxyz",
    "!!!",  # folds to the empty canonical
)

WINDOWS = (
    (None, None),
    (dt.date(2018, 1, 1), dt.date(2021, 12, 31)),
    (dt.date(2023, 6, 1), None),
    (None, dt.date(2017, 3, 31)),
    (dt.date(2030, 1, 1), dt.date(2030, 12, 31)),  # empty window
)


def reference_positions(posts, keyword, since, until):
    """The pre-columnar per-object matcher, position for position.

    Posts must be in global ``(created_at, post_id)`` order.  A window
    post matches when a postings map would confirm it (exact canonical
    hashtag/token/stem hit) or when the canonical occurs in its
    haystack; empty canonicals can only be hashtag/token-confirmed.
    """
    canonical = canonical_keyword(keyword)
    matched = []
    for position, post in enumerate(posts):
        if since is not None and post.created_at < since:
            continue
        if until is not None and post.created_at > until:
            continue
        analysis = analyze_text(post.text)
        confirmed = (
            canonical in analysis.hashtag_set
            or canonical in analysis.word_set
            or canonical in set(analysis.stems)
        )
        if confirmed or analysis.matches_keyword(canonical):
            matched.append(position)
    return matched


@st.composite
def _post_lists(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    posts = []
    for i in range(n):
        tokens = draw(
            st.lists(st.sampled_from(WORDS + HASHTAGS), min_size=1, max_size=6)
        )
        seps = draw(
            st.lists(
                st.sampled_from(SEPARATORS),
                min_size=len(tokens),
                max_size=len(tokens),
            )
        )
        text = "".join(t + s for t, s in zip(tokens, seps)).strip() or tokens[0]
        posts.append(
            Post(
                post_id=f"p{i}",
                text=text,
                author=f"user{i % 4}",
                created_at=draw(
                    st.dates(
                        min_value=dt.date(2016, 1, 1),
                        max_value=dt.date(2023, 12, 31),
                    )
                ),
                region=draw(st.sampled_from(["europe", "america"])),
                engagement=Engagement(
                    views=draw(st.integers(min_value=0, max_value=5000)),
                    likes=draw(st.integers(min_value=0, max_value=300)),
                    reposts=draw(st.integers(min_value=0, max_value=100)),
                    replies=draw(st.integers(min_value=0, max_value=50)),
                ),
            )
        )
    return posts


def _sorted(posts):
    return sorted(posts, key=lambda p: (p.created_at, p.post_id))


class TestColumnarMatcherEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(posts=_post_lists())
    def test_search_positions_equal_reference(self, posts):
        ordered = _sorted(posts)
        columns = ColumnarCorpus.from_posts(posts)
        for since, until in WINDOWS:
            lo, hi = columns.window_bounds(since, until)
            for keyword in KEYWORDS:
                canonical = canonical_keyword(keyword)
                got = columns.search_positions(canonical, lo, hi)
                assert got == reference_positions(
                    ordered, keyword, since, until
                ), (keyword, since, until)

    @settings(max_examples=25, deadline=None)
    @given(posts=_post_lists())
    def test_materialized_posts_equal_originals(self, posts):
        columns = ColumnarCorpus.from_posts(posts)
        assert list(columns.all_posts()) == _sorted(posts)

    @settings(max_examples=25, deadline=None)
    @given(posts=_post_lists())
    def test_columns_state_round_trip(self, posts):
        columns = ColumnarCorpus.from_posts(posts)
        # Through JSON, like a real checkpoint file.
        state = json.loads(json.dumps(columns.state_dict()))
        restored = ColumnarCorpus.from_state(state)
        assert list(restored.all_posts()) == list(columns.all_posts())
        assert restored.distinct_terms == columns.distinct_terms
        assert restored.arena_chars == columns.arena_chars
        # Arrival-order serialization helpers round-trip exactly too.
        assert columns_to_posts(posts_to_columns(posts)) == list(posts)


class TestColumnarAggregateEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(posts=_post_lists(), region=st.sampled_from([None, "europe"]))
    def test_columnar_delta_bit_for_bit_equals_tracker_fold(
        self, posts, region
    ):
        keywords = tuple(
            canonical_keyword(k) for k in KEYWORDS if canonical_keyword(k)
        )
        columns = ColumnarCorpus.from_posts(posts)
        for since, until in WINDOWS:
            lo, hi = columns.window_bounds(since, until)
            reference = DeltaTracker(keywords=keywords, region=region)
            reference.observe_batch(columns.all_posts()[lo:hi])
            streamed = DeltaTracker(keywords=keywords, region=region)
            streamed.apply_delta(
                compute_signal_delta_columnar(
                    keywords, columns, since=since, until=until, region=region
                )
            )
            # state_dict captures buckets (sentiment_sum floats included),
            # votes, observed and dirty — equality must be exact.
            assert streamed.state_dict() == reference.state_dict(), (
                since,
                until,
            )

    @settings(max_examples=30, deadline=None)
    @given(posts=_post_lists())
    def test_engagement_and_sentiment_slices_equal_per_post_fold(self, posts):
        from repro.nlp.sentiment import SentimentAnalyzer

        analyzer = SentimentAnalyzer()
        columns = ColumnarCorpus.from_posts(posts)
        ordered = columns.all_posts()
        for since, until in WINDOWS:
            lo, hi = columns.window_bounds(since, until)
            window = ordered[lo:hi]
            got = columns.engagement_slice(lo, hi)
            assert got.views == sum(p.engagement.views for p in window)
            assert got.likes == sum(p.engagement.likes for p in window)
            assert got.reposts == sum(p.engagement.reposts for p in window)
            assert got.replies == sum(p.engagement.replies for p in window)
            expected_sentiment = 0.0
            for post in window:
                expected_sentiment += analyzer.score_analysis(
                    analyze_text(post.text)
                ).score
            assert columns.sentiment_slice(analyzer, lo, hi) == (
                expected_sentiment
            )


class TestStreamingColumnarEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.integers(min_value=0, max_value=2**32 - 1),
        posts=_post_lists(),
        threshold=st.integers(min_value=1, max_value=8),
    )
    def test_out_of_order_appends_and_compaction(self, data, posts, threshold):
        import random

        arrival = list(posts)
        random.Random(data).shuffle(arrival)
        streaming = StreamingCorpusIndex(compact_threshold=threshold)
        step = max(1, threshold - 1)
        for start in range(0, len(arrival), step):
            streaming.append(arrival[start : start + step])
        rebuilt = CorpusIndex(posts)
        for since, until in WINDOWS:
            got = streaming.search_many(KEYWORDS, since=since, until=until)
            expected = rebuilt.search_many(KEYWORDS, since=since, until=until)
            for keyword in KEYWORDS:
                assert [p.post_id for p in got[keyword]] == [
                    p.post_id for p in expected[keyword]
                ], (keyword, since, until)
        # Post-compaction state: force the terminal merge and re-check.
        streaming.compact()
        assert list(streaming.posts) == list(rebuilt.posts)
        assert streaming.matching("delete") == rebuilt.matching("delete")

    @settings(max_examples=20, deadline=None)
    @given(posts=_post_lists(), threshold=st.integers(min_value=1, max_value=6))
    def test_state_round_trip_preserves_segments_and_queries(
        self, posts, threshold
    ):
        streaming = StreamingCorpusIndex(compact_threshold=threshold)
        for start in range(0, len(posts), 3):
            streaming.append(posts[start : start + 3])
        state = json.loads(json.dumps(streaming.state_dict()))
        restored = StreamingCorpusIndex(compact_threshold=threshold)
        restored.load_state(state)
        assert restored.segment_stats == streaming.segment_stats
        assert list(restored.posts) == list(streaming.posts)
        for keyword in KEYWORDS:
            assert [p.post_id for p in restored.matching(keyword)] == [
                p.post_id for p in streaming.matching(keyword)
            ]
