"""Property tests: child-registry merge == one registry, pure summation.

The contract behind per-shard telemetry
(:meth:`repro.obs.registry.MetricsRegistry.child` /
:meth:`~repro.obs.registry.MetricsRegistry.merged`): for *any* stream
of instrument events and *any* partition of that stream across child
registries, the merged totals equal a single registry observing every
event — and the merge is commutative and associative, mirroring
``SignalDelta.merge``.  Event amounts are integer-valued so float
summation order cannot blur the equality: snapshots compare ``==``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry

PLATFORMS = ("forum", "twitter", "youtube")

#: Histogram bounds and observed values share points deliberately:
#: inclusive-``le`` bucket routing is part of the merged equality.
BUCKETS = (1.0, 2.0, 4.0, 8.0)
OBSERVABLES = (0, 1, 2, 3, 4, 8, 9, 100)

_EVENT = st.one_of(
    st.tuples(
        st.just("counter"),
        st.sampled_from(PLATFORMS),
        st.integers(min_value=0, max_value=5),
    ),
    st.tuples(
        st.just("gauge"),
        st.sampled_from(PLATFORMS),
        st.integers(min_value=-3, max_value=5),
    ),
    st.tuples(
        st.just("histogram"),
        st.sampled_from(PLATFORMS),
        st.sampled_from(OBSERVABLES),
    ),
)

#: An event stream where each event also carries its shard assignment.
_ASSIGNED_EVENTS = st.lists(
    st.tuples(_EVENT, st.integers(min_value=0, max_value=3)), max_size=50
)


def _apply(registry, events):
    counter = registry.counter(
        "events_total", "Events", labelnames=("platform",)
    )
    gauge = registry.gauge("level", "Level", labelnames=("platform",))
    hist = registry.histogram(
        "batch_posts", "Batch sizes", labelnames=("platform",), buckets=BUCKETS
    )
    for kind, platform, amount in events:
        if kind == "counter":
            counter.inc(amount, platform=platform)
        elif kind == "gauge":
            gauge.inc(amount, platform=platform)
        else:
            hist.observe(amount, platform=platform)
    return registry


@settings(max_examples=60, deadline=None)
@given(_ASSIGNED_EVENTS, st.integers(min_value=1, max_value=4))
def test_partitioned_children_equal_one_registry(assigned, shards):
    single = _apply(MetricsRegistry(), [event for event, _ in assigned])

    parent = MetricsRegistry()
    children = [parent.child() for _ in range(shards)]
    for shard in children:
        _apply(shard, [])  # every shard declares the instruments
    for event, slot in assigned:
        _apply(children[slot % shards], [event])

    assert parent.snapshot() == single.snapshot()


@settings(max_examples=60, deadline=None)
@given(_ASSIGNED_EVENTS)
def test_merge_is_commutative(assigned):
    left = _apply(MetricsRegistry(), [e for e, s in assigned if s % 2 == 0])
    right = _apply(MetricsRegistry(), [e for e, s in assigned if s % 2 == 1])
    forward = MetricsRegistry.merged([left, right])
    backward = MetricsRegistry.merged([right, left])
    assert forward.snapshot() == backward.snapshot()


@settings(max_examples=60, deadline=None)
@given(_ASSIGNED_EVENTS)
def test_merge_is_associative(assigned):
    parts = [
        _apply(MetricsRegistry(), [e for e, s in assigned if s % 3 == residue])
        for residue in range(3)
    ]
    a, b, c = parts
    left_grouped = MetricsRegistry.merged(
        [MetricsRegistry.merged([a, b]), c]
    )
    right_grouped = MetricsRegistry.merged(
        [a, MetricsRegistry.merged([b, c])]
    )
    flat = MetricsRegistry.merged(parts)
    assert left_grouped.snapshot() == flat.snapshot()
    assert right_grouped.snapshot() == flat.snapshot()


def test_boundary_observations_merge_into_the_inclusive_bucket():
    """``observe(bound)`` lands in the ``le == bound`` bucket, shard or not."""
    parent = MetricsRegistry()
    for value in BUCKETS:
        parent.child().histogram(
            "batch_posts", buckets=BUCKETS
        ).observe(value)
    merged = parent.collect()["batch_posts"]
    # One observation per bound, each exactly at its own bucket edge.
    assert merged.series().counts == [1, 1, 1, 1, 0]

    single = MetricsRegistry()
    hist = single.histogram("batch_posts", buckets=BUCKETS)
    for value in BUCKETS:
        hist.observe(value)
    assert parent.snapshot() == single.snapshot()


def test_empty_children_do_not_perturb_the_merge():
    parent = MetricsRegistry()
    parent.child().counter("events_total", labelnames=("platform",)).inc(
        3, platform="forum"
    )
    for _ in range(4):
        parent.child()  # idle shards
    assert parent.collect()["events_total"].value(platform="forum") == 3
