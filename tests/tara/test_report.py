"""Tests for report rendering."""

from repro.core.financial import assess
from repro.core.sai import SAIComputer
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.tara.engine import TaraEngine
from repro.tara.report import (
    render_financial,
    render_sai,
    render_tara,
    render_weight_table,
)
from tests.conftest import build_excavator_database


class TestWeightTableRendering:
    def test_contains_all_vectors_and_ratings(self):
        text = render_weight_table(standard_table())
        for token in ("Network", "Adjacent", "Local", "Physical",
                      "High", "Medium", "Low", "Very Low"):
            assert token in text

    def test_custom_title(self):
        text = render_weight_table(standard_table(), "Fig. 9-A")
        assert text.startswith("Fig. 9-A")

    def test_note_rendered(self):
        text = render_weight_table(standard_table())
        assert "Note:" in text


class TestSaiRendering:
    def test_rows_ranked(self, excavator_client):
        sai = SAIComputer(excavator_client).compute(build_excavator_database())
        text = render_sai(sai)
        lines = text.splitlines()
        # line 0 = title, 1 = header, 2 = divider, 3 = first data row
        assert "dpfdelete" in lines[3]

    def test_top_limits_rows(self, excavator_client):
        sai = SAIComputer(excavator_client).compute(build_excavator_database())
        text = render_sai(sai, top=2)
        data_lines = text.splitlines()[3:]
        assert len(data_lines) == 2


class TestFinancialRendering:
    def test_paper_values_present(self):
        assessment = assess("dpfdelete", pae=1406, ppia=360.0, vcu=50.0,
                            competitors=3)
        text = render_financial(assessment)
        assert "1,406" in text
        assert "506,160" in text
        assert "145,287" in text or "145,286" in text


class TestTaraRendering:
    def test_sorted_by_risk(self, fig4_network):
        data = TaraEngine(fig4_network).run()
        text = render_tara(data, min_risk=3)
        assert "Risk" in text
        # count lines respects the filter
        assert str(len([r for r in data.records if r.risk_value >= 3])) in text

    def test_limit(self, fig4_network):
        data = TaraEngine(fig4_network).run()
        text = render_tara(data, limit=5)
        assert len(text.splitlines()) == 2 + 5 + 1  # title + header + divider...

    def test_empty_filter_renders_header(self, fig4_network):
        data = TaraEngine(fig4_network).run()
        text = render_tara(data, min_risk=5)
        assert "TARA" in text
