"""Tests for the compiled threat model (compile phase of the split)."""

import pytest

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.tara.model import (
    compile_cache_stats,
    compile_threat_model,
    network_fingerprint,
)
from repro.vehicle.attack_surface import AttackSurfaceAnalyzer
from repro.vehicle.domains import VehicleDomain
from repro.vehicle.ecu import Ecu


def psp_table() -> WeightTable:
    return WeightTable(
        {
            AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
            AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
            AttackVector.LOCAL: FeasibilityRating.MEDIUM,
            AttackVector.PHYSICAL: FeasibilityRating.HIGH,
        },
        source="psp",
    )


class TestCompile:
    def test_model_covers_every_ecu_and_asset(self, fig4_network):
        model = compile_threat_model(fig4_network)
        assert len(model.assets) == 4 * len(fig4_network.ecus)
        assert {t.asset_id for t in model.threats} == {
            a.asset_id for a in model.assets
        }

    def test_extra_threats_appended_in_order(self, fig4_network):
        base = compile_threat_model(fig4_network)
        extra = base.threats[0]
        extended = compile_threat_model(fig4_network, extra_threats=(extra,))
        assert extended.threats[: len(base.threats)] == base.threats
        assert extended.threats[-1] is extra

    def test_skeleton_count_matches_analyzer(self, fig4_network):
        model = compile_threat_model(fig4_network)
        analyzer = AttackSurfaceAnalyzer(fig4_network)
        for ecu in fig4_network.ecus:
            skeletons = model.skeletons_for(ecu.ecu_id)
            paths = analyzer.paths_to(ecu.ecu_id)
            assert [s.path_id for s in skeletons] == [p.path_id for p in paths]

    def test_unknown_ecu_raises(self, fig4_network):
        model = compile_threat_model(fig4_network)
        with pytest.raises(KeyError):
            model.skeletons_for("no_such_ecu")


class TestMaterialisation:
    def test_paths_match_analyzer_under_any_table(self, fig4_network):
        model = compile_threat_model(fig4_network)
        for table in (standard_table(), psp_table()):
            analyzer = AttackSurfaceAnalyzer(fig4_network, table=table)
            for threat in model.threats[:40]:
                ecu_id = threat.asset_id.split(".")[0]
                expected = [
                    p
                    for p in analyzer.paths_to(ecu_id, threat_id=threat.threat_id)
                    if p.entry_vector in threat.attack_vectors
                ]
                assert model.paths_for(threat, table) == expected

    def test_steps_memoised_per_entry_rating(self, fig4_network):
        model = compile_threat_model(fig4_network)
        ecu = fig4_network.ecus[0]
        skeletons = model.skeletons_for(ecu.ecu_id)
        if not skeletons:
            pytest.skip("first ECU unreachable in this architecture")
        skeleton = skeletons[0]
        first = model.materialize_steps(skeleton, FeasibilityRating.HIGH)
        again = model.materialize_steps(skeleton, FeasibilityRating.HIGH)
        assert first is again
        other = model.materialize_steps(skeleton, FeasibilityRating.LOW)
        assert other is not first


class TestCompileCache:
    def test_same_network_hits_cache(self, fig4_network):
        before = compile_cache_stats()["hits"]
        first = compile_threat_model(fig4_network)
        second = compile_threat_model(fig4_network)
        assert first is second
        assert compile_cache_stats()["hits"] > before

    def test_mutation_changes_fingerprint_and_recompiles(self):
        from repro.vehicle.architecture import scaled_architecture

        network = scaled_architecture(domains=2, ecus_per_domain=2)
        first = compile_threat_model(network)
        fingerprint = network_fingerprint(network)
        network.add_ecu(Ecu("new_ecu", "New ECU", VehicleDomain.BODY))
        network.attach("new_ecu", "bus0")
        assert network_fingerprint(network) != fingerprint
        second = compile_threat_model(network)
        assert second is not first
        assert len(second.threats) > len(first.threats)

    def test_overrides_and_extras_key_the_cache(self, fig4_network):
        from repro.iso21434.enums import ImpactCategory, ImpactRating
        from repro.iso21434.impact import ImpactProfile

        plain = compile_threat_model(fig4_network)
        overridden = compile_threat_model(
            fig4_network,
            impact_overrides={
                "ecm": ImpactProfile(
                    {ImpactCategory.OPERATIONAL: ImpactRating.MODERATE}
                )
            },
        )
        assert overridden is not plain
        assert overridden.fingerprint == plain.fingerprint
