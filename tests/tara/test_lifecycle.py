"""Tests for the development lifecycle tracker (paper Fig. 2)."""

import pytest

from repro.tara.lifecycle import (
    REPROCESSING_PHASES,
    LifecycleTracker,
    Phase,
    ReprocessingTrigger,
)


class TestPhases:
    def test_ordered(self):
        orders = [p.order for p in Phase]
        assert orders == sorted(orders)

    def test_starts_at_item_definition(self):
        assert LifecycleTracker().phase is Phase.ITEM_DEFINITION


class TestAdvance:
    def test_walks_to_production(self):
        tracker = LifecycleTracker()
        while tracker.phase is not Phase.PRODUCTION_READINESS:
            tracker.advance()
        assert tracker.phase is Phase.PRODUCTION_READINESS

    def test_cannot_advance_past_production(self):
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        with pytest.raises(ValueError):
            tracker.advance()

    def test_gate_phases_record_reprocessing(self):
        tracker = LifecycleTracker()
        while tracker.phase is not Phase.PRODUCTION_READINESS:
            tracker.advance()
        gates = tracker.reprocessing_count(ReprocessingTrigger.PHASE_GATE)
        assert gates == len(REPROCESSING_PHASES)

    def test_fig2_reprocessing_phases(self):
        # Fig. 2 shows reprocessing at design, implementation, integration
        # and the three testing phases — six arrows.
        assert len(REPROCESSING_PHASES) == 6
        assert Phase.ITEM_DEFINITION not in REPROCESSING_PHASES
        assert Phase.TARA not in REPROCESSING_PHASES


class TestTriggers:
    def test_field_vulnerability(self):
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        event = tracker.report_field_vulnerability("CVE-2023-XXXX")
        assert event.trigger is ReprocessingTrigger.FIELD_VULNERABILITY
        assert tracker.reprocessing_count(
            ReprocessingTrigger.FIELD_VULNERABILITY
        ) == 1

    def test_psp_trend_shift(self):
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        tracker.report_trend_shift("local overtook physical")
        assert tracker.reprocessing_count(
            ReprocessingTrigger.PSP_TREND_SHIFT
        ) == 1

    def test_events_accumulate_in_order(self):
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        tracker.report_field_vulnerability("a")
        tracker.report_trend_shift("b")
        assert [e.note for e in tracker.events] == ["a", "b"]

    def test_total_count(self):
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        tracker.report_field_vulnerability()
        tracker.report_trend_shift()
        assert tracker.reprocessing_count() == 2


class TestLifecycleTaraRunner:
    def _runner(self, fig4_network, **kwargs):
        from repro.tara.lifecycle import LifecycleTaraRunner

        return LifecycleTaraRunner(fig4_network, **kwargs)

    def test_gate_phases_reprocess_the_tara(self, fig4_network):
        runner = self._runner(fig4_network)
        runner.run_to_production()
        assert runner.phase is Phase.PRODUCTION_READINESS
        assert len(runner.runs) == len(REPROCESSING_PHASES)
        gates = [r.event.phase for r in runner.runs]
        assert gates == list(REPROCESSING_PHASES)

    def test_every_reprocessing_carries_a_full_report(self, fig4_network):
        from repro.tara.engine import TaraEngine

        runner = self._runner(fig4_network)
        run = runner.field_vulnerability("CVE in the TCU stack")
        assert run.event.trigger is ReprocessingTrigger.FIELD_VULNERABILITY
        assert run.report == TaraEngine(fig4_network).run()

    def test_trend_shift_adopts_new_insider_table(self, fig4_network):
        from repro.iso21434.enums import AttackVector, FeasibilityRating
        from repro.iso21434.feasibility.attack_vector import WeightTable
        from repro.tara.engine import TaraEngine

        tuned = WeightTable(
            {
                AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
                AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
                AttackVector.LOCAL: FeasibilityRating.MEDIUM,
                AttackVector.PHYSICAL: FeasibilityRating.HIGH,
            },
            source="psp",
        )
        runner = self._runner(fig4_network)
        run = runner.trend_shift(tuned, "physical tuning trend")
        assert runner.insider_table is tuned
        assert run.event.trigger is ReprocessingTrigger.PSP_TREND_SHIFT
        assert run.report == TaraEngine(fig4_network, insider_table=tuned).run()

    def test_reprocessings_share_the_scoring_memo(self, fig4_network):
        runner = self._runner(fig4_network)
        runner.field_vulnerability("first")
        cold = dict(runner.memo_stats)
        runner.field_vulnerability("second")
        warm = dict(runner.memo_stats)
        assert warm["hits"] - cold["hits"] == cold["lookups"]


class TestObserveAlert:
    def test_monitor_alert_drives_a_reprocessing(self, ecm_framework, fig4_network):
        from repro.core.monitor import PSPMonitor
        from repro.tara.engine import TaraEngine
        from repro.tara.lifecycle import LifecycleTaraRunner

        monitor = PSPMonitor(ecm_framework, start_year=2015)
        alerts = monitor.run_years(2018, 2023)
        runner = LifecycleTaraRunner(fig4_network)
        run = runner.observe_alert(alerts[-1])
        assert run.event.trigger is ReprocessingTrigger.PSP_TREND_SHIFT
        assert alerts[-1].describe() in run.event.note
        assert runner.insider_table is alerts[-1].result.insider_table
        assert run.report == TaraEngine(
            fig4_network, insider_table=alerts[-1].result.insider_table
        ).run()

    def test_stream_runtime_alert_drives_a_reprocessing(self, ecm_framework, fig4_network):
        from repro.core.monitor import PSPMonitor
        from repro.tara.lifecycle import LifecycleTaraRunner

        monitor = PSPMonitor(ecm_framework, start_year=2015, stream=True)
        alerts = monitor.run_years(2018, 2023)
        runner = LifecycleTaraRunner(fig4_network)
        for alert in alerts:
            runner.observe_alert(alert)
        assert len(runner.runs) == len(alerts)
