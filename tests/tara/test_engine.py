"""Tests for the TARA engine over the reference architecture."""

import pytest

from repro.iso21434.enums import (
    CAL,
    AttackVector,
    FeasibilityRating,
    ImpactRating,
)
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.tara.engine import TaraEngine, compare_runs
from repro.vehicle.domains import VehicleDomain


@pytest.fixture(scope="module")
def static_run(fig4_network):
    return TaraEngine(fig4_network).run()


def psp_table() -> WeightTable:
    return WeightTable(
        {
            AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
            AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
            AttackVector.LOCAL: FeasibilityRating.MEDIUM,
            AttackVector.PHYSICAL: FeasibilityRating.HIGH,
        },
        source="psp",
    )


class TestActivities:
    def test_assets_enumerated_for_every_ecu(self, fig4_network):
        engine = TaraEngine(fig4_network)
        assets = engine.identify_assets()
        assert len(assets) == 4 * len(fig4_network.ecus)

    def test_threats_generated_for_every_asset(self, fig4_network):
        engine = TaraEngine(fig4_network)
        assets = engine.identify_assets()
        threats = engine.identify_threats(assets)
        asset_ids = {t.asset_id for t in threats}
        assert asset_ids == {a.asset_id for a in assets}

    def test_powertrain_threats_are_insider(self, fig4_network):
        engine = TaraEngine(fig4_network)
        threats = engine.identify_threats(engine.identify_assets())
        ecm_threats = [t for t in threats if t.asset_id.startswith("ecm.")]
        assert ecm_threats
        assert all(t.is_owner_approved for t in ecm_threats)

    def test_infotainment_threats_are_outsider(self, fig4_network):
        engine = TaraEngine(fig4_network)
        threats = engine.identify_threats(engine.identify_assets())
        icm_threats = [t for t in threats if t.asset_id.startswith("icm.")]
        assert icm_threats
        assert not any(t.is_owner_approved for t in icm_threats)

    def test_powertrain_impact_is_safety_severe(self, fig4_network):
        engine = TaraEngine(fig4_network)
        threats = engine.identify_threats(engine.identify_assets())
        ecm_threat = next(t for t in threats if t.asset_id.startswith("ecm."))
        impact = engine.rate_impact(ecm_threat)
        assert impact.overall is ImpactRating.SEVERE

    def test_impact_override(self, fig4_network):
        from repro.iso21434.impact import safety_impact

        engine = TaraEngine(
            fig4_network,
            impact_overrides={"ecm": safety_impact(ImpactRating.MODERATE)},
        )
        threats = engine.identify_threats(engine.identify_assets())
        ecm_threat = next(t for t in threats if t.asset_id.startswith("ecm."))
        assert engine.rate_impact(ecm_threat).overall is ImpactRating.MODERATE


class TestRun:
    def test_every_threat_assessed(self, static_run):
        assert static_run.records
        for record in static_run.records:
            assert 1 <= record.risk_value <= 5
            assert record.cal is not None

    def test_high_risk_filter(self, static_run):
        high = static_run.high_risk(threshold=4)
        assert all(r.risk_value >= 4 for r in high)

    def test_by_threat_index(self, static_run):
        index = static_run.by_threat()
        assert len(index) == len(static_run.records)

    def test_static_run_rates_tcu_above_ecm(self, static_run):
        # The enterprise-IT worldview: the telematics unit (network entry)
        # out-rates the engine controller under the static table.
        index = static_run.by_threat()
        tcu = index["ts.tcu.firmware.tampering"]
        ecm = index["ts.ecm.firmware.tampering"]
        assert tcu.feasibility > ecm.feasibility


class TestPspComparison:
    def test_disagreements_concentrate_in_powertrain(self, fig4_network, static_run):
        tuned = TaraEngine(fig4_network, insider_table=psp_table()).run()
        disagreements = compare_runs(fig4_network, static_run, tuned)
        assert disagreements
        domains = {d.domain for d in disagreements}
        assert domains == {VehicleDomain.POWERTRAIN}

    def test_all_disagreements_are_underestimates(self, fig4_network, static_run):
        tuned = TaraEngine(fig4_network, insider_table=psp_table()).run()
        disagreements = compare_runs(fig4_network, static_run, tuned)
        assert all(d.underestimated for d in disagreements)

    def test_risk_raised_for_ecm_dos(self, fig4_network, static_run):
        tuned = TaraEngine(fig4_network, insider_table=psp_table()).run()
        threat_id = "ts.ecm.firmware.denial_of_service"
        static_record = static_run.by_threat()[threat_id]
        tuned_record = tuned.by_threat()[threat_id]
        assert tuned_record.risk_value > static_record.risk_value

    def test_outsider_threats_unchanged(self, fig4_network, static_run):
        tuned = TaraEngine(fig4_network, insider_table=psp_table()).run()
        static_index = static_run.by_threat()
        for record in tuned.records:
            if not record.threat.is_owner_approved:
                static_record = static_index[record.threat.threat_id]
                assert record.feasibility is static_record.feasibility

    def test_identical_tables_no_disagreement(self, fig4_network, static_run):
        rerun = TaraEngine(fig4_network).run()
        assert compare_runs(fig4_network, static_run, rerun) == []


class TestCal:
    def test_physical_entry_caps_cal(self, fig4_network):
        tuned = TaraEngine(fig4_network, insider_table=psp_table()).run()
        for record in tuned.records:
            if record.entry_vector is AttackVector.PHYSICAL:
                assert record.cal <= CAL.CAL2


def _ghost_record(feasibility: FeasibilityRating, risk: int):
    """A hand-built record whose asset id is not hosted by any ECU."""
    from repro.iso21434.cal import determine_cal
    from repro.iso21434.enums import (
        CybersecurityProperty,
        ImpactCategory,
        ImpactRating,
        StrideCategory,
    )
    from repro.iso21434.impact import ImpactProfile
    from repro.iso21434.threats import ThreatScenario
    from repro.iso21434.treatment import TreatmentOption
    from repro.tara.engine import TaraRecord, TaraReportData

    threat = ThreatScenario(
        threat_id="ts.ghost.firmware.tampering",
        name="Tampering of ghost firmware",
        asset_id="ghost.firmware",
        violated_property=CybersecurityProperty.INTEGRITY,
        stride=StrideCategory.TAMPERING,
        attack_vectors=frozenset({AttackVector.PHYSICAL}),
    )
    record = TaraRecord(
        threat=threat,
        impact=ImpactProfile({ImpactCategory.OPERATIONAL: ImpactRating.MAJOR}),
        feasibility=feasibility,
        entry_vector=AttackVector.PHYSICAL,
        risk_value=risk,
        cal=determine_cal(ImpactRating.MAJOR, AttackVector.PHYSICAL),
        treatment=TreatmentOption.RETAIN,
        paths=(),
    )
    return TaraReportData(table_source="test", records=(record,))


class TestCompareRunsTolerance:
    """compare_runs must not crash on threats hosted outside the network."""

    def test_ghost_asset_reported_with_unknown_domain(self, fig4_network):
        static = _ghost_record(FeasibilityRating.VERY_LOW, risk=1)
        tuned = _ghost_record(FeasibilityRating.HIGH, risk=4)
        disagreements = compare_runs(fig4_network, static, tuned)
        assert len(disagreements) == 1
        disagreement = disagreements[0]
        assert disagreement.ecu_id == "ghost"
        assert disagreement.domain is None
        assert disagreement.underestimated

    def test_ghost_asset_agreement_yields_no_diff(self, fig4_network):
        static = _ghost_record(FeasibilityRating.LOW, risk=2)
        tuned = _ghost_record(FeasibilityRating.LOW, risk=2)
        assert compare_runs(fig4_network, static, tuned) == []

    def test_summary_excludes_unknown_domains(self, fig4_network):
        from repro.analysis.compare import summarize_disagreements

        static = _ghost_record(FeasibilityRating.VERY_LOW, risk=1)
        tuned = _ghost_record(FeasibilityRating.HIGH, risk=4)
        summary = summarize_disagreements(
            1, compare_runs(fig4_network, static, tuned)
        )
        assert summary.by_domain() == {}
        assert len(summary.domain_unknown()) == 1


class TestFleetTarasKwargs:
    def test_insider_table_rejected(self, fig4_network):
        from repro.tara.engine import fleet_taras

        with pytest.raises(TypeError, match="insider_table"):
            fleet_taras(fig4_network, [], insider_table=psp_table())


class TestParallelFleetTaras:
    def _fleet(self, excavator_client):
        from repro.core.config import TargetApplication
        from repro.core.pipeline import run_fleet
        from tests.conftest import build_excavator_database

        return run_fleet(
            excavator_client,
            (
                TargetApplication("excavator", "europe", "industrial"),
                TargetApplication("light_truck", "europe", "commercial"),
            ),
            database=build_excavator_database(),
        )

    def test_workers_produce_identical_reports(
        self, excavator_client, fig4_network
    ):
        from repro.tara.engine import fleet_taras

        fleet = self._fleet(excavator_client)
        serial = fleet_taras(fig4_network, fleet)
        threaded = fleet_taras(fig4_network, fleet, workers=2)
        assert serial.static.records == threaded.static.records
        assert serial.targets() == threaded.targets()
        for description in serial.targets():
            assert (
                serial.run_for(description).records
                == threaded.run_for(description).records
            )

    def test_explicit_executor_survives(self, excavator_client, fig4_network):
        from repro.core.executor import ThreadExecutor
        from repro.tara.engine import fleet_taras

        executor = ThreadExecutor(2)
        report = fleet_taras(fig4_network, self._fleet(excavator_client),
                             executor=executor)
        assert report.targets()
        assert executor.map(len, [[1]]) == [1]
        executor.close()

    def test_process_executor_rejected(self, excavator_client, fig4_network):
        from repro.core.executor import ProcessExecutor
        from repro.tara.engine import fleet_taras

        executor = ProcessExecutor(2)
        try:
            with pytest.raises(ValueError, match="thread"):
                fleet_taras(fig4_network, self._fleet(excavator_client),
                            executor=executor)
        finally:
            executor.close()
