"""Tests for the batch TARA scorer (score phase of the split)."""

import pytest

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.tara.engine import TaraEngine
from repro.tara.model import compile_threat_model
from repro.tara.scoring import (
    BatchTaraScorer,
    TableSpec,
    table_fingerprint,
)


def psp_table(note: str = "") -> WeightTable:
    return WeightTable(
        {
            AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
            AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
            AttackVector.LOCAL: FeasibilityRating.MEDIUM,
            AttackVector.PHYSICAL: FeasibilityRating.HIGH,
        },
        source="psp",
        note=note,
    )


@pytest.fixture(scope="module")
def scorer(fig4_network):
    return BatchTaraScorer(compile_threat_model(fig4_network))


class TestScore:
    def test_static_score_equals_engine_run(self, fig4_network, scorer):
        assert scorer.score() == TaraEngine(fig4_network).run()

    def test_tuned_score_equals_engine_run(self, fig4_network, scorer):
        engine = TaraEngine(fig4_network, insider_table=psp_table())
        assert scorer.score(insider_table=psp_table()) == engine.run()

    def test_score_many_is_label_keyed_in_order(self, scorer):
        reports = scorer.score_many(
            [
                TableSpec(label="static"),
                TableSpec(label="tuned", insider_table=psp_table()),
            ]
        )
        assert list(reports) == ["static", "tuned"]

    def test_duplicate_labels_rejected(self, scorer):
        with pytest.raises(ValueError, match="duplicate"):
            scorer.score_many([TableSpec(label="x"), TableSpec(label="x")])

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TableSpec(label="")


class TestMemoisation:
    def test_rescoring_same_table_is_all_hits(self, fig4_network):
        scorer = BatchTaraScorer(compile_threat_model(fig4_network))
        scorer.score(insider_table=psp_table())
        cold = scorer.memo_stats
        scorer.score(insider_table=psp_table())
        warm = scorer.memo_stats
        assert warm["lookups"] == 2 * cold["lookups"]
        # The second sweep resolves every threat from the memo.
        assert warm["hits"] - cold["hits"] == cold["lookups"]

    def test_tables_differing_only_in_provenance_share_memo(self, fig4_network):
        scorer = BatchTaraScorer(compile_threat_model(fig4_network))
        scorer.score(insider_table=psp_table(note="window A"))
        cold_hits = scorer.memo_stats["hits"]
        scorer.score(insider_table=psp_table(note="window B"))
        assert scorer.memo_stats["hits"] > cold_hits
        assert table_fingerprint(psp_table(note="A")) == table_fingerprint(
            psp_table(note="B")
        )

    def test_assess_threat_matches_full_run(self, fig4_network, scorer):
        report = scorer.score(insider_table=psp_table())
        model = scorer.model
        threat = model.threats[0]
        record = scorer.assess_threat(threat, insider_table=psp_table())
        assert record == report.by_threat()[threat.threat_id]


class TestByThreatMemo:
    def test_by_threat_is_memoised(self, scorer):
        report = scorer.score()
        first = report.by_threat()
        assert report.by_threat() is first

    def test_by_threat_complete(self, scorer):
        report = scorer.score()
        index = report.by_threat()
        assert len(index) == len(report.records)
        for record in report.records:
            assert index[record.threat.threat_id] is record
