"""Tests for the sliding-window TARA timeline."""

import pytest

from repro.tara.engine import TaraEngine
from repro.tara.lifecycle import LifecycleTracker, Phase, ReprocessingTrigger
from repro.tara.timeline import run_timeline, year_windows


class TestYearWindows:
    def test_growing_windows(self):
        windows = year_windows(2016, 2019)
        assert len(windows) == 4
        assert all(w.since.year == 2016 for w in windows)
        assert [w.until.year for w in windows] == [2016, 2017, 2018, 2019]

    def test_sliding_windows_clip_at_first_year(self):
        windows = year_windows(2016, 2020, span=3)
        assert [w.since.year for w in windows] == [2016, 2016, 2016, 2017, 2018]
        assert [w.until.year for w in windows] == [2016, 2017, 2018, 2019, 2020]

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError, match=">"):
            year_windows(2020, 2016)
        with pytest.raises(ValueError, match="span"):
            year_windows(2016, 2020, span=0)


@pytest.fixture(scope="module")
def timeline(ecm_client, fig4_network):
    from repro import PSPFramework, TargetApplication
    from tests.conftest import build_ecm_database

    framework = PSPFramework(
        ecm_client,
        TargetApplication("car", "europe", "passenger"),
        database=build_ecm_database(),
        cache=True,
    )
    return run_timeline(
        framework, fig4_network, start_year=2015, end_year=2023
    )


class TestTimeline:
    def test_one_entry_per_year(self, timeline):
        assert len(timeline) == 9
        assert [e.window.until.year for e in timeline] == list(
            range(2015, 2024)
        )

    def test_static_baseline_shared(self, timeline):
        sources = {e.report.table_source for e in timeline}
        assert sources == {timeline.static.table_source}
        assert len(timeline.static.records) == len(
            timeline.entries[0].report.records
        )

    def test_entries_match_fresh_engine_runs(self, timeline, fig4_network):
        # Spot-check first and last windows: the batch-scored report is
        # record-for-record what a fresh engine run with that window's
        # table would produce.
        for entry in (timeline.entries[0], timeline.entries[-1]):
            engine = TaraEngine(
                fig4_network, insider_table=entry.insider_table
            )
            assert entry.report == engine.run()

    def test_ecm_trend_eventually_moves_ratings(self, timeline):
        # The ECM corpus shifts toward physical/local tuning over time;
        # later windows must diverge from the static baseline.
        assert timeline.entries[-1].moved > 0
        assert timeline.moved_threat_ids()

    def test_high_risk_trajectory_monotone_dimensions(self, timeline):
        counts = timeline.high_risk_counts()
        assert len(counts) == len(timeline)
        assert all(c >= 0 for c in counts)

    def test_memo_reuse_across_windows(self, timeline):
        stats = timeline.memo_stats
        assert stats["lookups"] > 0
        # 10 sweeps (static + 9 windows) over one model: most lookups hit.
        assert stats["hit_rate"] > 0.5


class TestTimelineLifecycleHooks:
    def test_tracker_records_table_movements(self, ecm_client, fig4_network):
        from repro import PSPFramework, TargetApplication
        from tests.conftest import build_ecm_database

        framework = PSPFramework(
            ecm_client,
            TargetApplication("car", "europe", "passenger"),
            database=build_ecm_database(),
            cache=True,
        )
        tracker = LifecycleTracker(phase=Phase.PRODUCTION_READINESS)
        timeline = run_timeline(
            framework,
            fig4_network,
            start_year=2015,
            end_year=2023,
            tracker=tracker,
        )
        shifts = tracker.reprocessing_count(ReprocessingTrigger.PSP_TREND_SHIFT)
        assert shifts == len(timeline.table_changes())
        assert shifts > 0

    def test_phase_length_mismatch_rejected(self, ecm_framework, fig4_network):
        with pytest.raises(ValueError, match="phases length"):
            run_timeline(
                ecm_framework,
                fig4_network,
                start_year=2020,
                end_year=2023,
                phases=[Phase.DESIGN],
            )

    def test_phases_attached_per_window(self, ecm_framework, fig4_network):
        phases = [Phase.DESIGN, Phase.IMPLEMENTATION]
        timeline = run_timeline(
            ecm_framework,
            fig4_network,
            start_year=2022,
            end_year=2023,
            phases=phases,
        )
        assert [e.phase for e in timeline] == phases
