"""Tests for graph attack-path enumeration."""

import pytest

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.vehicle.architecture import reference_architecture
from repro.vehicle.attack_surface import AttackSurfaceAnalyzer


@pytest.fixture(scope="module")
def net():
    return reference_architecture()


@pytest.fixture(scope="module")
def analyzer(net):
    return AttackSurfaceAnalyzer(net)


class TestPathEnumeration:
    def test_paths_exist_to_ecm(self, analyzer):
        paths = analyzer.paths_to("ecm")
        assert paths

    def test_paths_start_at_entry_points(self, analyzer, net):
        entry_ids = {e.entry_id for e in net.entry_points}
        for path in analyzer.paths_to("ecm"):
            assert path.steps[0].location in entry_ids

    def test_paths_end_at_target(self, analyzer):
        for path in analyzer.paths_to("ecm"):
            assert path.steps[-1].location == "ecm"

    def test_unknown_ecu_rejected(self, analyzer):
        with pytest.raises(KeyError):
            analyzer.paths_to("nope")

    def test_path_ids_unique(self, analyzer):
        paths = analyzer.paths_to("ecm")
        ids = [p.path_id for p in paths]
        assert len(ids) == len(set(ids))

    def test_threat_id_propagates(self, analyzer):
        paths = analyzer.paths_to("ecm", threat_id="ts.custom")
        assert all(p.threat_id == "ts.custom" for p in paths)


class TestRating:
    def test_direct_obd_path_keeps_entry_rating(self, analyzer):
        # OBD (local, Low) attaches straight to the powertrain CAN: no
        # gateway crossing, so the path stays at Low.
        paths = analyzer.paths_to("ecm")
        obd = [p for p in paths if p.steps[0].location == "obd_port"]
        assert obd
        direct = min(obd, key=lambda p: p.length)
        assert direct.feasibility is FeasibilityRating.LOW

    def test_bench_path_rated_very_low_static(self, analyzer):
        paths = analyzer.paths_to("ecm")
        bench = [p for p in paths if p.steps[0].location == "bench.ecm"]
        assert bench
        assert bench[0].feasibility is FeasibilityRating.VERY_LOW

    def test_remote_path_to_ecm_degrades(self, analyzer):
        # cellular (High) must pivot through the TCU and cross the
        # filtering gateway onto the powertrain CAN: the path feasibility
        # must end strictly below High.
        paths = analyzer.paths_to("ecm")
        cellular = [p for p in paths if p.steps[0].location == "cellular"]
        assert cellular
        for path in cellular:
            assert path.feasibility < FeasibilityRating.HIGH

    def test_static_ecm_report(self, analyzer):
        report = analyzer.report("ecm")
        assert report.feasibility is FeasibilityRating.LOW
        assert report.best_path.steps[0].location == "obd_port"

    def test_tuned_table_changes_ratings(self, net):
        tuned = standard_table().with_rating(
            AttackVector.PHYSICAL, FeasibilityRating.HIGH, source="psp"
        )
        analyzer = AttackSurfaceAnalyzer(net, table=tuned)
        report = analyzer.report("ecm")
        assert report.feasibility is FeasibilityRating.HIGH
        assert report.best_path.steps[0].location == "bench.ecm"

    def test_entry_vectors_ordered_by_feasibility(self, analyzer):
        report = analyzer.report("ecm")
        vectors = report.entry_vectors()
        assert vectors[0] is AttackVector.LOCAL


class TestSweep:
    def test_sweep_covers_every_ecu(self, analyzer, net):
        reports = analyzer.sweep()
        assert set(reports) == {e.ecu_id for e in net.ecus}

    def test_cutoff_validation(self, net):
        with pytest.raises(ValueError):
            AttackSurfaceAnalyzer(net, cutoff=1)

    def test_icm_reachable_via_bluetooth(self, analyzer):
        report = analyzer.report("icm")
        entries = {p.steps[0].location for p in report.paths}
        assert "bluetooth" in entries
