"""Tests for ECU attributes, buses and domain exposure."""

import pytest

from repro.iso21434.enums import AttackVector
from repro.vehicle.bus import Bus, BusKind
from repro.vehicle.domains import (
    DOMAIN_EXPOSURE,
    VehicleDomain,
    is_plausible,
    plausible_vectors,
)
from repro.vehicle.ecu import Ecu


class TestDomains:
    def test_powertrain_has_no_remote_exposure(self):
        vectors = plausible_vectors(VehicleDomain.POWERTRAIN)
        assert AttackVector.NETWORK not in vectors
        assert AttackVector.PHYSICAL in vectors
        assert AttackVector.LOCAL in vectors

    def test_communication_has_remote_exposure(self):
        vectors = plausible_vectors(VehicleDomain.COMMUNICATION)
        assert AttackVector.NETWORK in vectors

    def test_every_domain_covered(self):
        for domain in VehicleDomain:
            assert DOMAIN_EXPOSURE[domain]

    def test_is_plausible(self):
        assert is_plausible(VehicleDomain.POWERTRAIN, AttackVector.PHYSICAL)
        assert not is_plausible(VehicleDomain.POWERTRAIN, AttackVector.NETWORK)


class TestBus:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            Bus("", "X", BusKind.CAN, VehicleDomain.BODY)

    def test_bitrates_ordered(self):
        assert (
            BusKind.LIN.typical_bitrate_kbps
            < BusKind.CAN.typical_bitrate_kbps
            < BusKind.CAN_FD.typical_bitrate_kbps
            < BusKind.ETHERNET.typical_bitrate_kbps
        )


class TestEcu:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            Ecu("", "X", VehicleDomain.BODY)

    def test_powertrain_non_fota_drops_network(self):
        ecm = Ecu("ecm", "ECM", VehicleDomain.POWERTRAIN, fota_capable=False)
        assert AttackVector.NETWORK not in ecm.plausible_vectors
        assert AttackVector.PHYSICAL in ecm.plausible_vectors

    def test_fota_powertrain_keeps_network_interface(self):
        ecm = Ecu(
            "ecm", "ECM", VehicleDomain.POWERTRAIN,
            fota_capable=True,
            external_interfaces=frozenset({AttackVector.NETWORK}),
        )
        assert AttackVector.NETWORK in ecm.plausible_vectors

    def test_external_interfaces_extend_exposure(self):
        dcu = Ecu(
            "dcu", "Door Control", VehicleDomain.BODY,
            external_interfaces=frozenset({AttackVector.ADJACENT}),
        )
        assert AttackVector.ADJACENT in dcu.plausible_vectors

    def test_tcu_keeps_network(self):
        tcu = Ecu(
            "tcu", "Telematics", VehicleDomain.COMMUNICATION,
            fota_capable=True,
            external_interfaces=frozenset({AttackVector.NETWORK}),
        )
        assert AttackVector.NETWORK in tcu.plausible_vectors

    def test_is_powertrain(self):
        assert Ecu("e", "E", VehicleDomain.POWERTRAIN).is_powertrain
        assert not Ecu("b", "B", VehicleDomain.BODY).is_powertrain
