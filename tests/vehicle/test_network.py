"""Tests for the vehicle topology graph."""

import pytest

from repro.iso21434.enums import AttackVector
from repro.vehicle.bus import Bus, BusKind
from repro.vehicle.domains import VehicleDomain
from repro.vehicle.ecu import Ecu
from repro.vehicle.network import EntryPoint, NodeKind, VehicleNetwork


@pytest.fixture()
def small_net() -> VehicleNetwork:
    net = VehicleNetwork("test")
    net.add_ecu(Ecu("gw", "Gateway", VehicleDomain.GATEWAY))
    net.add_ecu(Ecu("ecm", "ECM", VehicleDomain.POWERTRAIN, safety_critical=True))
    net.add_bus(Bus("can0", "Powertrain CAN", BusKind.CAN, VehicleDomain.POWERTRAIN))
    net.add_bus(Bus("can1", "Body CAN", BusKind.CAN, VehicleDomain.BODY))
    net.add_entry_point(EntryPoint("obd", "OBD Port", AttackVector.LOCAL))
    net.attach("ecm", "can0")
    net.attach("gw", "can0")
    net.attach("gw", "can1")
    net.attach("obd", "can0")
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self, small_net):
        with pytest.raises(ValueError, match="duplicate"):
            small_net.add_ecu(Ecu("ecm", "ECM2", VehicleDomain.POWERTRAIN))

    def test_duplicate_across_kinds_rejected(self, small_net):
        with pytest.raises(ValueError, match="duplicate"):
            small_net.add_bus(
                Bus("ecm", "X", BusKind.CAN, VehicleDomain.BODY)
            )

    def test_attach_unknown_node(self, small_net):
        with pytest.raises(KeyError):
            small_net.attach("ecm", "nope")

    def test_self_attach_rejected(self, small_net):
        with pytest.raises(ValueError, match="itself"):
            small_net.attach("ecm", "ecm")

    def test_empty_id_rejected(self):
        net = VehicleNetwork()
        with pytest.raises(ValueError):
            net.add_ecu(Ecu("", "X", VehicleDomain.BODY))


class TestLookup:
    def test_typed_lookups(self, small_net):
        assert small_net.ecu("ecm").name == "ECM"
        assert small_net.bus("can0").kind is BusKind.CAN
        assert small_net.entry_point("obd").vector is AttackVector.LOCAL

    def test_unknown_lookups(self, small_net):
        with pytest.raises(KeyError):
            small_net.ecu("nope")
        with pytest.raises(KeyError):
            small_net.bus("nope")
        with pytest.raises(KeyError):
            small_net.entry_point("nope")

    def test_node_kind(self, small_net):
        assert small_net.node_kind("ecm") is NodeKind.ECU
        assert small_net.node_kind("can0") is NodeKind.BUS
        assert small_net.node_kind("obd") is NodeKind.ENTRY_POINT

    def test_collections(self, small_net):
        assert len(small_net.ecus) == 2
        assert len(small_net.buses) == 2
        assert len(small_net.entry_points) == 1


class TestQueries:
    def test_neighbors_sorted(self, small_net):
        assert small_net.neighbors("can0") == ("ecm", "gw", "obd")

    def test_buses_of(self, small_net):
        buses = small_net.buses_of("gw")
        assert {b.bus_id for b in buses} == {"can0", "can1"}

    def test_reachable_from(self, small_net):
        assert small_net.reachable_from("obd") == ("ecm", "gw")

    def test_simple_paths(self, small_net):
        paths = list(small_net.simple_paths("obd", "ecm"))
        assert ["obd", "can0", "ecm"] in paths

    def test_hop_distance(self, small_net):
        assert small_net.hop_distance("obd", "ecm") == 2

    def test_simple_paths_unknown_node(self, small_net):
        with pytest.raises(KeyError):
            list(small_net.simple_paths("nope", "ecm"))
