"""Tests for the CAN message/signal catalogue."""

import pytest

from repro.iso21434.enums import CybersecurityProperty, StrideCategory
from repro.vehicle.architecture import reference_architecture
from repro.vehicle.messages import (
    CanMessage,
    MessageCatalog,
    Signal,
    message_assets,
    message_threats,
    powertrain_catalog,
)


@pytest.fixture(scope="module")
def net():
    return reference_architecture()


@pytest.fixture()
def catalog(net):
    return powertrain_catalog(net)


class TestSignal:
    def test_validation(self):
        with pytest.raises(ValueError):
            Signal("", 0, 8)
        with pytest.raises(ValueError):
            Signal("x", 70, 8)
        with pytest.raises(ValueError):
            Signal("x", 0, 0)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            Signal("x", 60, 8)


class TestCanMessage:
    def test_id_range(self):
        with pytest.raises(ValueError):
            CanMessage(can_id=0x20000000, name="x", bus_id="b",
                       sender="e", receivers=())

    def test_duplicate_signal_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CanMessage(
                can_id=1, name="x", bus_id="b", sender="e", receivers=(),
                signals=(Signal("a", 0, 8), Signal("a", 8, 8)),
            )

    def test_is_periodic(self):
        periodic = CanMessage(can_id=1, name="x", bus_id="b", sender="e",
                              receivers=(), cycle_ms=10)
        event = CanMessage(can_id=2, name="y", bus_id="b", sender="e",
                           receivers=(), cycle_ms=0)
        assert periodic.is_periodic
        assert not event.is_periodic


class TestCatalog:
    def test_reference_catalog_size(self, catalog):
        assert len(catalog) == 5

    def test_duplicate_id_rejected(self, net, catalog):
        with pytest.raises(ValueError, match="duplicate CAN id"):
            catalog.add(
                CanMessage(can_id=0x0C0, name="Clash",
                           bus_id="can.powertrain", sender="ecm",
                           receivers=("tcm",))
            )

    def test_sender_must_be_on_bus(self, net):
        catalog = MessageCatalog(net)
        with pytest.raises(ValueError, match="not attached"):
            catalog.add(
                CanMessage(can_id=0x100, name="Wrong",
                           bus_id="can.powertrain", sender="icm",
                           receivers=())
            )

    def test_unknown_bus_rejected(self, net):
        catalog = MessageCatalog(net)
        with pytest.raises(KeyError):
            catalog.add(
                CanMessage(can_id=0x100, name="x", bus_id="can.nope",
                           sender="ecm", receivers=())
            )

    def test_queries(self, catalog):
        assert len(catalog.on_bus("can.powertrain")) == 5
        assert len(catalog.sent_by("ecm")) == 2
        assert catalog.get(0x0C0).name == "EngineTorque1"
        with pytest.raises(KeyError):
            catalog.get(0x999)

    def test_all_reference_frames_unauthenticated(self, catalog):
        # The paper's premise: legacy powertrain CAN has no authentication.
        assert len(catalog.unauthenticated()) == 5

    def test_bus_load(self, catalog):
        # two 10ms frames (100 Hz each) + two 100ms frames (10 Hz each)
        assert catalog.bus_load_estimate("can.powertrain") == pytest.approx(220.0)


class TestDerivedAssets:
    def test_one_asset_per_frame(self, catalog):
        assets = message_assets(catalog)
        assert len(assets) == len(catalog)

    def test_periodic_frames_need_availability(self, catalog):
        assets = {a.asset_id: a for a in message_assets(catalog)}
        torque = assets["ecm.msg.0x0c0"]
        assert CybersecurityProperty.AVAILABILITY in torque.properties

    def test_diagnostic_frames_need_confidentiality(self, catalog):
        assets = {a.asset_id: a for a in message_assets(catalog)}
        uds = assets["gateway.msg.0x7e0"]
        assert CybersecurityProperty.CONFIDENTIALITY in uds.properties


class TestDerivedThreats:
    def test_unauthenticated_frames_yield_spoofing(self, catalog):
        threats = message_threats(catalog)
        strides = {t.stride for t in threats}
        assert StrideCategory.SPOOFING in strides
        assert StrideCategory.TAMPERING in strides

    def test_periodic_frames_yield_dos(self, catalog):
        threats = message_threats(catalog)
        dos = [t for t in threats
               if t.stride is StrideCategory.DENIAL_OF_SERVICE]
        periodic = [m for m in catalog if m.is_periodic]
        assert len(dos) == len(periodic)

    def test_diagnostic_frames_yield_disclosure(self, catalog):
        threats = message_threats(catalog)
        disclosure = [
            t for t in threats
            if t.stride is StrideCategory.INFORMATION_DISCLOSURE
        ]
        assert len(disclosure) == 1

    def test_all_threats_insider(self, catalog):
        # Powertrain message threats are owner-approved attacks (the
        # paper's Insider/Rational-Local profiles).
        assert all(t.is_owner_approved for t in message_threats(catalog))

    def test_authenticated_frame_drops_spoofing(self, net):
        catalog = MessageCatalog(net)
        catalog.add(
            CanMessage(can_id=0x200, name="SecureFrame",
                       bus_id="can.powertrain", sender="ecm",
                       receivers=("tcm",), cycle_ms=20, authenticated=True)
        )
        threats = message_threats(catalog)
        strides = {t.stride for t in threats}
        assert StrideCategory.SPOOFING not in strides
        assert StrideCategory.DENIAL_OF_SERVICE in strides

    def test_threat_ids_unique(self, catalog):
        threats = message_threats(catalog)
        ids = [t.threat_id for t in threats]
        assert len(ids) == len(set(ids))
