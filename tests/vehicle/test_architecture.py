"""Tests for the Fig. 4 reference architecture."""

import pytest

from repro.iso21434.enums import AttackVector
from repro.vehicle.architecture import reference_architecture, scaled_architecture
from repro.vehicle.domains import VehicleDomain


@pytest.fixture(scope="module")
def net():
    return reference_architecture()


class TestReferenceArchitecture:
    def test_fig4_ecus_present(self, net):
        ids = {e.ecu_id for e in net.ecus}
        for expected in ("ecm", "tcm", "defc", "scu", "bcu", "bcm", "lcm",
                         "scm", "dcu", "wcu", "icm", "tcu", "v2x", "gateway"):
            assert expected in ids

    def test_obd_attached_to_powertrain_can(self, net):
        # The paper's argument hinges on this: the OBD port sits on the
        # powertrain CAN, "easily accessible in the cabin".
        assert "can.powertrain" in net.neighbors("obd_port")

    def test_powertrain_ecus_on_powertrain_can(self, net):
        for ecu_id in ("ecm", "tcm", "defc"):
            assert "can.powertrain" in net.neighbors(ecu_id)

    def test_gateway_bridges_every_bus(self, net):
        neighbors = net.neighbors("gateway")
        assert set(neighbors) == {b.bus_id for b in net.buses}

    def test_entry_point_vectors(self, net):
        assert net.entry_point("obd_port").vector is AttackVector.LOCAL
        assert net.entry_point("cellular").vector is AttackVector.NETWORK
        assert net.entry_point("bluetooth").vector is AttackVector.ADJACENT
        assert net.entry_point("bench.ecm").vector is AttackVector.PHYSICAL

    def test_every_ecu_reachable_from_obd(self, net):
        reachable = set(net.reachable_from("obd_port"))
        assert {e.ecu_id for e in net.ecus} == reachable

    def test_powertrain_ecus_safety_critical_non_fota(self, net):
        for ecu_id in ("ecm", "tcm", "defc"):
            ecu = net.ecu(ecu_id)
            assert ecu.safety_critical
            assert not ecu.fota_capable

    def test_tcu_is_fota_with_network_interface(self, net):
        tcu = net.ecu("tcu")
        assert tcu.fota_capable
        assert AttackVector.NETWORK in tcu.external_interfaces

    def test_powertrain_can_segmented(self, net):
        assert net.bus("can.powertrain").segmented


class TestScaledArchitecture:
    def test_size(self):
        net = scaled_architecture(domains=3, ecus_per_domain=4)
        # gateway + 3x4 ECUs
        assert len(net.ecus) == 13
        assert len(net.buses) == 3

    def test_obd_present(self):
        net = scaled_architecture(domains=2, ecus_per_domain=2)
        assert net.entry_point("obd_port").vector is AttackVector.LOCAL

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            scaled_architecture(domains=0, ecus_per_domain=1)

    def test_all_ecus_reachable(self):
        net = scaled_architecture(domains=3, ecus_per_domain=3)
        assert len(net.reachable_from("obd_port")) == len(net.ecus)
