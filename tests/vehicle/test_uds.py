"""Tests for UDS diagnostic-session modelling."""

import pytest

from repro.iso21434.controls import apply_controls
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.vehicle.uds import (
    DiagnosticProfile,
    SecurityAccessLevel,
    UdsService,
    hardened_profile,
    hardening_control,
    legacy_profile,
)


def psp_table() -> WeightTable:
    return WeightTable(
        {
            AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
            AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
            AttackVector.LOCAL: FeasibilityRating.HIGH,
            AttackVector.PHYSICAL: FeasibilityRating.MEDIUM,
        },
        source="psp",
    )


class TestProfiles:
    def test_requires_ecu_id(self):
        with pytest.raises(ValueError):
            DiagnosticProfile(ecu_id="")

    def test_exposure_queries(self):
        profile = legacy_profile("ecm")
        assert profile.exposes(UdsService.REQUEST_DOWNLOAD)
        assert profile.level_for(UdsService.ECU_RESET) is None

    def test_legacy_gate_is_static_seed_key(self):
        assert (
            legacy_profile("ecm").reprogramming_gate
            is SecurityAccessLevel.STATIC_SEED_KEY
        )

    def test_hardened_gate_is_challenge_response(self):
        assert (
            hardened_profile("ecm").reprogramming_gate
            is SecurityAccessLevel.CHALLENGE_RESPONSE
        )

    def test_missing_chain_service_means_no_gate(self):
        profile = DiagnosticProfile(
            ecu_id="ecm",
            gating={UdsService.REQUEST_DOWNLOAD: SecurityAccessLevel.NONE},
        )
        assert profile.reprogramming_gate is None

    def test_weakest_chain_link_bounds_the_gate(self):
        profile = DiagnosticProfile(
            ecu_id="ecm",
            gating={
                UdsService.REQUEST_DOWNLOAD: SecurityAccessLevel.CHALLENGE_RESPONSE,
                UdsService.TRANSFER_DATA: SecurityAccessLevel.NONE,
                UdsService.ROUTINE_CONTROL: SecurityAccessLevel.CHALLENGE_RESPONSE,
            },
        )
        # One open chain service breaks the whole gate.
        assert profile.reprogramming_gate is SecurityAccessLevel.NONE

    def test_service_ids_match_iso14229(self):
        assert UdsService.SECURITY_ACCESS.sid == 0x27
        assert UdsService.REQUEST_DOWNLOAD.sid == 0x34


class TestHardeningControl:
    def test_legacy_profile_yields_strength_one(self):
        control = hardening_control(legacy_profile("ecm"))
        assert control is not None
        assert control.strength == 1
        assert control.hardened_vectors == frozenset({AttackVector.LOCAL})

    def test_hardened_profile_yields_strength_two(self):
        control = hardening_control(hardened_profile("ecm"))
        assert control.strength == 2

    def test_open_chain_yields_none(self):
        profile = DiagnosticProfile(
            ecu_id="ecm",
            gating={s: SecurityAccessLevel.NONE for s in UdsService},
        )
        assert hardening_control(profile) is None

    def test_unexposed_chain_yields_none(self):
        assert hardening_control(DiagnosticProfile(ecu_id="ecm")) is None


class TestComposesWithControls:
    def test_legacy_gating_drops_local_one_level(self):
        control = hardening_control(legacy_profile("ecm"))
        hardened = apply_controls(psp_table(), [control])
        assert hardened.rating(AttackVector.LOCAL) is FeasibilityRating.MEDIUM

    def test_challenge_response_drops_local_two_levels(self):
        control = hardening_control(hardened_profile("ecm"))
        hardened = apply_controls(psp_table(), [control])
        assert hardened.rating(AttackVector.LOCAL) is FeasibilityRating.LOW

    def test_paper_fig9c_story(self):
        # Fig. 9-C: local attacks became High because the static seed-key
        # gate is routinely bypassed.  Upgrading to challenge-response
        # pushes the local rating back down — the engineering response
        # PSP's output motivates.
        legacy = apply_controls(
            psp_table(), [hardening_control(legacy_profile("ecm"))]
        )
        upgraded = apply_controls(
            psp_table(), [hardening_control(hardened_profile("ecm"))]
        )
        assert upgraded.rating(AttackVector.LOCAL) < legacy.rating(
            AttackVector.LOCAL
        )
        # physical untouched by diagnostic hardening
        assert upgraded.rating(AttackVector.PHYSICAL) is (
            psp_table().rating(AttackVector.PHYSICAL)
        )
