"""Batch query interface: equivalence, dedup, multi-platform fan-out."""

import datetime as dt

import pytest

from repro.core.sai import SAIComputer
from repro.social import (
    InMemoryClient,
    MultiPlatformClient,
    PlatformSource,
    ecm_reprogramming_corpus,
    excavator_corpus,
)
from repro.social.api import BatchQuery, BatchResult
from tests.conftest import build_excavator_database


class TestBatchQuery:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BatchQuery(keywords=())

    def test_rejects_empty_keyword(self):
        with pytest.raises(ValueError):
            BatchQuery(keywords=("ok", ""))

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            BatchQuery(
                keywords=("k",),
                since=dt.date(2023, 1, 1),
                until=dt.date(2022, 1, 1),
            )

    def test_folds_duplicates(self):
        batch = BatchQuery(keywords=("a", "b", "a"))
        assert batch.keywords == ("a", "b")

    def test_query_for_carries_all_parameters(self):
        batch = BatchQuery(
            keywords=("k1", "k2"),
            since=dt.date(2020, 1, 1),
            until=dt.date(2022, 12, 31),
            region="europe",
            limit=3,
        )
        query = batch.query_for("k1")
        assert (query.keyword, query.since, query.until) == (
            "k1", dt.date(2020, 1, 1), dt.date(2022, 12, 31)
        )
        assert (query.region, query.limit) == ("europe", 3)
        assert len(batch.queries()) == 2

    def test_restricted_to_subset(self):
        batch = BatchQuery(keywords=("a", "b", "c"), region="europe")
        sub = batch.restricted_to(["b"])
        assert sub.keywords == ("b",)
        assert sub.region == "europe"


class TestBatchEquivalence:
    """search_many per-keyword results == sequential search results."""

    @pytest.mark.parametrize(
        "since,until,region",
        [
            (None, None, None),
            (None, None, "europe"),
            (dt.date(2020, 1, 1), dt.date(2022, 12, 31), "europe"),
            (dt.date(2022, 1, 1), None, None),
        ],
    )
    def test_in_memory_client(self, excavator_client, since, until, region):
        database = build_excavator_database()
        batch = BatchQuery(
            keywords=database.keywords, since=since, until=until, region=region
        )
        result = excavator_client.search_many(batch)
        for query in batch.queries():
            assert list(result.posts(query.keyword)) == (
                excavator_client.search(query)
            )

    def test_limit_respected(self, excavator_client):
        batch = BatchQuery(keywords=("dpfdelete",), limit=3)
        result = excavator_client.search_many(batch)
        assert list(result.posts("dpfdelete")) == excavator_client.search(
            batch.query_for("dpfdelete")
        )
        assert len(result.posts("dpfdelete")) == 3

    def test_batch_and_sequential_sai_identical(self, excavator_client):
        """Same inputs => identical SAIList through either fetch path."""
        database = build_excavator_database()
        computer = SAIComputer(excavator_client)
        batched = computer.compute(database, region="europe")

        sequential_posts = {
            entry.keyword: excavator_client.search(
                BatchQuery(
                    keywords=(entry.keyword,), region="europe"
                ).query_for(entry.keyword)
            )
            for entry in database
        }
        sequential = computer.compute_from_posts(database, sequential_posts)
        assert batched.as_rows() == sequential.as_rows()
        assert batched.ranking() == sequential.ranking()


class TestBatchResult:
    def test_unknown_keyword_raises(self, excavator_client):
        result = excavator_client.search_many(BatchQuery(keywords=("dpfdelete",)))
        with pytest.raises(KeyError):
            result.posts("unknown")

    def test_unique_posts_deduplicates(self, excavator_client):
        # dpfdelete posts carry the dpfoff companion hashtag; searching
        # both makes the same post appear under two keywords.
        result = excavator_client.search_many(
            BatchQuery(keywords=("dpfdelete", "dpfoff"))
        )
        ids = [p.post_id for posts in result.posts_by_keyword.values()
               for p in posts]
        unique = result.unique_posts()
        assert len(unique) == len({p.post_id for p in unique})
        assert len(unique) <= len(ids)
        assert result.total_matches == len(ids)
        # Oldest-first global ordering.
        assert list(unique) == sorted(
            unique, key=lambda p: (p.created_at, p.post_id)
        )


class TestMultiPlatformBatch:
    def _client(self):
        return MultiPlatformClient(
            [
                PlatformSource("twitter", InMemoryClient(excavator_corpus())),
                PlatformSource(
                    "forum",
                    InMemoryClient(ecm_reprogramming_corpus()),
                    trust=0.5,
                ),
            ]
        )

    def test_matches_sequential_search(self):
        client = self._client()
        batch = BatchQuery(
            keywords=("dpfdelete", "chiptuning", "obdflash"),
            since=dt.date(2019, 1, 1),
            until=dt.date(2022, 12, 31),
        )
        result = client.search_many(batch)
        for query in batch.queries():
            assert list(result.posts(query.keyword)) == client.search(query)

    def test_platform_namespacing_keeps_posts_distinct(self):
        client = self._client()
        result = client.search_many(BatchQuery(keywords=("chiptuning",)))
        platforms = {p.post_id.split(":")[0] for p in result.posts("chiptuning")}
        assert platforms == {"twitter", "forum"}
        unique = result.unique_posts()
        assert len(unique) == len(result.posts("chiptuning"))
