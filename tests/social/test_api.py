"""Tests for the social client interface."""

import datetime as dt

import pytest

from repro.social.api import InMemoryClient, SearchQuery, search_texts
from repro.social.corpus import Corpus
from repro.social.post import Post


def post(pid, text, year, region="europe") -> Post:
    return Post(
        post_id=pid, text=text, author="u",
        created_at=dt.date(year, 3, 1), region=region,
    )


@pytest.fixture()
def client() -> InMemoryClient:
    return InMemoryClient(
        Corpus(
            [
                post("p1", "#dpfdelete 2019", 2019),
                post("p2", "#dpfdelete 2021", 2021),
                post("p3", "#dpfdelete 2022", 2022),
                post("p4", "#dpfdelete US", 2022, region="north_america"),
                post("p5", "#egroff", 2022),
            ]
        )
    )


class TestSearchQuery:
    def test_requires_keyword(self):
        with pytest.raises(ValueError):
            SearchQuery(keyword="")

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="empty window"):
            SearchQuery(
                keyword="x",
                since=dt.date(2023, 1, 1),
                until=dt.date(2022, 1, 1),
            )

    def test_rejects_zero_limit(self):
        with pytest.raises(ValueError):
            SearchQuery(keyword="x", limit=0)


class TestSearch:
    def test_keyword_filter(self, client):
        posts = client.search(SearchQuery(keyword="dpfdelete"))
        assert len(posts) == 4

    def test_time_filter(self, client):
        posts = client.search(
            SearchQuery(keyword="dpfdelete", since=dt.date(2022, 1, 1))
        )
        assert {p.post_id for p in posts} == {"p3", "p4"}

    def test_region_filter(self, client):
        posts = client.search(
            SearchQuery(keyword="dpfdelete", region="europe")
        )
        assert {p.post_id for p in posts} == {"p1", "p2", "p3"}

    def test_limit(self, client):
        posts = client.search(SearchQuery(keyword="dpfdelete", limit=2))
        assert len(posts) == 2

    def test_oldest_first(self, client):
        posts = client.search(SearchQuery(keyword="dpfdelete"))
        dates = [p.created_at for p in posts]
        assert dates == sorted(dates)


class TestCounts:
    def test_count_by_year(self, client):
        counts = client.count_by_year(SearchQuery(keyword="dpfdelete"))
        assert counts == {2019: 1, 2021: 1, 2022: 2}

    def test_count_total(self, client):
        assert client.count(SearchQuery(keyword="dpfdelete")) == 4

    def test_count_ignores_limit(self, client):
        assert client.count(SearchQuery(keyword="dpfdelete", limit=1)) == 4


class TestHelpers:
    def test_search_texts(self, client):
        texts = search_texts(client, SearchQuery(keyword="egroff"))
        assert texts == ["#egroff"]

    def test_corpus_accessor(self, client):
        assert len(client.corpus) == 5
