"""Failure-injection tests for the client resilience layer."""

import datetime as dt

import pytest

from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer
from repro.social.api import InMemoryClient, SearchQuery
from repro.social.corpus import Corpus
from repro.social.post import Engagement, Post
from repro.social.resilience import (
    BestEffortClient,
    FlakyClient,
    RetryingClient,
    TransientPlatformError,
)


def post(pid, text) -> Post:
    return Post(
        post_id=pid, text=text, author="u",
        created_at=dt.date(2022, 1, 1),
        engagement=Engagement(views=100, likes=5),
    )


@pytest.fixture()
def backend() -> InMemoryClient:
    return InMemoryClient(
        Corpus([post("p1", "#dpfdelete done"), post("p2", "#egroff fine")])
    )


class TestRetryingClient:
    def test_recovers_within_budget(self, backend):
        flaky = FlakyClient(backend, failures_per_call=2)
        client = RetryingClient(flaky, max_attempts=3)
        results = client.search(SearchQuery(keyword="dpfdelete"))
        assert len(results) == 1
        assert client.retries == 2

    def test_exhausted_budget_raises(self, backend):
        flaky = FlakyClient(backend, failures_per_call=5)
        client = RetryingClient(flaky, max_attempts=3)
        with pytest.raises(TransientPlatformError):
            client.search(SearchQuery(keyword="dpfdelete"))
        assert client.attempts == 3

    def test_no_failures_no_retries(self, backend):
        client = RetryingClient(backend, max_attempts=3)
        client.search(SearchQuery(keyword="dpfdelete"))
        assert client.retries == 0
        assert client.attempts == 1

    def test_count_retried_too(self, backend):
        flaky = FlakyClient(backend, failures_per_call=1)
        client = RetryingClient(flaky, max_attempts=2)
        counts = client.count_by_year(SearchQuery(keyword="dpfdelete"))
        assert counts == {2022: 1}

    def test_max_attempts_validated(self, backend):
        with pytest.raises(ValueError):
            RetryingClient(backend, max_attempts=0)


class TestBestEffortClient:
    def test_persistent_outage_degrades_to_empty(self, backend):
        flaky = FlakyClient(backend, failures_per_call=0,
                            dead_keywords={"dpfdelete"})
        client = BestEffortClient(flaky)
        assert client.search(SearchQuery(keyword="dpfdelete")) == []
        assert client.degraded_keywords == {"dpfdelete"}

    def test_healthy_keywords_unaffected(self, backend):
        flaky = FlakyClient(backend, failures_per_call=0,
                            dead_keywords={"dpfdelete"})
        client = BestEffortClient(flaky)
        assert len(client.search(SearchQuery(keyword="egroff"))) == 1
        assert "egroff" not in client.degraded_keywords


class TestSaiUnderFailureInjection:
    def test_one_dead_keyword_does_not_lose_the_run(self, backend):
        """A persistent single-keyword outage must degrade, not abort."""
        flaky = FlakyClient(backend, failures_per_call=1,
                            dead_keywords={"egroff"})
        client = BestEffortClient(RetryingClient(flaky, max_attempts=3))
        db = KeywordDatabase(
            [
                AttackKeyword(keyword="dpfdelete", owner_approved=True),
                AttackKeyword(keyword="egroff", owner_approved=True),
            ]
        )
        sai = SAIComputer(client).compute(db)
        assert sai.entry("dpfdelete").post_count == 1
        assert sai.entry("egroff").post_count == 0
        assert client.degraded_keywords == {"egroff"}

    def test_transient_failures_fully_absorbed(self, backend):
        flaky = FlakyClient(backend, failures_per_call=2)
        client = RetryingClient(flaky, max_attempts=3)
        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        sai = SAIComputer(client).compute(db)
        assert sai.entry("dpfdelete").post_count == 1
