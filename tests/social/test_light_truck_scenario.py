"""Calibration and pipeline tests for the light-truck scenario."""

import pytest

from repro import PSPFramework, TargetApplication
from repro.cli import main
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.social import InMemoryClient, light_truck_corpus, light_truck_specs


def build_framework() -> PSPFramework:
    db = KeywordDatabase()
    for spec in light_truck_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return PSPFramework(
        InMemoryClient(light_truck_corpus()),
        TargetApplication("light_truck", "europe", "commercial"),
        database=db,
    )


class TestCalibration:
    def test_adblue_highest_volume(self):
        volumes = {s.keyword: s.total_volume for s in light_truck_specs()}
        assert max(volumes, key=lambda k: volumes[k]) == "adbluedelete"

    def test_local_attacks_dominate(self):
        local = sum(
            s.total_volume
            for s in light_truck_specs()
            if s.vector is AttackVector.LOCAL and s.owner_approved
        )
        physical = sum(
            s.total_volume
            for s in light_truck_specs()
            if s.vector is AttackVector.PHYSICAL and s.owner_approved
        )
        assert local > 2 * physical

    def test_includes_outsider_topic(self):
        approved = {s.keyword: s.owner_approved for s in light_truck_specs()}
        assert not approved["cargotheft"]


class TestPipeline:
    def test_sai_ranks_adblue_first(self):
        result = build_framework().run(learn=False)
        assert result.sai.ranking()[0] == "adbluedelete"

    def test_local_dominant_regime_no_inversion(self):
        # Unlike the ECM scenario, the local regime is stable: the tuned
        # table rates local High on the full window already.
        result = build_framework().run(learn=False)
        table = result.insider_table
        assert table.rating(AttackVector.LOCAL) is FeasibilityRating.HIGH
        assert table.rating(AttackVector.LOCAL) > table.rating(
            AttackVector.PHYSICAL
        )

    def test_financial_uses_fallback_defaults(self):
        # No annual report covers light trucks: the attacker rate falls
        # back to the config default and competitors to 1 — the degraded
        # data path the framework must survive.
        psp = build_framework()
        assessment = psp.assess_financial("adbluedelete")
        assert assessment.competitors == 1
        assert assessment.pae > 0

    def test_cli_truck_scenario(self, capsys):
        assert main(["sai", "--scenario", "truck", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "adbluedelete" in out
