"""Tests for the declarative scenario registry."""

import datetime as dt

import pytest

from repro.core.config import TargetApplication
from repro.iso21434.enums import AttackVector
from repro.social.registry import (
    OutageWindow,
    PlatformProfile,
    PoisoningBurst,
    ScenarioRegistry,
    ScenarioSpec,
    _build_default,
    default_registry,
    get_scenario,
    scenario_names,
)
from repro.social.scenarios import (
    ecm_reprogramming_corpus,
    excavator_corpus,
    light_truck_corpus,
)
from repro.social.synthetic import AttackTopicSpec

LEGACY = {
    "ecm": ecm_reprogramming_corpus,
    "excavator": excavator_corpus,
    "truck": light_truck_corpus,
}


def _spec(**overrides):
    defaults = dict(
        name="demo",
        title="demo scenario",
        target=TargetApplication("car", "europe", "passenger"),
        topics=(
            AttackTopicSpec(
                keyword="dpfdelete",
                vector=AttackVector.PHYSICAL,
                owner_approved=True,
                yearly_volume={2020: 10, 2021: 10},
            ),
            AttackTopicSpec(
                keyword="relayattack",
                vector=AttackVector.ADJACENT,
                owner_approved=False,
                yearly_volume={2020: 5, 2021: 5},
                positive_ratio=0.0,
            ),
        ),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestDefaultRegistry:
    def test_registers_the_paper_scenarios_and_the_extended_fleet(self):
        names = scenario_names()
        assert len(names) >= 8
        for expected in (
            "ecm", "excavator", "truck", "tractor", "motorcycle",
            "ev", "marine", "busfleet", "slangecm",
        ):
            assert expected in names

    def test_singleton(self):
        assert default_registry() is default_registry()

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="excavator"):
            get_scenario("submarine")

    def test_every_scenario_builds_a_consistent_database(self):
        for spec in default_registry():
            database = spec.database()
            assert set(database.keywords) == set(spec.keywords)

    def test_overlay_flags(self):
        assert get_scenario("marine").has_overlays
        assert get_scenario("busfleet").has_overlays
        assert not get_scenario("ecm").has_overlays


class TestDeterminism:
    @pytest.mark.parametrize("name", scenario_names())
    def test_seed_stable_across_independent_builds(self, name):
        # Two registries built from scratch must produce bit-identical
        # corpora: every derived artifact is a pure function of the spec.
        first = _build_default().get(name)
        second = _build_default().get(name)
        a = [
            (p.post_id, p.text, p.author, p.created_at, p.engagement.views)
            for p in first.corpus().posts
        ]
        b = [
            (p.post_id, p.text, p.author, p.created_at, p.engagement.views)
            for p in second.corpus().posts
        ]
        assert a == b

    def test_poisoned_corpus_is_deterministic_too(self):
        a = [p.post_id for p in _build_default().get("marine").poisoned_corpus().posts]
        b = [p.post_id for p in _build_default().get("marine").poisoned_corpus().posts]
        assert a == b

    def test_corpus_is_cached_per_spec(self):
        spec = get_scenario("ecm")
        assert spec.corpus() is spec.corpus()


class TestLegacyEquivalence:
    @pytest.mark.parametrize("name", sorted(LEGACY))
    def test_single_platform_scenarios_reproduce_legacy_corpora(self, name):
        # The registry's single-platform trust-1.0 scenarios must keep
        # the calibrated paper corpora byte-identical modulo the
        # platform-namespaced post ids, so the figures don't move.
        legacy = sorted(
            LEGACY[name]().posts,
            key=lambda p: (p.created_at, p.post_id),
        )
        branded = list(get_scenario(name).corpus().posts)
        assert len(legacy) == len(branded)
        for old, new in zip(legacy, branded):
            assert new.post_id == f"twitter:{old.post_id}"
            assert new.text == old.text
            assert new.author == old.author
            assert new.created_at == old.created_at
            assert new.engagement.views == old.engagement.views


class TestPlatformRouting:
    def test_pinned_keyword_lives_only_on_its_platform(self):
        spec = get_scenario("ev")
        for post in spec.corpus().posts:
            platform = spec.platform_of(post)
            if "chargecardcloning" in post.text:
                assert platform == "deepweb"
            else:
                assert platform == "twitter"

    def test_share_weighted_routing_spreads_unpinned_keywords(self):
        spec = get_scenario("slangecm")
        counts = {}
        for post in spec.corpus().posts:
            counts.setdefault(spec.platform_of(post), 0)
            counts[spec.platform_of(post)] += 1
        # All three platforms of the mix receive traffic; the share-0.5
        # deep-web level gets the least.
        assert set(counts) == {"twitter", "tuningforum", "deepweb"}
        assert counts["deepweb"] < counts["twitter"]
        assert counts["deepweb"] < counts["tuningforum"]

    def test_branding_scales_engagement_by_trust(self):
        spec = get_scenario("slangecm")
        client = spec.client()
        deepweb_raw = {
            p.post_id: p.engagement.views
            for p in client.source("deepweb").client.corpus.posts
        }
        for post in spec.corpus().posts:
            if spec.platform_of(post) != "deepweb":
                continue
            raw_id = post.post_id.partition(":")[2]
            assert post.engagement.views == int(deepweb_raw[raw_id] * 0.5)

    def test_client_surfaces_every_platform(self):
        client = get_scenario("busfleet").client()
        assert set(client.platforms) == {"twitter", "fleetforum"}


class TestOverlays:
    def test_poisoned_corpus_adds_stamped_burst_posts(self):
        spec = get_scenario("marine")
        clean = {p.post_id for p in spec.corpus().posts}
        poisoned = list(spec.poisoned_corpus().posts)
        injected = [p for p in poisoned if p.post_id not in clean]
        assert len(injected) == spec.poisoning[0].copies
        for post in injected:
            assert post.post_id.startswith("boatforum:poison")
            assert post.created_at == spec.poisoning[0].date
            assert post.region == spec.target.region
            assert post.author == spec.poisoning[0].author

    def test_clean_corpus_is_never_contaminated(self):
        spec = get_scenario("marine")
        spec.poisoned_corpus()
        assert all(
            "poison" not in p.post_id for p in spec.corpus().posts
        )

    def test_outage_window_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(
                platform="x",
                start=dt.date(2021, 2, 1),
                end=dt.date(2021, 1, 1),
            )
        window = OutageWindow(
            platform="x",
            start=dt.date(2021, 1, 1),
            end=dt.date(2021, 3, 1),
        )
        assert window.covers(dt.date(2021, 2, 1))
        assert not window.covers(dt.date(2021, 3, 2))


class TestSpecValidation:
    def test_duplicate_platform_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate platform"):
            _spec(platforms=(
                PlatformProfile("twitter"), PlatformProfile("twitter"),
            ))

    def test_unknown_pinned_keyword_rejected(self):
        with pytest.raises(ValueError, match="pins unknown keyword"):
            _spec(platforms=(
                PlatformProfile("twitter", keywords=("nosuch",)),
            ))

    def test_unknown_burst_keyword_rejected(self):
        with pytest.raises(ValueError, match="unknown keyword"):
            _spec(poisoning=(
                PoisoningBurst(
                    keyword="nosuch",
                    date=dt.date(2021, 1, 1),
                    copies=3,
                ),
            ))

    def test_unknown_outage_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platform"):
            _spec(outages=(
                OutageWindow(
                    platform="nosuch",
                    start=dt.date(2021, 1, 1),
                    end=dt.date(2021, 2, 1),
                ),
            ))

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError, match="arrival_cadence"):
            _spec(arrival_cadence="hourly")

    def test_trust_and_share_bounds(self):
        with pytest.raises(ValueError):
            PlatformProfile("x", trust=0.0)
        with pytest.raises(ValueError):
            PlatformProfile("x", trust=1.5)
        with pytest.raises(ValueError):
            PlatformProfile("x", share=-1.0)

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register(_spec())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_spec())
        registry.register(_spec(title="v2"), replace=True)
        assert registry.get("demo").title == "v2"

    def test_span_properties(self):
        spec = _spec()
        assert spec.start_year == 2020
        assert spec.end_year == 2021
        assert spec.keywords == ("dpfdelete", "relayattack")
