"""Tests for the post and engagement data model."""

import datetime as dt

import pytest

from repro.social.post import Engagement, Post


def make_post(**overrides) -> Post:
    defaults = dict(
        post_id="p1",
        text="did my #dpfdelete today",
        author="user1",
        created_at=dt.date(2022, 6, 1),
    )
    defaults.update(overrides)
    return Post(**defaults)


class TestEngagement:
    def test_defaults_zero(self):
        engagement = Engagement()
        assert engagement.views == 0
        assert engagement.interactions == 0

    def test_interactions_sum(self):
        engagement = Engagement(views=100, likes=5, reposts=2, replies=3)
        assert engagement.interactions == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Engagement(views=-1)

    def test_combined(self):
        a = Engagement(views=10, likes=1)
        b = Engagement(views=20, reposts=2)
        combined = a.combined(b)
        assert combined.views == 30
        assert combined.likes == 1
        assert combined.reposts == 2


class TestPost:
    def test_requires_id_and_text(self):
        with pytest.raises(ValueError):
            make_post(post_id="")
        with pytest.raises(ValueError):
            make_post(text="")

    def test_hashtags_canonical(self):
        post = make_post(text="my #DPF_delete and #egroff")
        assert post.hashtags == ("dpfdelete", "egroff")

    def test_year(self):
        assert make_post(created_at=dt.date(2021, 12, 31)).year == 2021

    def test_default_region(self):
        assert make_post().region == "europe"

    def test_frozen(self):
        post = make_post()
        with pytest.raises(AttributeError):
            post.text = "changed"
