"""Calibration tests for the paper-scenario corpora.

These assert the *generation ground truth* that makes the downstream
figures come out with the paper's shape: volume dominance orders and the
pre/post-2022 trend flip.
"""

from repro.iso21434.enums import AttackVector
from repro.social.scenarios import (
    KEYWORD_OWNER_APPROVED,
    KEYWORD_VECTORS,
    ecm_reprogramming_corpus,
    ecm_reprogramming_specs,
    excavator_corpus,
    excavator_specs,
    light_truck_specs,
)


class TestEcmSpecs:
    def test_physical_dominates_full_history(self):
        volumes = {s.keyword: s.total_volume for s in ecm_reprogramming_specs()}
        assert volumes["ecmreprogramming"] > volumes["obdtuning"]

    def test_local_dominates_since_2022(self):
        specs = {s.keyword: s for s in ecm_reprogramming_specs()}
        physical_recent = sum(
            v for y, v in specs["ecmreprogramming"].yearly_volume.items()
            if y >= 2022
        )
        local_recent = sum(
            v for y, v in specs["obdtuning"].yearly_volume.items() if y >= 2022
        )
        assert local_recent > 3 * physical_recent

    def test_vector_assignments(self):
        vectors = {s.keyword: s.vector for s in ecm_reprogramming_specs()}
        assert vectors["ecmreprogramming"] is AttackVector.PHYSICAL
        assert vectors["obdtuning"] is AttackVector.LOCAL
        assert vectors["remoteecuflash"] is AttackVector.NETWORK

    def test_includes_outsider_topic(self):
        approved = {s.keyword: s.owner_approved for s in ecm_reprogramming_specs()}
        assert not approved["relayattack"]

    def test_corpus_generates(self):
        corpus = ecm_reprogramming_corpus()
        expected = sum(s.total_volume for s in ecm_reprogramming_specs())
        assert len(corpus) == expected


class TestExcavatorSpecs:
    def test_dpfdelete_highest_volume(self):
        volumes = {s.keyword: s.total_volume for s in excavator_specs()}
        top = max(volumes, key=lambda k: volumes[k])
        assert top == "dpfdelete"

    def test_dpfdelete_highest_engagement_scale(self):
        scales = {s.keyword: s.engagement_scale for s in excavator_specs()}
        assert scales["dpfdelete"] == max(scales.values())

    def test_dpf_price_range_centred_on_360(self):
        spec = {s.keyword: s for s in excavator_specs()}["dpfdelete"]
        low, high = spec.price_range
        assert (low + high) / 2 == 360.0

    def test_includes_outsider_topic(self):
        approved = {s.keyword: s.owner_approved for s in excavator_specs()}
        assert not approved["keycloning"]

    def test_corpus_generates_deterministically(self):
        a = excavator_corpus(seed=3)
        b = excavator_corpus(seed=3)
        assert [p.post_id for p in a] == [p.post_id for p in b]
        assert [p.text for p in a] == [p.text for p in b]


class TestGroundTruthExports:
    def test_vectors_cover_all_keywords(self):
        spec_keywords = {
            s.keyword
            for s in (
                ecm_reprogramming_specs()
                + excavator_specs()
                + light_truck_specs()
            )
        }
        assert set(KEYWORD_VECTORS) == spec_keywords
        assert set(KEYWORD_OWNER_APPROVED) == spec_keywords

    def test_chiptuning_is_local_insider(self):
        assert KEYWORD_VECTORS["chiptuning"] is AttackVector.LOCAL
        assert KEYWORD_OWNER_APPROVED["chiptuning"]
