"""Tests for the multi-platform aggregation layer."""

import datetime as dt

import pytest

from repro.social.api import InMemoryClient, SearchQuery
from repro.social.corpus import Corpus
from repro.social.multiplatform import MultiPlatformClient, PlatformSource
from repro.social.post import Engagement, Post


def post(pid, text, year=2022, views=1000) -> Post:
    return Post(
        post_id=pid, text=text, author="u",
        created_at=dt.date(year, 6, 1),
        engagement=Engagement(views=views, likes=views // 10),
    )


@pytest.fixture()
def aggregator() -> MultiPlatformClient:
    twitter = InMemoryClient(
        Corpus([post("t1", "#dpfdelete on twitter", 2021),
                post("t2", "#dpfdelete again", 2022)])
    )
    instagram = InMemoryClient(
        Corpus([post("i1", "#dpfdelete reel", 2022, views=4000)])
    )
    deepweb = InMemoryClient(
        Corpus([post("d1", "#dpfdelete kit listing", 2022, views=2000)])
    )
    return MultiPlatformClient(
        [
            PlatformSource("twitter", twitter),
            PlatformSource("instagram", instagram),
            PlatformSource("deepweb", deepweb, trust=0.5),
        ]
    )


class TestConstruction:
    def test_requires_sources(self):
        with pytest.raises(ValueError):
            MultiPlatformClient([])

    def test_duplicate_names_rejected(self):
        client = InMemoryClient(Corpus())
        with pytest.raises(ValueError, match="duplicate"):
            MultiPlatformClient(
                [PlatformSource("x", client), PlatformSource("x", client)]
            )

    def test_trust_validated(self):
        client = InMemoryClient(Corpus())
        with pytest.raises(ValueError):
            PlatformSource("x", client, trust=0.0)
        with pytest.raises(ValueError):
            PlatformSource("x", client, trust=1.5)

    def test_platforms_listed(self, aggregator):
        assert aggregator.platforms == ("twitter", "instagram", "deepweb")


class TestSearch:
    def test_merges_all_platforms(self, aggregator):
        posts = aggregator.search(SearchQuery(keyword="dpfdelete"))
        assert len(posts) == 4

    def test_ids_namespaced(self, aggregator):
        posts = aggregator.search(SearchQuery(keyword="dpfdelete"))
        ids = {p.post_id for p in posts}
        assert "twitter:t1" in ids
        assert "instagram:i1" in ids
        assert "deepweb:d1" in ids

    def test_sorted_oldest_first(self, aggregator):
        posts = aggregator.search(SearchQuery(keyword="dpfdelete"))
        dates = [p.created_at for p in posts]
        assert dates == sorted(dates)

    def test_trust_scales_engagement(self, aggregator):
        posts = {
            p.post_id: p
            for p in aggregator.search(SearchQuery(keyword="dpfdelete"))
        }
        assert posts["deepweb:d1"].engagement.views == 1000  # 2000 x 0.5
        assert posts["instagram:i1"].engagement.views == 4000  # untouched

    def test_time_filter_passes_through(self, aggregator):
        posts = aggregator.search(
            SearchQuery(keyword="dpfdelete", since=dt.date(2022, 1, 1))
        )
        assert len(posts) == 3


class TestCounts:
    def test_count_by_year_summed(self, aggregator):
        counts = aggregator.count_by_year(SearchQuery(keyword="dpfdelete"))
        assert counts == {2021: 1, 2022: 3}

    def test_count_by_platform(self, aggregator):
        counts = aggregator.count_by_platform(SearchQuery(keyword="dpfdelete"))
        assert counts == {"twitter": 2, "instagram": 1, "deepweb": 1}

    def test_source_lookup(self, aggregator):
        assert aggregator.source("deepweb").trust == 0.5
        with pytest.raises(KeyError):
            aggregator.source("myspace")


class TestPipelineCompatibility:
    def test_sai_runs_over_aggregated_platforms(self, aggregator):
        from repro.core.keywords import AttackKeyword, KeywordDatabase
        from repro.core.sai import SAIComputer

        db = KeywordDatabase([AttackKeyword(keyword="dpfdelete")])
        sai = SAIComputer(aggregator).compute(db)
        assert sai.entry("dpfdelete").post_count == 4
