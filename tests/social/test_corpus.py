"""Tests for the post corpus and its query surface."""

import datetime as dt

import pytest

from repro.social.corpus import Corpus
from repro.social.post import Engagement, Post


def post(pid, text, year=2022, region="europe", views=100) -> Post:
    return Post(
        post_id=pid,
        text=text,
        author="u",
        created_at=dt.date(year, 6, 15),
        region=region,
        engagement=Engagement(views=views, likes=views // 10),
    )


@pytest.fixture()
def corpus() -> Corpus:
    return Corpus(
        [
            post("p1", "did my #dpfdelete", year=2019),
            post("p2", "another dpf delete story", year=2021),
            post("p3", "#egroff went fine", year=2022),
            post("p4", "#dpfdelete in the US", year=2022, region="north_america"),
            post("p5", "nothing relevant", year=2022),
        ]
    )


class TestConstruction:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Corpus([post("p1", "a"), post("p1", "b")])

    def test_len_iter_contains(self, corpus):
        assert len(corpus) == 5
        assert "p1" in corpus
        assert "nope" not in corpus
        assert len(list(corpus)) == 5


class TestMatching:
    def test_hashtag_match(self, corpus):
        ids = [p.post_id for p in corpus.matching("dpfdelete")]
        assert "p1" in ids and "p4" in ids

    def test_free_text_match(self, corpus):
        ids = [p.post_id for p in corpus.matching("dpfdelete")]
        assert "p2" in ids  # "dpf delete" free text folds onto the keyword

    def test_no_match(self, corpus):
        assert corpus.matching("adbluedelete") == []

    def test_results_sorted_by_date(self, corpus):
        matches = corpus.matching("dpfdelete")
        dates = [p.created_at for p in matches]
        assert dates == sorted(dates)

    def test_total_engagement(self, corpus):
        total = corpus.total_engagement("egroff")
        assert total.views == 100


class TestFilters:
    def test_window(self, corpus):
        recent = corpus.in_window(since=dt.date(2022, 1, 1))
        assert len(recent) == 3

    def test_window_both_bounds(self, corpus):
        mid = corpus.in_window(
            since=dt.date(2020, 1, 1), until=dt.date(2021, 12, 31)
        )
        assert [p.post_id for p in mid] == ["p2"]

    def test_since_year(self, corpus):
        assert len(corpus.since_year(2022)) == 3

    def test_region_case_insensitive(self, corpus):
        assert len(corpus.in_region("Europe")) == 4
        assert len(corpus.in_region("north_america")) == 1

    def test_years(self, corpus):
        assert corpus.years() == [2019, 2021, 2022]

    def test_merged(self, corpus):
        extra = Corpus([post("p9", "extra")])
        assert len(corpus.merged_with(extra)) == 6

    def test_merged_rejects_id_collision(self, corpus):
        extra = Corpus([post("p1", "collision")])
        with pytest.raises(ValueError):
            corpus.merged_with(extra)

    def test_texts(self, corpus):
        assert len(corpus.texts()) == 5


class TestContains:
    def test_membership_uses_id_set(self, corpus):
        # __contains__ answers from the id set built at construction —
        # no linear scan of the posts.
        assert "p3" in corpus
        assert "p9" not in corpus
        assert corpus._ids == {"p1", "p2", "p3", "p4", "p5"}

    def test_merged_corpus_contains_both_sides(self, corpus):
        merged = corpus.merged_with(Corpus([post("p9", "extra")]))
        assert "p9" in merged and "p1" in merged


class TestIndexedEngine:
    def test_index_built_once_and_reused(self, corpus):
        engine = corpus.index()
        corpus.matching("dpfdelete")
        corpus.search_many(("dpfdelete", "egroff"))
        assert corpus.index() is engine

    def test_search_many_equals_per_keyword_matching(self, corpus):
        keywords = ("dpfdelete", "egroff", "nothing", "missingkw")
        batch = corpus.search_many(keywords)
        for keyword in keywords:
            assert [p.post_id for p in batch[keyword]] == [
                p.post_id for p in corpus.matching(keyword)
            ]

    def test_search_many_window_is_bisected_slice(self, corpus):
        batch = corpus.search_many(
            ("dpfdelete",),
            since=dt.date(2021, 1, 1),
            until=dt.date(2021, 12, 31),
        )
        assert [p.post_id for p in batch["dpfdelete"]] == ["p2"]

    def test_search_many_limit(self, corpus):
        batch = corpus.search_many(("dpfdelete",), limit=2)
        assert [p.post_id for p in batch["dpfdelete"]] == ["p1", "p2"]

    def test_region_view_memoized_case_insensitively(self, corpus):
        view = corpus.region_view("Europe")
        assert corpus.region_view("  EUROPE ") is view
        assert len(view) == 4
        assert [p.post_id for p in view.matching("dpfdelete")] == ["p1", "p2"]
