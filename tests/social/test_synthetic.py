"""Tests for the synthetic corpus generator."""

import pytest

from repro.iso21434.enums import AttackVector
from repro.nlp.textmining import extract_prices
from repro.social.synthetic import (
    AttackTopicSpec,
    generate_corpus,
    volume_by_keyword,
)


def spec(**overrides) -> AttackTopicSpec:
    defaults = dict(
        keyword="dpfdelete",
        vector=AttackVector.PHYSICAL,
        owner_approved=True,
        yearly_volume={2021: 10, 2022: 20},
    )
    defaults.update(overrides)
    return AttackTopicSpec(**defaults)


class TestSpecValidation:
    def test_requires_volume(self):
        with pytest.raises(ValueError):
            spec(yearly_volume={})

    def test_rejects_negative_volume(self):
        with pytest.raises(ValueError):
            spec(yearly_volume={2021: -1})

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            spec(positive_ratio=1.5)

    def test_rejects_zero_engagement_scale(self):
        with pytest.raises(ValueError):
            spec(engagement_scale=0)

    def test_total_volume(self):
        assert spec().total_volume == 30


class TestGeneration:
    def test_volume_respected_exactly(self):
        corpus = generate_corpus([spec()])
        assert len(corpus) == 30
        assert len(corpus.since_year(2022)) == 20

    def test_deterministic_across_runs(self):
        a = generate_corpus([spec()], seed=7)
        b = generate_corpus([spec()], seed=7)
        assert [p.text for p in a] == [p.text for p in b]
        assert [p.engagement.views for p in a] == [
            p.engagement.views for p in b
        ]

    def test_seed_changes_content(self):
        a = generate_corpus([spec()], seed=1)
        b = generate_corpus([spec()], seed=2)
        assert [p.text for p in a] != [p.text for p in b]

    def test_posts_carry_keyword_hashtag(self):
        corpus = generate_corpus([spec()])
        assert all("dpfdelete" in p.hashtags for p in corpus)

    def test_unique_post_ids(self):
        corpus = generate_corpus([spec(), spec(keyword="egroff")])
        ids = [p.post_id for p in corpus]
        assert len(ids) == len(set(ids))

    def test_region_stamped(self):
        corpus = generate_corpus([spec(region="north_america")])
        assert all(p.region == "north_america" for p in corpus)

    def test_price_mentions_generated(self):
        corpus = generate_corpus(
            [spec(price_range=(300.0, 420.0), price_mention_rate=1.0)]
        )
        texts_with_price = [
            p.text for p in corpus if extract_prices(p.text)
        ]
        assert len(texts_with_price) == len(corpus)
        for text in texts_with_price:
            amount = extract_prices(text)[0].amount
            assert 300 <= amount <= 420

    def test_zero_price_rate_means_no_prices(self):
        corpus = generate_corpus(
            [spec(price_range=(300.0, 420.0), price_mention_rate=0.0)]
        )
        assert not any(extract_prices(p.text) for p in corpus)

    def test_companion_tags_appear(self):
        corpus = generate_corpus(
            [spec(companion_tags=("stage1",), yearly_volume={2022: 200})]
        )
        assert any("stage1" in p.hashtags for p in corpus)

    def test_outsider_topics_use_crime_voice(self):
        corpus = generate_corpus(
            [spec(owner_approved=False, yearly_volume={2022: 50})]
        )
        crime_words = ("stolen", "steal", "thieves", "theft", "criminals",
                       "arrested", "police", "gang", "taken", "insurance")
        assert all(
            any(w in p.text.lower() for w in crime_words) for p in corpus
        )

    def test_volume_by_keyword(self):
        specs = [spec(), spec(keyword="egroff", yearly_volume={2022: 5})]
        assert volume_by_keyword(specs) == {"dpfdelete": 30, "egroff": 5}
