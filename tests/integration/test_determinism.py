"""End-to-end determinism: the reproduction's core guarantee.

The substitution strategy (DESIGN.md) rests on deterministic synthetic
data: every run of every experiment must produce bit-identical results,
otherwise EXPERIMENTS.md's recorded values are meaningless.  These tests
rebuild the pipelines from scratch twice and compare the outputs exactly.
"""

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.analysis import generate_assessment_report
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.social import (
    InMemoryClient,
    ecm_reprogramming_corpus,
    ecm_reprogramming_specs,
    excavator_corpus,
    excavator_specs,
)


def fresh_framework(specs_fn, corpus_fn, target):
    db = KeywordDatabase()
    for spec in specs_fn():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return PSPFramework(InMemoryClient(corpus_fn()), target, database=db)


def excavator():
    return fresh_framework(
        excavator_specs,
        excavator_corpus,
        TargetApplication("excavator", "europe", "industrial"),
    )


def ecm():
    return fresh_framework(
        ecm_reprogramming_specs,
        ecm_reprogramming_corpus,
        TargetApplication("car", "europe", "passenger"),
    )


class TestSaiDeterminism:
    def test_scores_bit_identical_across_runs(self):
        first = excavator().run(learn=False)
        second = excavator().run(learn=False)
        assert first.sai.as_rows() == second.sai.as_rows()

    def test_exact_scores_unchanged_within_process(self):
        sai_a = excavator().compute_sai()
        sai_b = excavator().compute_sai()
        for entry_a, entry_b in zip(sai_a, sai_b):
            assert entry_a.keyword == entry_b.keyword
            assert entry_a.score == entry_b.score  # exact float equality
            assert entry_a.probability == entry_b.probability


class TestTableDeterminism:
    def test_fig9_tables_identical_across_runs(self):
        windows = (TimeWindow.full_history(), TimeWindow.since_year(2022))
        first = ecm().compare_windows(*windows)
        second = ecm().compare_windows(*windows)
        assert first[0].insider_table.ratings == second[0].insider_table.ratings
        assert first[1].insider_table.ratings == second[1].insider_table.ratings

    def test_inversions_identical(self):
        windows = (TimeWindow.full_history(), TimeWindow.since_year(2022))
        first = ecm().compare_windows(*windows)
        second = ecm().compare_windows(*windows)
        assert [
            (inv.risen, inv.fallen) for inv in first[2]
        ] == [(inv.risen, inv.fallen) for inv in second[2]]


class TestFinancialDeterminism:
    def test_eq6_eq7_exact_across_runs(self):
        first = excavator().assess_financial("dpfdelete")
        second = excavator().assess_financial("dpfdelete")
        assert first.mv == second.mv
        assert first.fc_required == second.fc_required
        assert first.pae == second.pae


class TestReportDeterminism:
    def test_full_markdown_report_identical(self):
        first = generate_assessment_report(excavator().run(learn=False))
        second = generate_assessment_report(excavator().run(learn=False))
        assert first == second


class TestSeedSensitivity:
    def test_different_seed_different_corpus_same_shape(self):
        # A different seed changes the exact posts but must not change
        # the calibrated *shape*: DPF delete still ranks first.
        other = fresh_framework(
            excavator_specs,
            lambda: excavator_corpus(seed=999),
            TargetApplication("excavator", "europe", "industrial"),
        )
        default = excavator().run(learn=False)
        reseeded = other.run(learn=False)
        assert default.sai.ranking()[0] == reseeded.sai.ranking()[0] == "dpfdelete"
        assert (
            default.sai.entry("dpfdelete").score
            != reseeded.sai.entry("dpfdelete").score
        )
