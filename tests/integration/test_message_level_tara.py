"""Integration: message-level threats flowing through the full TARA.

Ties the CAN catalogue substrate to the TARA engine: frame-level STRIDE
threats (spoofing/DoS on the torque loop, the paper's refs [19]/[22]
attack classes) are assessed alongside the auto-enumerated ECU threats,
and the PSP-tuned table raises exactly the insider message threats.
"""

import pytest

from repro.iso21434.enums import AttackVector, FeasibilityRating, ImpactRating
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.tara import TaraEngine
from repro.vehicle import message_threats, powertrain_catalog


def psp_table() -> WeightTable:
    return WeightTable(
        {
            AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
            AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
            AttackVector.LOCAL: FeasibilityRating.MEDIUM,
            AttackVector.PHYSICAL: FeasibilityRating.HIGH,
        },
        source="psp",
    )


@pytest.fixture(scope="module")
def runs(fig4_network):
    threats = message_threats(powertrain_catalog(fig4_network))
    static = TaraEngine(fig4_network).run(extra_threats=threats)
    tuned = TaraEngine(fig4_network, insider_table=psp_table()).run(
        extra_threats=threats
    )
    return threats, static, tuned


class TestMessageThreatsAssessed:
    def test_every_message_threat_has_a_record(self, runs):
        threats, static, _ = runs
        index = static.by_threat()
        for threat in threats:
            assert threat.threat_id in index

    def test_torque_dos_inherits_powertrain_impact(self, runs):
        _, static, _ = runs
        record = static.by_threat()["ts.ecm.msg.0x0c0.denial_of_service"]
        assert record.impact.overall is ImpactRating.SEVERE

    def test_static_rates_torque_spoofing_low(self, runs):
        # Under the static table the best path to the ECM is local/OBD.
        _, static, _ = runs
        record = static.by_threat()["ts.ecm.msg.0x0c0.spoofing"]
        assert record.feasibility is FeasibilityRating.LOW

    def test_psp_raises_torque_spoofing(self, runs):
        _, static, tuned = runs
        threat_id = "ts.ecm.msg.0x0c0.spoofing"
        assert (
            tuned.by_threat()[threat_id].feasibility
            > static.by_threat()[threat_id].feasibility
        )

    def test_psp_raises_risk_of_message_dos(self, runs):
        _, static, tuned = runs
        threat_id = "ts.ecm.msg.0x0c0.denial_of_service"
        assert (
            tuned.by_threat()[threat_id].risk_value
            > static.by_threat()[threat_id].risk_value
        )

    def test_diagnostic_disclosure_assessed(self, runs):
        _, static, _ = runs
        record = static.by_threat()[
            "ts.gateway.msg.0x7e0.information_disclosure"
        ]
        assert record.risk_value >= 1
