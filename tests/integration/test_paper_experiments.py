"""End-to-end assertions for every paper experiment (DESIGN.md E1-E10).

These are the reproduction's headline checks: each test pins the *shape*
the paper reports (who wins, what inverts, which values come out) for one
figure, table or equation.
"""

import pytest

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.analysis import report_confirms_inversion, summarize_disagreements
from repro.iso21434.cal import physical_ceiling
from repro.iso21434.enums import CAL, AttackVector, FeasibilityRating, ImpactRating
from repro.iso21434.feasibility.attack_potential import (
    AttackPotentialInput,
    AttackPotentialModel,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
)
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.market import default_report_library
from repro.tara import TaraEngine, compare_runs
from repro.vehicle.domains import VehicleDomain


class TestE1AttackPotential:
    """Fig. 3: the attack-potential weights model."""

    def test_owner_with_unlimited_access_rates_high(self):
        owner = AttackPotentialInput(
            elapsed_time=ElapsedTime.ONE_WEEK,
            expertise=Expertise.PROFICIENT,
            knowledge=Knowledge.PUBLIC,
            window=WindowOfOpportunity.UNLIMITED,
            equipment=Equipment.SPECIALIZED,
        )
        assert AttackPotentialModel().rate(owner) is FeasibilityRating.HIGH


class TestE2AttackVectorTable:
    """Fig. 5: the static G.9 table."""

    def test_exact_table(self):
        table = standard_table()
        expected = {
            AttackVector.NETWORK: FeasibilityRating.HIGH,
            AttackVector.ADJACENT: FeasibilityRating.MEDIUM,
            AttackVector.LOCAL: FeasibilityRating.LOW,
            AttackVector.PHYSICAL: FeasibilityRating.VERY_LOW,
        }
        for vector, rating in expected.items():
            assert table.rating(vector) is rating


class TestE3CalDetermination:
    """Fig. 6: CAL matrix; physical capped at CAL2."""

    def test_physical_ceiling(self):
        assert physical_ceiling() is CAL.CAL2


class TestE4WeightTuning:
    """Fig. 8: outsider weights untouched, insider weights re-ranked."""

    def test_outsider_table_is_standard(self, ecm_framework):
        result = ecm_framework.run(learn=False)
        assert result.outsider_table.ratings == standard_table().ratings

    def test_insider_physical_raised(self, ecm_framework):
        result = ecm_framework.run(learn=False)
        static_physical = standard_table().rating(AttackVector.PHYSICAL)
        tuned_physical = result.insider_table.rating(AttackVector.PHYSICAL)
        assert tuned_physical > static_physical

    def test_insider_network_lowered(self, ecm_framework):
        result = ecm_framework.run(learn=False)
        static_network = standard_table().rating(AttackVector.NETWORK)
        tuned_network = result.insider_table.rating(AttackVector.NETWORK)
        assert tuned_network < static_network


class TestE5TrendInversion:
    """Fig. 9: full-history vs since-2022 windows."""

    @pytest.fixture()
    def windows(self, ecm_framework):
        return ecm_framework.compare_windows(
            TimeWindow.full_history(), TimeWindow.since_year(2022)
        )

    def test_full_window_physical_dominates(self, windows):
        before, _, _ = windows
        table = before.insider_table
        assert table.rating(AttackVector.PHYSICAL) is FeasibilityRating.HIGH
        assert table.rating(AttackVector.PHYSICAL) > table.rating(AttackVector.LOCAL)

    def test_recent_window_local_dominates(self, windows):
        _, after, _ = windows
        table = after.insider_table
        assert table.rating(AttackVector.LOCAL) is FeasibilityRating.HIGH
        assert table.rating(AttackVector.LOCAL) > table.rating(AttackVector.PHYSICAL)

    def test_inversion_detected(self, windows):
        _, _, inversions = windows
        assert any(
            inv.risen is AttackVector.LOCAL and inv.fallen is AttackVector.PHYSICAL
            for inv in inversions
        )

    def test_inversion_confirmed_by_annual_report(self, windows):
        # "The trend inversion highlighted by PSP ... is confirmed by the
        # Upstream global automotive cybersecurity report."
        report = default_report_library().latest("excavator", "europe")
        assert report_confirms_inversion(
            report, risen=AttackVector.LOCAL, fallen=AttackVector.PHYSICAL
        )


class TestE6BreakEven:
    """Fig. 11: cost/revenue crossover."""

    def test_crossover_geometry(self, excavator_framework):
        assessment = excavator_framework.assess_financial("dpfdelete")
        analysis = assessment.analysis()
        bep = analysis.break_even
        assert not analysis.is_profitable(0.5 * bep)
        assert analysis.is_profitable(1.5 * bep)
        assert analysis.profit(bep) == pytest.approx(0.0, abs=1e-6)


class TestE7ExcavatorSai:
    """Fig. 12: DPF delete tops the excavator SAI ranking."""

    def test_dpfdelete_first(self, excavator_framework):
        result = excavator_framework.run(learn=False)
        assert result.sai.ranking()[0] == "dpfdelete"

    def test_all_insider_topics_above_outsider_theft(self, excavator_framework):
        result = excavator_framework.run(learn=False)
        ranking = result.sai.ranking()
        assert ranking.index("dpfdelete") < ranking.index("keycloning")


class TestE8E9Financial:
    """Eqs. 6-7: the exact published EUR values."""

    def test_eq6_market_value(self, excavator_framework):
        assessment = excavator_framework.assess_financial("dpfdelete")
        assert assessment.pae == 1406
        assert assessment.ppia == pytest.approx(360.0)
        assert assessment.mv == pytest.approx(506160.0)

    def test_eq7_required_investment(self, excavator_framework):
        assessment = excavator_framework.assess_financial("dpfdelete")
        assert assessment.competitors == 3
        assert assessment.margin == pytest.approx(310.0)
        assert assessment.fc_required == pytest.approx(145286.67, abs=0.01)


class TestE10StaticVsPsp:
    """§II claim: the static model under-rates powertrain insider threats."""

    @pytest.fixture()
    def comparison(self, fig4_network, ecm_framework):
        insider_table = ecm_framework.run(learn=False).insider_table
        static = TaraEngine(fig4_network).run()
        tuned = TaraEngine(fig4_network, insider_table=insider_table).run()
        return static, compare_runs(fig4_network, static, tuned)

    def test_disagreements_exist(self, comparison):
        _, disagreements = comparison
        assert disagreements

    def test_concentrated_in_powertrain(self, comparison):
        static, disagreements = comparison
        summary = summarize_disagreements(len(static.records), disagreements)
        assert summary.dominant_domain() is VehicleDomain.POWERTRAIN

    def test_all_underestimates(self, comparison):
        _, disagreements = comparison
        assert all(d.underestimated for d in disagreements)

    def test_severe_impact_present_in_raised_threats(self, comparison):
        static, disagreements = comparison
        index = static.by_threat()
        assert any(
            index[d.threat_id].impact.overall is ImpactRating.SEVERE
            for d in disagreements
        )
