"""Import-surface tests: every advertised public name resolves.

Guards against broken ``__all__`` lists and circular imports — the
failure mode that only shows up when a downstream user does
``from repro.core import X``.
"""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.core",
    "repro.iso21434",
    "repro.iso21434.feasibility",
    "repro.nlp",
    "repro.social",
    "repro.market",
    "repro.vehicle",
    "repro.baselines",
    "repro.tara",
    "repro.analysis",
)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported is not None, f"{package_name} must define __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    exported = list(package.__all__)
    assert len(exported) == len(set(exported)), f"{package_name} has duplicates"


def test_top_level_quickstart_names():
    import repro

    for name in ("PSPFramework", "TargetApplication", "TimeWindow",
                 "AttackVector", "FeasibilityRating", "WeightTable"):
        assert hasattr(repro, name)


def test_version_string():
    import repro

    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_cli_module_importable():
    from repro.cli import build_parser, main

    assert callable(main)
    assert build_parser().prog == "repro"
