"""Cross-scenario invariants: the pipeline holds on every bundled corpus.

Runs the complete PSP pipeline on all three scenario corpora and checks
the invariants that must hold regardless of workload: probability
normalisation, partition of the insider/outsider split, untouched
outsider weights, and rating-scale closure.
"""

import pytest

from repro import PSPFramework, TargetApplication
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import FeasibilityRating
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.social import (
    InMemoryClient,
    ecm_reprogramming_corpus,
    ecm_reprogramming_specs,
    excavator_corpus,
    excavator_specs,
    light_truck_corpus,
    light_truck_specs,
)

SCENARIOS = {
    "excavator": (excavator_specs, excavator_corpus,
                  TargetApplication("excavator", "europe", "industrial")),
    "ecm": (ecm_reprogramming_specs, ecm_reprogramming_corpus,
            TargetApplication("car", "europe", "passenger")),
    "truck": (light_truck_specs, light_truck_corpus,
              TargetApplication("light_truck", "europe", "commercial")),
}


@pytest.fixture(params=sorted(SCENARIOS), scope="module")
def scenario_result(request):
    specs_fn, corpus_fn, target = SCENARIOS[request.param]
    db = KeywordDatabase()
    for spec in specs_fn():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    framework = PSPFramework(
        InMemoryClient(corpus_fn()), target, database=db
    )
    return request.param, framework.run(learn=False)


class TestCrossScenarioInvariants:
    def test_probabilities_normalised(self, scenario_result):
        _, result = scenario_result
        assert sum(e.probability for e in result.sai) == pytest.approx(1.0)

    def test_split_is_partition(self, scenario_result):
        _, result = scenario_result
        split_keywords = sorted(result.split.all_keywords())
        sai_keywords = sorted(e.keyword for e in result.sai)
        assert split_keywords == sai_keywords

    def test_outsider_table_always_standard(self, scenario_result):
        _, result = scenario_result
        assert result.outsider_table.ratings == standard_table().ratings

    def test_insider_table_in_scale(self, scenario_result):
        _, result = scenario_result
        for _, rating in result.insider_table.items():
            assert rating in FeasibilityRating

    def test_every_insider_topic_outranks_every_outsider_zero(self, scenario_result):
        # Every scenario seeds at least one outsider topic with nonzero
        # volume; the top insider topic must outrank it.
        _, result = scenario_result
        ranking = result.sai.ranking()
        outsiders = {e.keyword for e in result.split.outsider_entries}
        insiders = [k for k in ranking if k not in outsiders]
        assert insiders
        assert ranking[0] in insiders

    def test_insider_mass_dominates(self, scenario_result):
        # All three corpora model insider-heavy scenes (the paper's
        # observation: "most threat scenarios on social media are insider").
        _, result = scenario_result
        assert result.split.insider_probability_mass > 0.5
