"""Smoke tests: every example script runs to completion.

Examples are the first thing a downstream user tries; a broken example
is a broken release.  Each script is executed in a subprocess and must
exit 0 and print its headline artefact.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = (
    ("quickstart.py", "dpfdelete"),
    ("ecm_reprogramming.py", "Trend inversion detected"),
    ("excavator_dpf.py", "506,160"),
    ("fleet_tara.py", "rated differently"),
    ("runtime_monitoring.py", "TARA"),
    ("model_triangulation.py", "PSP-tuned table"),
    ("live_monitor.py", "resume parity: OK"),
)


@pytest.mark.parametrize("script,expected", CASES)
def test_example_runs(script, expected):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert expected in completed.stdout


def test_generate_assessment_writes_file(tmp_path):
    destination = tmp_path / "assessment.md"
    completed = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "generate_assessment.py"),
            str(destination),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    content = destination.read_text()
    assert content.startswith("# PSP risk assessment report")
    assert "## Control recommendation" in content
