"""Tests for rating comparison utilities."""

import pytest

from repro.analysis.compare import (
    agreement_matrix,
    rank_displacement,
    summarize_disagreements,
    table_delta,
)
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.tara.engine import RatingDisagreement
from repro.vehicle.domains import VehicleDomain


def tuned():
    return standard_table().with_rating(
        AttackVector.PHYSICAL, FeasibilityRating.HIGH, source="psp"
    )


def disagreement(ecu="ecm", domain=VehicleDomain.POWERTRAIN,
                 static=FeasibilityRating.VERY_LOW,
                 tuned_rating=FeasibilityRating.HIGH) -> RatingDisagreement:
    return RatingDisagreement(
        threat_id=f"ts.{ecu}.x", ecu_id=ecu, domain=domain,
        static_feasibility=static, tuned_feasibility=tuned_rating,
        static_risk=2, tuned_risk=5,
    )


class TestTableDelta:
    def test_reports_changed_vectors(self):
        delta = table_delta(standard_table(), tuned())
        assert set(delta) == {AttackVector.PHYSICAL}
        before, after = delta[AttackVector.PHYSICAL]
        assert before is FeasibilityRating.VERY_LOW
        assert after is FeasibilityRating.HIGH

    def test_identical_tables_empty(self):
        assert table_delta(standard_table(), standard_table()) == {}


class TestRankDisplacement:
    def test_identical_zero(self):
        assert rank_displacement(standard_table(), standard_table()) == 0

    def test_single_promotion_displaces(self):
        assert rank_displacement(standard_table(), tuned()) > 0

    def test_full_reversal_is_maximal(self):
        reversed_table = standard_table()
        for vector, rating in (
            (AttackVector.NETWORK, FeasibilityRating.VERY_LOW),
            (AttackVector.ADJACENT, FeasibilityRating.LOW),
            (AttackVector.LOCAL, FeasibilityRating.MEDIUM),
            (AttackVector.PHYSICAL, FeasibilityRating.HIGH),
        ):
            reversed_table = reversed_table.with_rating(vector, rating, source="t")
        assert rank_displacement(standard_table(), reversed_table) == 8


class TestDisagreementSummary:
    def test_rate(self):
        summary = summarize_disagreements(10, [disagreement()])
        assert summary.disagreement_rate == pytest.approx(0.1)

    def test_zero_threats(self):
        assert summarize_disagreements(0, []).disagreement_rate == 0.0

    def test_by_domain(self):
        summary = summarize_disagreements(
            10,
            [disagreement(), disagreement(ecu="icm",
                                          domain=VehicleDomain.INFOTAINMENT)],
        )
        counts = summary.by_domain()
        assert counts[VehicleDomain.POWERTRAIN] == 1
        assert counts[VehicleDomain.INFOTAINMENT] == 1

    def test_underestimated_filter(self):
        over = disagreement(static=FeasibilityRating.HIGH,
                            tuned_rating=FeasibilityRating.LOW)
        summary = summarize_disagreements(10, [disagreement(), over])
        assert len(summary.underestimated()) == 1

    def test_dominant_domain(self):
        summary = summarize_disagreements(
            10, [disagreement(), disagreement(ecu="tcm")]
        )
        assert summary.dominant_domain() is VehicleDomain.POWERTRAIN

    def test_dominant_domain_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_disagreements(10, []).dominant_domain()


class TestAgreementMatrix:
    def test_counts_pairs(self):
        a = {"t1": FeasibilityRating.LOW, "t2": FeasibilityRating.HIGH}
        b = {"t1": FeasibilityRating.LOW, "t2": FeasibilityRating.MEDIUM}
        matrix = agreement_matrix(a, b)
        assert matrix[(FeasibilityRating.LOW, FeasibilityRating.LOW)] == 1
        assert matrix[(FeasibilityRating.HIGH, FeasibilityRating.MEDIUM)] == 1

    def test_missing_keys_skipped(self):
        a = {"t1": FeasibilityRating.LOW}
        assert agreement_matrix(a, {}) == {}
