"""Tests for the tuning-threshold sensitivity sweep."""

from repro.analysis.sweep import threshold_sensitivity
from repro.iso21434.enums import AttackVector


SHARES = {
    AttackVector.PHYSICAL: 0.63,
    AttackVector.LOCAL: 0.31,
    AttackVector.ADJACENT: 0.05,
    AttackVector.NETWORK: 0.01,
}


class TestThresholdSensitivity:
    def test_all_valid_combinations_swept(self):
        points = threshold_sensitivity(SHARES)
        # 3 x 3 x 3 grid, all combinations valid with the defaults
        assert len(points) == 27

    def test_invalid_orderings_skipped(self):
        points = threshold_sensitivity(
            SHARES, highs=(0.1,), mediums=(0.2,), lows=(0.05,)
        )
        assert points == []  # medium > high -> skipped

    def test_fig9b_ranking_robust_to_thresholds(self):
        # The published full-history ranking (physical first, local
        # second) holds across the entire default threshold grid.
        points = threshold_sensitivity(SHARES)
        for point in points:
            ranking = point.outcome
            assert ranking[0] is AttackVector.PHYSICAL, point.label
            assert ranking[1] is AttackVector.LOCAL, point.label

    def test_outcome_is_full_ranking(self):
        points = threshold_sensitivity(SHARES)
        for point in points:
            assert set(point.outcome) == set(AttackVector)
