"""Tests for the BENCH_*.json record schema and IO."""

import json

import pytest

from repro.analysis.benchjson import (
    SCHEMA_VERSION,
    BenchResult,
    bench_file_path,
    load_bench_result,
    peak_rss_kb,
    rss_regression,
    speedup_regression,
    validate_payload,
    write_bench_result,
)


def result(**overrides) -> BenchResult:
    defaults = dict(
        name="indexed_corpus",
        workload={"keywords": 56, "windows": 5, "posts": 3136},
        naive_seconds=4.0,
        engine_seconds=0.5,
        equivalent=True,
        extra={"distinct_index_terms": 452},
    )
    defaults.update(overrides)
    return BenchResult(**defaults)


class TestBenchResult:
    def test_speedup(self):
        assert result().speedup == pytest.approx(8.0)

    def test_zero_engine_time_is_infinite_speedup(self):
        assert result(engine_seconds=0.0).speedup == float("inf")

    def test_infinite_speedup_serialises_as_null(self):
        payload = result(engine_seconds=0.0).to_payload()
        assert payload["speedup"] is None
        assert validate_payload(payload) == []
        # Strict JSON round-trip (json.dumps would otherwise emit the
        # non-standard Infinity literal).
        assert json.loads(json.dumps(payload))["speedup"] is None

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError, match="slug"):
            result(name="no spaces!")

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError, match=">= 0"):
            result(naive_seconds=-1.0)

    def test_payload_is_valid(self):
        payload = result().to_payload()
        assert validate_payload(payload) == []
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["bench"] == "indexed_corpus"
        assert payload["speedup"] == 8.0


class TestValidation:
    def test_missing_key_reported(self):
        payload = result().to_payload()
        del payload["speedup"]
        assert validate_payload(payload) == ["missing key 'speedup'"]

    def test_wrong_type_reported(self):
        payload = result().to_payload()
        payload["equivalent"] = "yes"
        assert any("equivalent" in p for p in validate_payload(payload))

    def test_wrong_schema_version_reported(self):
        payload = result().to_payload()
        payload["schema_version"] = SCHEMA_VERSION + 1
        assert validate_payload(payload)


class TestIO:
    def test_write_then_load_round_trips(self, tmp_path):
        path = write_bench_result(result(), tmp_path)
        assert path == bench_file_path("indexed_corpus", tmp_path)
        assert path.name == "BENCH_indexed_corpus.json"
        payload = load_bench_result(path)
        # The writer stamps extra.peak_rss_kb; everything else must
        # round-trip untouched.
        payload["extra"].pop("peak_rss_kb", None)
        assert payload == result().to_payload()

    def test_write_stamps_peak_rss(self, tmp_path):
        path = write_bench_result(result(), tmp_path)
        stamped = load_bench_result(path)["extra"].get("peak_rss_kb")
        assert isinstance(stamped, int) and stamped > 0

    def test_write_keeps_bench_provided_rss(self, tmp_path):
        mine = result(extra={"peak_rss_kb": 12345})
        path = write_bench_result(mine, tmp_path)
        assert load_bench_result(path)["extra"]["peak_rss_kb"] == 12345

    def test_load_rejects_invalid_record(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench": "bad"}))
        with pytest.raises(ValueError, match="invalid bench record"):
            load_bench_result(path)

    def test_write_creates_missing_directory(self, tmp_path):
        path = write_bench_result(result(), tmp_path / "nested" / "dir")
        assert path.is_file()


class TestSpeedupRegression:
    @staticmethod
    def payload(speedup, bench="stream"):
        return {"bench": bench, "speedup": speedup}

    def test_holding_speedup_passes(self):
        assert speedup_regression(self.payload(9.5), self.payload(10.0)) is None

    def test_within_tolerance_passes(self):
        # 30% tolerance: 7.0 is the floor for a committed 10.0
        assert speedup_regression(self.payload(7.0), self.payload(10.0)) is None

    def test_regression_is_reported(self):
        problem = speedup_regression(self.payload(6.9), self.payload(10.0))
        assert problem is not None
        assert "stream" in problem
        assert "6.90" in problem

    def test_improvement_passes(self):
        assert speedup_regression(self.payload(22.0), self.payload(10.0)) is None

    def test_infinite_speedups_never_flag(self):
        assert speedup_regression(self.payload(None), self.payload(10.0)) is None
        assert speedup_regression(self.payload(5.0), self.payload(None)) is None

    def test_custom_tolerance(self):
        assert (
            speedup_regression(
                self.payload(9.0), self.payload(10.0), tolerance=0.05
            )
            is not None
        )
        with pytest.raises(ValueError):
            speedup_regression(
                self.payload(9.0), self.payload(10.0), tolerance=1.5
            )

    def test_bench_mismatch_rejected(self):
        with pytest.raises(ValueError):
            speedup_regression(
                self.payload(5.0), self.payload(5.0, bench="other")
            )


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss is None or rss > 0

    def test_monotonic(self):
        first = peak_rss_kb()
        second = peak_rss_kb()
        if first is not None:
            assert second >= first


class TestRssRegression:
    @staticmethod
    def payload(rss, bench="columnar"):
        extra = {} if rss is None else {"peak_rss_kb": rss}
        return {"bench": bench, "extra": extra}

    def test_holding_rss_passes(self):
        assert rss_regression(self.payload(1000), self.payload(1000)) is None

    def test_within_ratio_passes(self):
        assert rss_regression(self.payload(1999), self.payload(1000)) is None

    def test_blow_up_is_reported(self):
        problem = rss_regression(self.payload(2001), self.payload(1000))
        assert problem is not None
        assert "columnar" in problem
        assert "2001" in problem

    def test_missing_key_never_flags(self):
        assert rss_regression(self.payload(None), self.payload(1000)) is None
        assert rss_regression(self.payload(9999), self.payload(None)) is None

    def test_custom_ratio(self):
        assert (
            rss_regression(
                self.payload(1200), self.payload(1000), ratio=1.1
            )
            is not None
        )
        with pytest.raises(ValueError):
            rss_regression(self.payload(1), self.payload(1), ratio=1.0)
