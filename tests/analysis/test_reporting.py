"""Tests for the markdown assessment-report generator."""

import pytest

from repro import PSPFramework, PSPConfig, TargetApplication
from repro.analysis.reporting import generate_assessment_report
from repro.tara.engine import TaraEngine
from tests.conftest import build_excavator_database


@pytest.fixture()
def run_result(excavator_client):
    framework = PSPFramework(
        excavator_client,
        TargetApplication("excavator", "europe", "industrial"),
        database=build_excavator_database(),
        config=PSPConfig(learning_min_support=0.01),
    )
    return framework.run(learn=True)


class TestBasicReport:
    def test_core_sections_present(self, run_result):
        report = generate_assessment_report(run_result)
        assert report.startswith("# PSP risk assessment report")
        assert "## Social Attraction Index" in report
        assert "## Insider / outsider classification" in report
        assert "## Attack-feasibility weight tables" in report

    def test_target_and_window(self, run_result):
        report = generate_assessment_report(run_result)
        assert "excavator / industrial / europe" in report
        assert "full history" in report

    def test_sai_rows_rendered(self, run_result):
        report = generate_assessment_report(run_result)
        assert "| dpfdelete |" in report.replace("| 1 | dpfdelete", "| dpfdelete")

    def test_learned_keywords_listed(self, run_result):
        report = generate_assessment_report(run_result)
        assert "Auto-learned keywords" in report

    def test_all_three_tables(self, run_result):
        report = generate_assessment_report(run_result)
        assert "Original ISO/SAE-21434 G.9" in report
        assert "Outsider threats (unchanged)" in report
        assert "Insider threats (PSP-tuned)" in report

    def test_valid_markdown_tables(self, run_result):
        report = generate_assessment_report(run_result)
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")


class TestOptionalSections:
    def test_financial_section(self, run_result, excavator_framework):
        assessment = excavator_framework.assess_financial("dpfdelete")
        report = generate_assessment_report(run_result, financial=[assessment])
        assert "## Financial attack feasibility" in report
        assert "506,160" in report

    def test_tara_section(self, run_result, fig4_network):
        tara = TaraEngine(fig4_network).run()
        report = generate_assessment_report(run_result, tara=tara)
        assert "## TARA summary" in report
        assert "ts.tcu.firmware.tampering" in report

    def test_tara_min_risk_filters(self, run_result, fig4_network):
        tara = TaraEngine(fig4_network).run()
        all_rows = generate_assessment_report(
            run_result, tara=tara, tara_min_risk=1
        )
        few_rows = generate_assessment_report(
            run_result, tara=tara, tara_min_risk=4
        )
        assert len(all_rows) > len(few_rows)

    def test_omitted_sections_absent(self, run_result):
        report = generate_assessment_report(run_result)
        assert "## Financial attack feasibility" not in report
        assert "## TARA summary" not in report
