"""Tests for incident-report trend cross-checks."""

from repro.analysis.trends import (
    crossing_year,
    incident_vector_series,
    report_confirms_inversion,
)
from repro.iso21434.enums import AttackVector
from repro.market.reports import AnnualReport, default_report_library


class TestSeries:
    def test_series_extracted_per_vector(self):
        report = default_report_library().latest("excavator", "europe")
        series = incident_vector_series(report)
        vectors = {s.vector for s in series}
        assert AttackVector.PHYSICAL in vectors
        assert AttackVector.LOCAL in vectors

    def test_physical_direction_negative(self):
        report = default_report_library().latest("excavator", "europe")
        series = {s.vector: s for s in incident_vector_series(report)}
        assert series[AttackVector.PHYSICAL].direction < 0
        assert series[AttackVector.LOCAL].direction > 0

    def test_share_in_specific_year(self):
        report = default_report_library().latest("excavator", "europe")
        series = {s.vector: s for s in incident_vector_series(report)}
        assert series[AttackVector.PHYSICAL].share_in(2020) > 0.5
        assert series[AttackVector.PHYSICAL].share_in(1999) is None


class TestInversionConfirmation:
    def test_paper_inversion_confirmed(self):
        report = default_report_library().latest("excavator", "europe")
        assert report_confirms_inversion(
            report, risen=AttackVector.LOCAL, fallen=AttackVector.PHYSICAL
        )

    def test_reverse_direction_not_confirmed(self):
        report = default_report_library().latest("excavator", "europe")
        assert not report_confirms_inversion(
            report, risen=AttackVector.PHYSICAL, fallen=AttackVector.LOCAL
        )

    def test_report_without_incidents_not_confirmed(self):
        empty = AnnualReport(
            year=2023, application="x", region="europe", prose="p"
        )
        assert not report_confirms_inversion(
            empty, AttackVector.LOCAL, AttackVector.PHYSICAL
        )

    def test_crossing_year(self):
        report = default_report_library().latest("excavator", "europe")
        year = crossing_year(
            report, risen=AttackVector.LOCAL, fallen=AttackVector.PHYSICAL
        )
        assert year == 2022

    def test_crossing_year_none_when_never(self):
        report = default_report_library().latest("excavator", "europe")
        assert crossing_year(
            report, risen=AttackVector.NETWORK, fallen=AttackVector.PHYSICAL
        ) is None
