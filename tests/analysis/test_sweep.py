"""Tests for ablation sweeps."""

import pytest

from repro.analysis.sweep import (
    ABLATION_WEIGHT_MIXES,
    learning_coverage,
    ranking_stability,
    sai_weight_ablation,
    sweep,
)
from repro.core.keywords import paper_seed_database
from tests.conftest import build_excavator_database


class TestGenericSweep:
    def test_evaluates_every_value(self):
        points = sweep([1, 2, 3], lambda v: v * 10)
        assert [p.outcome for p in points] == [10, 20, 30]
        assert [p.label for p in points] == ["1", "2", "3"]

    def test_custom_label(self):
        points = sweep([1], lambda v: v, label=lambda v: f"k={v}")
        assert points[0].label == "k=1"


class TestWeightAblation:
    def test_all_mixes_computed(self, excavator_client):
        results = sai_weight_ablation(
            excavator_client, build_excavator_database()
        )
        assert set(results) == {label for label, _ in ABLATION_WEIGHT_MIXES}

    def test_dpfdelete_ranks_first_under_every_mix(self, excavator_client):
        # Ablation A1 headline: the paper's Fig. 12 ranking is stable
        # against the engagement-weight mix.
        results = sai_weight_ablation(
            excavator_client, build_excavator_database()
        )
        for label, sai in results.items():
            assert sai.ranking()[0] == "dpfdelete", label

    def test_ranking_stability_default_is_one(self, excavator_client):
        results = sai_weight_ablation(
            excavator_client, build_excavator_database()
        )
        stability = ranking_stability(results)
        assert stability["default"] == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in stability.values())

    def test_ranking_stability_requires_default(self):
        with pytest.raises(ValueError):
            ranking_stability({})


class TestLearningCoverage:
    def test_learning_adds_keywords(self, excavator_client):
        texts = [p.text for p in excavator_client.corpus]
        coverage = learning_coverage(
            excavator_client, paper_seed_database, texts
        )
        assert coverage["with_learning"] > coverage["without_learning"]
        assert coverage["learned"] == (
            coverage["with_learning"] - coverage["without_learning"]
        )
