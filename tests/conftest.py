"""Shared fixtures: scenario corpora and frameworks, cached per session."""

from __future__ import annotations

import pytest

from repro import PSPFramework, TargetApplication
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.social import (
    InMemoryClient,
    ecm_reprogramming_corpus,
    ecm_reprogramming_specs,
    excavator_corpus,
    excavator_specs,
)
from repro.vehicle import reference_architecture


@pytest.fixture(scope="session")
def excavator_client() -> InMemoryClient:
    """Client over the excavator corpus (paper Fig. 12 workload)."""
    return InMemoryClient(excavator_corpus())


@pytest.fixture(scope="session")
def ecm_client() -> InMemoryClient:
    """Client over the ECM-reprogramming corpus (paper Fig. 9 workload)."""
    return InMemoryClient(ecm_reprogramming_corpus())


def build_ecm_database() -> KeywordDatabase:
    """Annotated keyword database for the ECM scenario."""
    db = KeywordDatabase()
    for spec in ecm_reprogramming_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return db


def build_excavator_database() -> KeywordDatabase:
    """Annotated keyword database covering every excavator topic."""
    db = KeywordDatabase()
    for spec in excavator_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return db


@pytest.fixture()
def ecm_framework(ecm_client) -> PSPFramework:
    """PSP framework on the ECM corpus with a fresh annotated database."""
    return PSPFramework(
        ecm_client,
        TargetApplication("car", "europe", "passenger"),
        database=build_ecm_database(),
    )


@pytest.fixture()
def excavator_framework(excavator_client) -> PSPFramework:
    """PSP framework on the excavator corpus with the full annotated DB."""
    return PSPFramework(
        excavator_client,
        TargetApplication("excavator", "europe", "industrial"),
        database=build_excavator_database(),
    )


@pytest.fixture(scope="session")
def fig4_network():
    """The Fig. 4 reference architecture."""
    return reference_architecture()
