"""Live monitoring: the excavator scenario as an event-driven feed.

The paper's conclusion (§IV) positions PSP as "a runtime model
environment".  This example runs that environment literally: the
excavator corpus (paper Fig. 12) is replayed as a live post feed, and a
:class:`~repro.stream.runtime.StreamRuntime` reacts to each micro-batch
incrementally — authenticity filtering, index append, dirty-keyword SAI
updates, and a TARA rescore of the compiled Fig. 4 architecture only
when the insider weight table actually shifts.

Halfway through, the runtime is checkpointed, thrown away and restored
— the resumed runtime must emit exactly the alerts the uninterrupted
run emits, without replaying the feed.

Run with::

    python examples/live_monitor.py
"""

import tempfile
from pathlib import Path

from repro.core.config import TargetApplication
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.poisoning import PostAuthenticityFilter
from repro.social import excavator_corpus, excavator_specs
from repro.stream import (
    StreamRuntime,
    SyntheticFeed,
    restore_runtime,
    save_checkpoint,
)
from repro.vehicle import reference_architecture

BATCH_SIZE = 150


def build_database() -> KeywordDatabase:
    database = KeywordDatabase()
    for spec in excavator_specs():
        database.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return database


def alert_keys(runtime: StreamRuntime):
    """The comparable identity of each emitted alert."""
    return [
        (alert.upto_year, alert.changes, alert.result.insider_table.as_rows())
        for alert in runtime.alerts
    ]


def main() -> None:
    corpus = excavator_corpus()
    target = TargetApplication("excavator", "europe", "industrial")
    network = reference_architecture()

    def new_runtime(database: KeywordDatabase) -> StreamRuntime:
        return StreamRuntime(
            SyntheticFeed.from_corpus(corpus),
            database,
            target=target,
            since_year=2018,
            network=network,
            post_filter=PostAuthenticityFilter(),
            batch_size=BATCH_SIZE,
        )

    # -- uninterrupted reference run -----------------------------------
    reference = new_runtime(build_database())
    ticks = reference.run()
    print(f"live feed: {len(ticks)} micro-batches of <= {BATCH_SIZE} posts")
    for tick in ticks:
        line = tick.describe()
        if tick.alert is not None:
            line += f" — {tick.alert.describe()}"
        print(line)
    stats = reference.stream_stats
    print(
        f"\n{stats['posts_ingested']} posts ingested, "
        f"{stats['retunes']} retunes, {stats['tara_rescores']} TARA "
        f"rescores, {stats['alerts']} alert(s)"
    )

    # -- stop, checkpoint, resume --------------------------------------
    interrupted = new_runtime(build_database())
    for _ in range(len(ticks) // 2):
        interrupted.step()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "live_monitor.ckpt.json"
        save_checkpoint(interrupted, path)
        print(f"\ncheckpoint after tick {len(interrupted.ticks)} "
              f"(cursor {interrupted.cursor}) -> {path.name}")
        resumed = restore_runtime(
            path,
            SyntheticFeed.from_corpus(corpus),
            build_database(),
            target=target,
            network=network,
            post_filter=PostAuthenticityFilter(),
            batch_size=BATCH_SIZE,
        )
    resumed.run()

    combined = alert_keys(interrupted) + alert_keys(resumed)
    parity = combined == alert_keys(reference)
    print(f"resume parity: {'OK' if parity else 'MISMATCH'} "
          f"({len(combined)} alert(s) across the interruption)")
    if not parity:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
