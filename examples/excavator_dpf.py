"""Excavator DPF tampering: the paper's financial case study (Figs. 10-12).

Reproduces the full "excavator, Europe" example of paper §III:

* the SAI ranking with DPF delete on top (Fig. 12);
* the market value MV = PAE x PPIA = 1,406 x 360 EUR ≈ 506,160 EUR/yr
  (Eq. 6);
* the required adversary investment FC = BEP x (PPIA - VCU) / n =
  1,406 x 310 / 3 ≈ 145,286 EUR (Eq. 7);
* the break-even geometry of Fig. 11, printed as a small text chart.

Run with::

    python examples/excavator_dpf.py
"""

from repro import PSPFramework, TargetApplication
from repro.social import InMemoryClient, excavator_corpus
from repro.tara import render_financial, render_sai


def render_bep_chart(analysis, max_units: float, width: int = 50) -> str:
    """Tiny text rendering of the Fig. 11 cost/revenue crossover."""
    lines = ["units    revenue      cost         zone"]
    for units, revenue, cost in analysis.curve(max_units, points=11):
        zone = "profitable" if revenue > cost else "loss"
        lines.append(f"{units:7.0f}  {revenue:11.0f}  {cost:11.0f}  {zone}")
    lines.append(f"break-even point: {analysis.break_even:,.0f} units")
    return "\n".join(lines)


def main() -> None:
    client = InMemoryClient(excavator_corpus())
    target = TargetApplication(
        application="excavator", region="europe", category="industrial"
    )
    psp = PSPFramework(client, target)

    result = psp.run()
    print(render_sai(result.sai, title="Fig. 12: excavator insider-attack SAI"))
    print()

    assessment = psp.assess_financial("dpfdelete")
    print(render_financial(assessment))
    print()
    print(f"Eq. 6: MV = {assessment.pae} x {assessment.ppia:.0f} EUR "
          f"= {assessment.mv:,.0f} EUR/yr")
    print(f"Eq. 7: FC = {assessment.pae} x {assessment.margin:.0f} / "
          f"{assessment.competitors} = {assessment.fc_required:,.2f} EUR")
    print()
    print("Fig. 11: break-even geometry")
    print(render_bep_chart(assessment.analysis(), max_units=2 * assessment.pae))
    print()
    print(
        "Security guidance: an anti-tampering DPF architecture should "
        f"withstand an adversary investment of up to "
        f"{assessment.fc_required:,.0f} EUR."
    )


if __name__ == "__main__":
    main()
