"""Generate a complete markdown assessment report.

Combines every PSP output into the single work product an assessor files:
the SAI evidence, the insider/outsider split, the three weight tables,
the financial assessments of the top insider attacks, a full-vehicle
TARA summary, and the control set needed to bring the worst powertrain
threat down to an acceptable residual risk.

Run with::

    python examples/generate_assessment.py [output.md]
"""

import sys

from repro import PSPFramework, TargetApplication
from repro.analysis import generate_assessment_report
from repro.core.errors import DataUnavailableError
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.controls import default_catalog, residual_risk, select_controls_for_target
from repro.iso21434.enums import AttackVector, ImpactRating
from repro.social import InMemoryClient, excavator_corpus, excavator_specs
from repro.tara import TaraEngine
from repro.vehicle import reference_architecture


def build_framework() -> PSPFramework:
    db = KeywordDatabase()
    for spec in excavator_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    client = InMemoryClient(excavator_corpus())
    target = TargetApplication("excavator", "europe", "industrial")
    return PSPFramework(client, target, database=db)


def main() -> None:
    psp = build_framework()
    result = psp.run()

    # Financial assessments for the top insider attacks that have listings.
    assessments = []
    for entry in result.split.insider_entries[:4]:
        try:
            assessments.append(psp.assess_financial(entry.keyword))
        except DataUnavailableError:
            continue

    # Full-vehicle TARA under the PSP-tuned insider table.
    network = reference_architecture()
    tara = TaraEngine(network, insider_table=result.insider_table).run()

    report = generate_assessment_report(
        result, financial=assessments, tara=tara, tara_min_risk=4
    )

    # Append a control recommendation for the dominant insider vector.
    top_vector = result.insider_table.ranked_vectors()[0]
    controls = select_controls_for_target(
        top_vector,
        ImpactRating.SEVERE,
        result.insider_table,
        default_catalog(),
        target_risk=3,
    )
    lines = [report, "## Control recommendation", ""]
    if controls is None:
        lines.append(
            f"No catalogued control set reduces the {top_vector.value} "
            "risk to the target level; risk avoidance required."
        )
    else:
        record = residual_risk(
            top_vector, ImpactRating.SEVERE, result.insider_table, controls
        )
        names = ", ".join(c.name for c in controls) or "none needed"
        lines.append(
            f"Deploying [{names}] reduces the severe-impact "
            f"{top_vector.value} risk from {record.initial_risk} to "
            f"{record.residual_risk}."
        )
    document = "\n".join(lines) + "\n"

    destination = sys.argv[1] if len(sys.argv) > 1 else None
    if destination:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"report written to {destination}")
    else:
        print(document)


if __name__ == "__main__":
    main()
