"""Quickstart: one full PSP run on the excavator scenario.

Runs the complete Fig. 7 pipeline — keyword learning, SAI computation,
insider/outsider classification, weight-table generation — and the Fig. 10
financial pipeline for the top-ranked attack.

Run with::

    python examples/quickstart.py
"""

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.social import InMemoryClient, excavator_corpus
from repro.tara import render_financial, render_sai, render_weight_table


def main() -> None:
    # The social client is the Twitter-API substitution: a deterministic
    # synthetic corpus calibrated to the paper's published trends.
    client = InMemoryClient(excavator_corpus())
    target = TargetApplication(
        application="excavator", region="europe", category="industrial"
    )
    psp = PSPFramework(client, target)

    result = psp.run(TimeWindow.full_history())

    print(f"Target: {target.describe()}")
    if result.learned_keywords:
        learned = ", ".join(k.keyword for k in result.learned_keywords)
        print(f"Auto-learned keywords: {learned}")
    print()
    print(render_sai(result.sai, title="Social Attraction Index (Fig. 12)"))
    print()
    print(render_weight_table(result.insider_table, "Insider weight table (Fig. 8-B)"))
    print()
    print(render_weight_table(result.outsider_table, "Outsider weight table (Fig. 8-A)"))
    print()

    top_attack = result.sai.ranking()[0]
    assessment = psp.assess_financial(top_attack)
    print(render_financial(assessment))


if __name__ == "__main__":
    main()
