"""ECM reprogramming: the paper's Fig. 9 experiment.

Reproduces the three G.9 tables of paper Fig. 9:

* (A) the standard's original static table;
* (B) the PSP-revised table over the full posting history — physical
  reprogramming, rated Very Low by the standard, is raised because the
  social evidence shows it is the dominant insider attack;
* (C) the PSP-revised table restricted to posts since 2022 — the trend
  inversion: local (OBD) attacks overtake physical ones, matching the
  Upstream-report incident statistics.

Run with::

    python examples/ecm_reprogramming.py
"""

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.analysis import report_confirms_inversion
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.market import default_report_library
from repro.social import InMemoryClient, ecm_reprogramming_corpus, ecm_reprogramming_specs
from repro.tara import render_weight_table


def build_database() -> KeywordDatabase:
    """Keyword database annotated by the product security team."""
    db = KeywordDatabase()
    for spec in ecm_reprogramming_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return db


def main() -> None:
    client = InMemoryClient(ecm_reprogramming_corpus())
    target = TargetApplication("car", region="europe", category="passenger")
    psp = PSPFramework(client, target, database=build_database())

    full = TimeWindow.full_history()
    recent = TimeWindow.since_year(2022)
    before, after, inversions = psp.compare_windows(full, recent)

    print(render_weight_table(standard_table(), "Fig. 9-A: original G.9 table"))
    print()
    print(
        render_weight_table(
            before.insider_table, "Fig. 9-B: PSP revision, full history"
        )
    )
    print()
    print(
        render_weight_table(
            after.insider_table, "Fig. 9-C: PSP revision, posts since 2022"
        )
    )
    print()

    for inversion in inversions:
        print(f"Trend inversion detected: {inversion.describe()}")
        report = default_report_library().latest("excavator", "europe")
        if report and report_confirms_inversion(
            report, inversion.risen, inversion.fallen
        ):
            print(
                "  confirmed by the annual-report incident statistics "
                f"({report.year} edition)"
            )


if __name__ == "__main__":
    main()
