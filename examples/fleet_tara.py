"""Full-vehicle TARA: static ISO model versus the PSP-tuned model.

Runs a complete ISO/SAE-21434 TARA over the Fig. 4 reference architecture
under the standard's static attack-vector table and under the PSP-tuned
insider table derived from the ECM-reprogramming corpus, then diffs the
outcomes (experiment E10).  The disagreements concentrate on powertrain
insider threats, which the static table systematically under-rates: the
paper's §II argument, quantified.

Since the compile/score split the architecture is walked **once**
(:func:`repro.tara.compile_threat_model`) and both runs are scoring
sweeps of one :class:`repro.tara.BatchTaraScorer` over the compiled
model — the same pattern `fleet_taras` uses to rescore whole fleets.

Run with::

    python examples/fleet_tara.py
"""

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.analysis import summarize_disagreements
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.social import InMemoryClient, ecm_reprogramming_corpus, ecm_reprogramming_specs
from repro.tara import (
    BatchTaraScorer,
    TableSpec,
    compare_runs,
    compile_threat_model,
    render_tara,
)
from repro.vehicle import reference_architecture


def tuned_insider_table():
    """Derive the PSP insider table from the social evidence."""
    db = KeywordDatabase()
    for spec in ecm_reprogramming_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    client = InMemoryClient(ecm_reprogramming_corpus())
    psp = PSPFramework(
        client, TargetApplication("car", "europe", "passenger"), database=db
    )
    return psp.run(TimeWindow.full_history(), learn=False).insider_table


def main() -> None:
    network = reference_architecture()

    # Compile once, score both tables in one batch sweep.
    scorer = BatchTaraScorer(compile_threat_model(network))
    reports = scorer.score_many(
        [
            TableSpec(label="static"),
            TableSpec(label="psp", insider_table=tuned_insider_table()),
        ]
    )
    static_run, tuned_run = reports["static"], reports["psp"]

    print(render_tara(static_run, min_risk=4))
    print()
    print(render_tara(tuned_run, min_risk=4))
    print()

    disagreements = compare_runs(network, static_run, tuned_run)
    summary = summarize_disagreements(len(static_run.records), disagreements)
    print(
        f"Static vs PSP: {len(disagreements)} of {len(static_run.records)} "
        f"threat scenarios rated differently "
        f"({summary.disagreement_rate:.0%})"
    )
    domains = ", ".join(
        f"{domain.value}: {count}" for domain, count in summary.by_domain().items()
    )
    print(f"Disagreements by domain: {domains}")
    underestimated = summary.underestimated()
    print(
        f"Threats under-rated by the static model: {len(underestimated)} "
        f"(all in {summary.dominant_domain().value})"
    )
    worst = max(underestimated, key=lambda d: d.tuned_risk - d.static_risk)
    print(
        f"Largest risk jump: {worst.threat_id} — risk {worst.static_risk} "
        f"under the static table, {worst.tuned_risk} under PSP"
    )
    stats = scorer.memo_stats
    print(
        f"Scorer memo: {int(stats['hits'])} hits / "
        f"{int(stats['lookups'])} lookups ({stats['hit_rate']:.0%})"
    )


if __name__ == "__main__":
    main()
