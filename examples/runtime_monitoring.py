"""Runtime risk monitoring: PSP as a TARA-reprocessing trigger.

The paper's conclusion frames PSP as a move "from static risk assessment
models ... to a runtime model environment".  This example simulates that
lifecycle: the product progresses through the V-model phases (paper
Fig. 2), PSP re-runs year by year, and when the social evidence shifts a
vector's rating, a TARA reprocessing is triggered with the
PSP_TREND_SHIFT cause.

Run with::

    python examples/runtime_monitoring.py
"""

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.social import InMemoryClient, ecm_reprogramming_corpus, ecm_reprogramming_specs
from repro.tara import LifecycleTracker, Phase, ReprocessingTrigger


def main() -> None:
    db = KeywordDatabase()
    for spec in ecm_reprogramming_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    client = InMemoryClient(ecm_reprogramming_corpus())
    psp = PSPFramework(
        client, TargetApplication("car", "europe", "passenger"), database=db
    )
    tracker = LifecycleTracker()

    # Walk the development lifecycle to production readiness.
    while tracker.phase is not Phase.PRODUCTION_READINESS:
        tracker.advance()
    gate_count = tracker.reprocessing_count(ReprocessingTrigger.PHASE_GATE)
    print(f"Development gates that forced a TARA reprocessing: {gate_count}")

    # In production: monitor the social trend year by year.
    previous_table = None
    for year in range(2018, 2024):
        window = TimeWindow.years(2015, year)
        result = psp.run(window, learn=False)
        table = result.insider_table
        if previous_table is not None:
            changed = table.differs_from(previous_table)
            if changed:
                vectors = ", ".join(v.value for v in changed)
                event = tracker.report_trend_shift(
                    f"{year}: rating change on {vectors}"
                )
                print(
                    f"{year}: PSP trend shift on [{vectors}] -> TARA "
                    f"reprocessing triggered at phase {event.phase.name}"
                )
            else:
                print(f"{year}: ratings stable, no reprocessing needed")
        previous_table = table

    shifts = tracker.reprocessing_count(ReprocessingTrigger.PSP_TREND_SHIFT)
    print(f"\nTotal PSP-triggered reprocessings: {shifts}")
    print(f"Final insider table: {previous_table.as_rows()}")


if __name__ == "__main__":
    main()
