"""Model triangulation: one threat, four risk models.

Rates the paper's headline threat — ECM reprogramming by the vehicle's
own owner — under the four models this repository implements:

* the **static ISO/SAE-21434 attack-vector table** (the model the paper
  criticises),
* the **PSP-tuned table** derived from the social evidence,
* **HEAVENS** (attacker-capability scoring),
* **EVITA** (attack-potential risk graph).

The point of the comparison: HEAVENS and EVITA — which score attacker
capability directly — agree with PSP that the owner attack is top-tier,
isolating the static G.9 table as the mis-rating component, exactly the
paper's §II argument.

Run with::

    python examples/model_triangulation.py
"""

from repro import PSPFramework, TargetApplication
from repro.baselines import (
    StaticIsoBaseline,
    ThreatLevelInput,
    assess_evita,
    assess_heavens,
)
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import (
    AttackerProfile,
    AttackVector,
    CybersecurityProperty,
    ImpactCategory,
    ImpactRating,
    StrideCategory,
)
from repro.iso21434.feasibility.attack_potential import (
    AttackPotentialInput,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
)
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.threats import ThreatScenario
from repro.social import InMemoryClient, ecm_reprogramming_corpus, ecm_reprogramming_specs


def ecm_threat() -> ThreatScenario:
    """The ECM-reprogramming threat scenario of the paper's example."""
    return ThreatScenario(
        threat_id="ts.ecm.reprogramming",
        name="ECM reprogramming by owner",
        asset_id="ecm.firmware",
        violated_property=CybersecurityProperty.INTEGRITY,
        stride=StrideCategory.TAMPERING,
        attack_vectors=frozenset({AttackVector.PHYSICAL, AttackVector.LOCAL}),
        attacker_profiles=frozenset(
            {AttackerProfile.RATIONAL, AttackerProfile.LOCAL}
        ),
        keywords=("ecmreprogramming", "obdtuning"),
    )


def owner_impact() -> ImpactProfile:
    """Safety-severe impact of losing engine-control integrity."""
    return ImpactProfile(
        {
            ImpactCategory.SAFETY: ImpactRating.SEVERE,
            ImpactCategory.FINANCIAL: ImpactRating.MAJOR,
            ImpactCategory.OPERATIONAL: ImpactRating.MAJOR,
        }
    )


def psp_insider_table():
    """Derive the PSP table from the ECM social corpus."""
    db = KeywordDatabase()
    for spec in ecm_reprogramming_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    psp = PSPFramework(
        InMemoryClient(ecm_reprogramming_corpus()),
        TargetApplication("car", "europe", "passenger"),
        database=db,
    )
    return psp.run(learn=False).insider_table


def main() -> None:
    threat = ecm_threat()

    static_rating = StaticIsoBaseline().rate(threat)
    psp_rating = StaticIsoBaseline(psp_insider_table()).rate(threat)

    # HEAVENS: the owner attacker needs no expertise beyond aftermarket
    # tooling, has public knowledge, unlimited opportunity and cheap
    # equipment.
    heavens = assess_heavens(
        threat.threat_id,
        ThreatLevelInput(expertise=3, knowledge=3, opportunity=3, equipment=2),
        owner_impact(),
    )

    # EVITA: same attacker expressed through the attack-potential factors.
    evita = assess_evita(
        threat.threat_id,
        AttackPotentialInput(
            elapsed_time=ElapsedTime.ONE_WEEK,
            expertise=Expertise.PROFICIENT,
            knowledge=Knowledge.PUBLIC,
            window=WindowOfOpportunity.UNLIMITED,
            equipment=Equipment.SPECIALIZED,
        ),
        owner_impact(),
    )

    print("Threat: ECM reprogramming by the vehicle owner "
          "(physical/local insider attack)\n")
    print(f"  static ISO G.9     : feasibility {static_rating.feasibility.label()} "
          f"(via {static_rating.chosen_vector.value})")
    print(f"  PSP-tuned table    : feasibility {psp_rating.feasibility.label()} "
          f"(via {psp_rating.chosen_vector.value})")
    print(f"  HEAVENS            : TL {heavens.tl.name}, IL {heavens.il.name} "
          f"-> security level {heavens.security.name}")
    print(f"  EVITA              : probability {evita.probability.name}, "
          f"severity S{evita.severity} -> risk {evita.risk.name}")
    print()
    print("Three of the four models rate the owner attack top-tier; only "
          "the static G.9 table does not — the paper's §II argument.")

    # The same triangulation at architecture scale: every threat of the
    # compiled Fig. 4 model rated by all three baselines, with no model
    # re-identifying assets or threats.
    from repro.baselines import triangulate_model
    from repro.tara import compile_threat_model
    from repro.vehicle import reference_architecture

    assessments = triangulate_model(
        compile_threat_model(reference_architecture())
    )
    flagged = [a for a in assessments if a.static_underrates]
    print()
    print(f"Architecture-wide: {len(assessments)} compiled threats "
          f"triangulated; {len(flagged)} show the mis-rating signature "
          "(capability models high, static table low) — all of them "
          "owner-approved: "
          f"{all(a.owner_approved for a in flagged)}")


if __name__ == "__main__":
    main()
